//! Property-based tests for the core GBO machinery: hook variance laws,
//! calibration linearity, GBO selection consistency, and report rendering.

use membit_autograd::Tape;
use membit_core::{GaussianMvmNoise, GboConfig, GboTrainer, NoiseCalibration, PlaHook};
use membit_nn::MvmNoiseHook;
use membit_tensor::{Rng, RngStream, Tensor};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn calibration_sigma_abs_is_linear(
        rms in prop::collection::vec(0.1f32..20.0, 1..8),
        unit in 1.0f32..50.0,
        sigma in 0.0f32..40.0,
    ) {
        let cal = NoiseCalibration::new(rms.clone(), unit).unwrap();
        let once = cal.sigma_abs(sigma);
        let twice = cal.sigma_abs(2.0 * sigma);
        for (a, b) in once.iter().zip(&twice) {
            prop_assert!((2.0 * a - b).abs() < 1e-4);
        }
        for (a, &r) in once.iter().zip(&rms) {
            prop_assert!((a - sigma / unit * r).abs() < 1e-4);
        }
    }

    #[test]
    fn gaussian_hook_noise_std_follows_sqrt_law(
        sigma in 0.5f32..8.0,
        pulses in 1usize..32,
        seed in 0u64..500,
    ) {
        let rng = Rng::from_seed(seed).stream(RngStream::Noise);
        let mut hook = GaussianMvmNoise::uniform(1, sigma, pulses, rng).unwrap();
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::zeros(&[30_000]));
        let y = hook.apply(&mut tape, 0, x).unwrap();
        let measured = tape.value(y).std();
        let expect = sigma / (pulses as f32).sqrt();
        prop_assert!(
            (measured - expect).abs() < 0.05 * expect + 1e-3,
            "σ={sigma} p={pulses}: {measured} vs {expect}"
        );
    }

    #[test]
    fn pla_hook_snap_preserves_exact_budgets(q in 1usize..40, seed in 0u64..200) {
        // whenever q is the base count or a multiple, encode is identity
        let act_levels = 9usize;
        let rng = Rng::from_seed(seed).stream(RngStream::Noise);
        let mut hook = PlaHook::uniform(1, q, 0.0, act_levels, rng).unwrap();
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::from_vec(vec![0.25, -0.75], &[2]).unwrap());
        let y = hook.encode(&mut tape, 0, x).unwrap();
        if q % (act_levels - 1) == 0 {
            prop_assert_eq!(y, x);
        } else {
            // snapped values stay in [-1, 1] and on the q-grid
            for &v in tape.value(y).as_slice() {
                prop_assert!((-1.0..=1.0).contains(&v));
                let high = (v + 1.0) / 2.0 * q as f32;
                prop_assert!((high - high.round()).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn gbo_config_pulse_lengths_scale_with_omega(
        base in 1usize..16,
        scale_centi in 25usize..300,
    ) {
        let n = scale_centi as f32 / 100.0;
        let cfg = GboConfig {
            omega: vec![n],
            base_pulses: base,
            gamma: 0.0,
            epochs: 1,
            lr: 0.1,
            batch_size: 8,
            seed: 0,
            snap_error_fan_in: None,
        };
        let lengths = cfg.pulse_lengths();
        prop_assert_eq!(lengths.len(), 1);
        prop_assert_eq!(lengths[0], ((n * base as f32).round().max(1.0)) as usize);
    }

    #[test]
    fn gbo_selection_is_argmax_of_lambdas(layers in 1usize..5) {
        // freshly created trainer: all-zero λ selects the first Ω entry
        let trainer = GboTrainer::new(layers, GboConfig::paper(0.0, 0)).unwrap();
        let lambdas = trainer.lambdas();
        prop_assert_eq!(lambdas.len(), layers);
        for lam in &lambdas {
            prop_assert!(lam.iter().all(|&v| v == 0.0));
        }
    }

    #[test]
    fn markdown_table_row_count(rows in 1usize..10) {
        let data: Vec<Vec<String>> = (0..rows)
            .map(|i| vec![i.to_string(), (i * 2).to_string()])
            .collect();
        let md = membit_core::markdown_table(&["a", "b"], &data);
        prop_assert_eq!(md.lines().count(), rows + 2);
    }
}
