//! Tests for the snap-error-aware GBO extension (`snap_error_fan_in`).

use membit_core::{calibrate_noise, pretrain, GboConfig, GboTrainer, TrainConfig};
use membit_data::{synth_cifar, SynthCifarConfig};
use membit_nn::{Mlp, MlpConfig, NoNoise, Params};
use membit_tensor::{Rng, RngStream};

fn trained_mlp(seed: u64) -> (Mlp, Params, membit_data::Dataset) {
    let (train, _) = synth_cifar(&SynthCifarConfig::tiny(), seed).expect("data");
    let mut rng = Rng::from_seed(seed).stream(RngStream::Init);
    let mut params = Params::new();
    let mut mlp = Mlp::new(
        &MlpConfig::new(3 * 8 * 8, &[20], 10),
        &mut params,
        &mut rng,
    )
    .expect("mlp");
    let cfg = TrainConfig {
        epochs: 10,
        batch_size: 24,
        lr: 2e-2,
        momentum: 0.9,
        weight_decay: 0.0,
        augment_flip: false,
        seed,
    };
    pretrain(&mut mlp, &mut params, &train, &cfg, &mut NoNoise).expect("train");
    (mlp, params, train)
}

#[test]
fn snap_error_fan_in_validates_length() {
    let (mut mlp, params, train) = trained_mlp(3);
    let cal = calibrate_noise(&mut mlp, &params, &train, 24, 2, 14.0).expect("cal");
    let mut cfg = GboConfig::paper(1e-3, 1);
    cfg.epochs = 1;
    cfg.batch_size = 24;
    cfg.snap_error_fan_in = Some(vec![100.0, 100.0]); // model has 1 layer
    let mut trainer = GboTrainer::new(1, cfg).expect("trainer");
    assert!(trainer
        .search(&mut mlp, &params, &train, &cal, 10.0)
        .is_err());
}

#[test]
fn snap_awareness_biases_away_from_lossy_budgets() {
    // With zero crossbar noise and an *amplified* fan-in, the only signal
    // in the mixture is the representation error, made large enough that
    // it unambiguously increases the loss (for realistic fan-ins the
    // effect is second-order and needs the full experiment scale to
    // resolve): exact budgets (8, 16) must dominate the logits over
    // lossy ones (4, 6, 10, 12, 14).
    let (mut mlp, params, train) = trained_mlp(5);
    let cal = calibrate_noise(&mut mlp, &params, &train, 24, 2, 14.0).expect("cal");
    let mut cfg = GboConfig::paper(0.0, 2);
    cfg.epochs = 4;
    cfg.batch_size = 24;
    cfg.lr = 0.2;
    cfg.snap_error_fan_in = Some(vec![1e5]);
    let mut trainer = GboTrainer::new(1, cfg).expect("trainer");
    // σ = 0: pure snap-error signal
    let result = trainer
        .search(&mut mlp, &params, &train, &cal, 0.0)
        .expect("search");
    let selected = result.selected_pulses[0];
    assert!(
        selected.is_multiple_of(8),
        "snap-aware search with no noise picked lossy budget {selected}; λ = {:?}",
        result.lambdas[0]
    );
    // every lossy budget must rank below both exact ones
    let lam = &result.lambdas[0];
    let exact_min = lam[2].min(lam[6]); // Ω indices of 8 and 16 pulses
    for (k, &l) in lam.iter().enumerate() {
        if k != 2 && k != 6 {
            assert!(l < exact_min, "λ[{k}] = {l} ≥ exact min {exact_min}: {lam:?}");
        }
    }
}

#[test]
fn paper_faithful_config_ignores_snap_error() {
    // With σ = 0 and no snap modelling, every branch's noise is zero and
    // only the latency regularizer acts: the cheapest encoding wins.
    let (mut mlp, params, train) = trained_mlp(7);
    let cal = calibrate_noise(&mut mlp, &params, &train, 24, 2, 14.0).expect("cal");
    let mut cfg = GboConfig::paper(1e-2, 3);
    cfg.epochs = 3;
    cfg.batch_size = 24;
    cfg.lr = 0.2;
    let mut trainer = GboTrainer::new(1, cfg).expect("trainer");
    let result = trainer
        .search(&mut mlp, &params, &train, &cal, 0.0)
        .expect("search");
    assert_eq!(
        result.selected_pulses,
        vec![4],
        "λ = {:?}",
        result.lambdas[0]
    );
}
