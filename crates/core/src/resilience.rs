//! Resilience policy shared by every training loop: periodic atomic
//! checkpointing, `--resume` restore, and watchdog thresholds.

use std::path::PathBuf;

use membit_nn::checkpoint::CheckpointError;
use membit_nn::{Checkpoint, Params};
use membit_tensor::{Rng, Tensor};

use crate::watchdog::WatchdogConfig;
use crate::Result;

/// How a training loop checkpoints, resumes, and guards against
/// divergence. The default is fully in-memory: watchdog armed, no on-disk
/// checkpointing — exactly the old behavior plus NaN protection.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceConfig {
    /// Auto-checkpoint path (`None` disables on-disk checkpointing; the
    /// in-memory rollback snapshots still work).
    pub checkpoint: Option<PathBuf>,
    /// Checkpoint every N completed epochs.
    pub every_epochs: usize,
    /// Resume from `checkpoint` if a loadable file is present.
    pub resume: bool,
    /// Keep the checkpoint after a successful run (default: delete it so
    /// a later run with the same path starts fresh).
    pub keep_checkpoint: bool,
    /// Watchdog thresholds.
    pub watchdog: WatchdogConfig,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        Self {
            checkpoint: None,
            every_epochs: 1,
            resume: false,
            keep_checkpoint: false,
            watchdog: WatchdogConfig::default(),
        }
    }
}

impl ResilienceConfig {
    /// Checkpoint to `path` after every epoch and resume from it when
    /// present — the configuration the bench binaries use under
    /// `--resume`.
    pub fn auto(path: PathBuf, resume: bool) -> Self {
        Self {
            checkpoint: Some(path),
            resume,
            ..Self::default()
        }
    }

    /// Whether epoch `epoch` (0-based, just completed) should be
    /// checkpointed.
    pub(crate) fn should_checkpoint(&self, epoch: usize) -> bool {
        self.checkpoint.is_some() && (epoch + 1).is_multiple_of(self.every_epochs.max(1))
    }

    /// Saves `ckpt` to the configured path (no-op when disabled).
    pub(crate) fn save(&self, ckpt: &Checkpoint) -> Result<()> {
        if let Some(path) = &self.checkpoint {
            ckpt.save(path).map_err(crate::TrainError::Checkpoint)?;
        }
        Ok(())
    }

    /// Loads the checkpoint if resuming is enabled and the file exists.
    /// A structurally damaged file is a hard error — silently restarting
    /// from scratch would mask corruption.
    pub(crate) fn load_for_resume(&self) -> Result<Option<Checkpoint>> {
        let Some(path) = &self.checkpoint else {
            return Ok(None);
        };
        if !self.resume || !path.exists() {
            return Ok(None);
        }
        Ok(Some(
            Checkpoint::load(path).map_err(crate::TrainError::Checkpoint)?,
        ))
    }

    /// Removes the checkpoint after a successful run (unless configured
    /// to keep it). Best-effort: a leftover file only costs disk.
    pub(crate) fn finish(&self) {
        if self.keep_checkpoint {
            return;
        }
        if let Some(path) = &self.checkpoint {
            std::fs::remove_file(path).ok();
        }
    }
}

/// Stores every parameter of `params` into `ckpt` under `param.{name}`.
pub(crate) fn put_params(ckpt: &mut Checkpoint, params: &Params) {
    for (name, tensor) in params.iter() {
        ckpt.put_tensor(format!("param.{name}"), tensor.clone());
    }
}

/// Restores `param.{name}` entries into `params`. Every entry must land
/// on a registered parameter of matching shape — a miss means the
/// checkpoint belongs to a different model, which must not pass silently.
pub(crate) fn restore_params(ckpt: &Checkpoint, params: &mut Params) -> Result<()> {
    let mut restored = 0usize;
    for (name, tensor) in ckpt.tensors_with_prefix("param.") {
        if !params.assign(name, tensor.clone()) {
            return Err(CheckpointError::Corrupt(format!(
                "checkpointed parameter {name:?} does not match the model (unknown name or wrong shape)"
            ))
            .into());
        }
        restored += 1;
    }
    if restored != params.len() {
        return Err(CheckpointError::Corrupt(format!(
            "checkpoint restores {restored} of {} model parameters",
            params.len()
        ))
        .into());
    }
    Ok(())
}

/// Stores an RNG stream under `rng.{key}`.
pub(crate) fn put_rng(ckpt: &mut Checkpoint, key: &str, rng: &Rng) {
    ckpt.put_bytes(format!("rng.{key}"), rng.state_bytes());
}

/// Restores the RNG stream saved under `rng.{key}`.
pub(crate) fn restore_rng(ckpt: &Checkpoint, key: &str) -> Result<Rng> {
    let name = format!("rng.{key}");
    ckpt.bytes(&name)
        .and_then(Rng::from_state_bytes)
        .ok_or_else(|| {
            CheckpointError::Corrupt(format!("missing or malformed RNG stream {name:?}")).into()
        })
}

/// Stores named state tensors (model running stats, optimizer moments)
/// under `{prefix}.{name}`.
pub(crate) fn put_state(ckpt: &mut Checkpoint, prefix: &str, state: &[(String, Tensor)]) {
    for (name, tensor) in state {
        ckpt.put_tensor(format!("{prefix}.{name}"), tensor.clone());
    }
}

/// Extracts the `{prefix}.{name}` state tensors back out of `ckpt`.
pub(crate) fn take_state(ckpt: &Checkpoint, prefix: &str) -> Vec<(String, Tensor)> {
    let dotted = format!("{prefix}.");
    ckpt.tensors_with_prefix(&dotted)
        .map(|(n, t)| (n.to_string(), t.clone()))
        .collect()
}

/// Reads a required `u64` entry.
pub(crate) fn need_u64(ckpt: &Checkpoint, name: &str) -> Result<u64> {
    ckpt.get_u64(name).ok_or_else(|| {
        CheckpointError::Corrupt(format!("missing checkpoint counter {name:?}")).into()
    })
}

/// Reads a required `f64` entry.
pub(crate) fn need_f64(ckpt: &Checkpoint, name: &str) -> Result<f64> {
    ckpt.get_f64(name).ok_or_else(|| {
        CheckpointError::Corrupt(format!("missing checkpoint scalar {name:?}")).into()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_in_memory_only() {
        let r = ResilienceConfig::default();
        assert!(r.checkpoint.is_none());
        assert!(!r.should_checkpoint(0));
        assert!(r.save(&Checkpoint::new()).is_ok());
        assert!(r.load_for_resume().unwrap().is_none());
    }

    #[test]
    fn checkpoint_cadence() {
        let mut r = ResilienceConfig::auto(PathBuf::from("/tmp/unused.ckpt"), false);
        r.every_epochs = 3;
        assert!(!r.should_checkpoint(0));
        assert!(!r.should_checkpoint(1));
        assert!(r.should_checkpoint(2));
        assert!(r.should_checkpoint(5));
    }

    #[test]
    fn params_roundtrip_is_strict() {
        let mut ckpt = Checkpoint::new();
        let mut params = Params::new();
        params.register("w", Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap());
        put_params(&mut ckpt, &params);
        let mut fresh = Params::new();
        fresh.register("w", Tensor::zeros(&[2]));
        restore_params(&ckpt, &mut fresh).unwrap();
        assert_eq!(fresh.get(fresh.find("w").unwrap()).as_slice(), &[1.0, 2.0]);

        // wrong-shape model: typed error, not silence
        let mut wrong = Params::new();
        wrong.register("w", Tensor::zeros(&[3]));
        assert!(restore_params(&ckpt, &mut wrong).is_err());
        // incomplete checkpoint (extra model param): typed error too
        let mut bigger = Params::new();
        bigger.register("w", Tensor::zeros(&[2]));
        bigger.register("extra", Tensor::zeros(&[1]));
        assert!(restore_params(&ckpt, &mut bigger).is_err());
    }

    #[test]
    fn rng_roundtrip() {
        let mut ckpt = Checkpoint::new();
        let mut rng = Rng::from_seed(7);
        let _ = rng.normal(0.0, 1.0);
        put_rng(&mut ckpt, "shuffle", &rng);
        let mut restored = restore_rng(&ckpt, "shuffle").unwrap();
        assert_eq!(restored.normal(0.0, 1.0), rng.normal(0.0, 1.0));
        assert!(restore_rng(&ckpt, "missing").is_err());
    }
}
