//! End-to-end experiment orchestration: data → pre-train (with checkpoint
//! caching) → calibrate → evaluate the paper's methods.

use std::path::PathBuf;

use membit_data::{synth_cifar, Dataset, SynthCifarConfig};
use membit_nn::{load_params, save_params, NoNoise, Params, Vgg, VggConfig};
use membit_tensor::{Rng, RngStream, Tensor};

use crate::calibrate::{calibrate_noise, NoiseCalibration};
use crate::gbo::{GboConfig, GboResult, GboTrainer};
use crate::hooks::PlaHook;
use crate::nia::{nia_finetune_resilient, NiaConfig};
use crate::resilience::ResilienceConfig;
use crate::trainer::{evaluate, evaluate_with_hook, pretrain_resilient, TrainConfig};
use crate::Result;

/// Complete description of a reproduction run.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Network architecture.
    pub vgg: VggConfig,
    /// Dataset generation parameters.
    pub data: SynthCifarConfig,
    /// Pre-training recipe.
    pub train: TrainConfig,
    /// Divisor mapping paper-σ to multiples of layer RMS
    /// (`σ_abs = σ/unit × RMS`); calibrated so Baseline degradation
    /// matches the paper's ladder.
    pub sigma_unit: f32,
    /// Evaluation batch size.
    pub eval_batch: usize,
    /// Noise-seed repeats averaged per noisy evaluation.
    pub eval_repeats: usize,
    /// Checkpoint path for pre-trained weights (loaded if present, saved
    /// after pre-training otherwise).
    pub checkpoint: Option<PathBuf>,
    /// Directory for in-flight auto-checkpoints (one file per training
    /// stage, deleted when the stage completes). `None` disables crash
    /// recovery; the divergence watchdog still runs in-memory.
    pub work_dir: Option<PathBuf>,
    /// Resume interrupted stages from their `work_dir` auto-checkpoints.
    pub resume: bool,
    /// Root seed.
    pub seed: u64,
}

impl ExperimentConfig {
    /// The default single-core reproduction scale: small VGG9, 16×16
    /// SynthCIFAR, paper training recipe at `epochs`.
    pub fn quick(epochs: usize, seed: u64) -> Self {
        let mut train = TrainConfig::paper(epochs, seed);
        // The paper's base LR (1e-3) assumes CIFAR-scale training volume;
        // at this reduced scale binary weights need larger latent steps to
        // flip within the epoch budget.
        train.lr = 2e-2;
        Self {
            vgg: VggConfig::small(),
            data: SynthCifarConfig::default_experiment(),
            train,
            // Calibrated so the Baseline ladder at paper-σ {10, 15, 20}
            // mirrors the paper's mild/severe/catastrophic degradation
            // (see EXPERIMENTS.md).
            sigma_unit: 14.0,
            eval_batch: 100,
            eval_repeats: 3,
            checkpoint: None,
            work_dir: None,
            resume: false,
            seed,
        }
    }
}

/// Streaming FNV-1a (64-bit) used to derive stable auto-checkpoint names
/// from a stage's identity.
struct Fnv64(u64);

impl Fnv64 {
    fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Fingerprints the current parameter values. Two stages with identical
/// configs but different weights (e.g. a GBO search on the base model vs
/// on an NIA-fine-tuned fork) must not share an auto-checkpoint.
fn params_fingerprint(params: &Params) -> u64 {
    let mut h = Fnv64::new();
    for (name, tensor) in params.iter() {
        h.update(name.as_bytes());
        for &v in tensor.as_slice() {
            h.update(&v.to_le_bytes());
        }
    }
    h.finish()
}

/// Builds the resilience policy for one training stage: an
/// auto-checkpoint in `work_dir` named after the stage, its config
/// tokens, and the entering parameter state, so distinct runs never
/// collide. With no `work_dir`, checkpointing is off (in-memory watchdog
/// only).
fn stage_resilience(
    config: &ExperimentConfig,
    stage: &str,
    tokens: &str,
    params: &Params,
) -> Result<ResilienceConfig> {
    let Some(dir) = &config.work_dir else {
        return Ok(ResilienceConfig::default());
    };
    std::fs::create_dir_all(dir)?;
    let mut h = Fnv64::new();
    h.update(stage.as_bytes());
    h.update(tokens.as_bytes());
    h.update(&params_fingerprint(params).to_le_bytes());
    let path = dir.join(format!("{stage}_{:016x}.ckpt", h.finish()));
    Ok(ResilienceConfig::auto(path, config.resume))
}

/// A set-up experiment: trained model, data splits and calibration.
pub struct Experiment {
    config: ExperimentConfig,
    model: Vgg,
    params: Params,
    calibration: NoiseCalibration,
    train_set: Dataset,
    test_set: Dataset,
}

impl Experiment {
    /// Generates data and produces a trained model — from the checkpoint
    /// if one exists at `config.checkpoint`, otherwise by pre-training
    /// (and saving the checkpoint afterwards).
    ///
    /// # Errors
    ///
    /// Propagates training/IO errors.
    pub fn setup(config: ExperimentConfig) -> Result<Self> {
        let (train_set, test_set) = synth_cifar(&config.data, config.seed)?;
        let mut rng = Rng::from_seed(config.seed).stream(RngStream::Init);
        let mut params = Params::new();
        let mut model = Vgg::new(&config.vgg, &mut params, &mut rng)?;

        let loaded = match &config.checkpoint {
            Some(path) if path.exists() => {
                let entries = load_params(path)?;
                let mut stats: Vec<(String, Tensor, Tensor)> = Vec::new();
                let mut pending_mean: Vec<(String, Tensor)> = Vec::new();
                for (name, tensor) in entries {
                    if let Some(base) = name.strip_suffix(".running_mean") {
                        pending_mean.push((base.to_string(), tensor));
                    } else if let Some(base) = name.strip_suffix(".running_var") {
                        if let Some(pos) =
                            pending_mean.iter().position(|(b, _)| b == base)
                        {
                            let (b, mean) = pending_mean.remove(pos);
                            stats.push((b, mean, tensor));
                        }
                    } else {
                        params.assign(&name, tensor);
                    }
                }
                model.set_running_stats(&stats);
                true
            }
            _ => false,
        };
        if !loaded {
            let tokens = format!(
                "seed{} epochs{} lr{}",
                config.train.seed, config.train.epochs, config.train.lr
            );
            let res = stage_resilience(&config, "pretrain", &tokens, &params)?;
            pretrain_resilient(
                &mut model,
                &mut params,
                &train_set,
                &config.train,
                &mut NoNoise,
                &res,
            )?;
            if let Some(path) = &config.checkpoint {
                let extra: Vec<(String, Tensor)> = model
                    .running_stats()
                    .into_iter()
                    .flat_map(|(name, mean, var)| {
                        [
                            (format!("{name}.running_mean"), mean),
                            (format!("{name}.running_var"), var),
                        ]
                    })
                    .collect();
                save_params(path, &params, &extra)?;
            }
        }
        let calibration = calibrate_noise(
            &mut model,
            &params,
            &train_set,
            config.eval_batch,
            4,
            config.sigma_unit,
        )?;
        Ok(Self {
            config,
            model,
            params,
            calibration,
            train_set,
            test_set,
        })
    }

    /// The experiment configuration.
    pub fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    /// The noise calibration.
    pub fn calibration(&self) -> &NoiseCalibration {
        &self.calibration
    }

    /// The trained model (mutable for NIA-style fine-tuning).
    pub fn model_mut(&mut self) -> (&mut Vgg, &mut Params) {
        (&mut self.model, &mut self.params)
    }

    /// Borrow the trained model and parameters.
    pub fn model(&self) -> (&Vgg, &Params) {
        (&self.model, &self.params)
    }

    /// The training split.
    pub fn train_set(&self) -> &Dataset {
        &self.train_set
    }

    /// The held-out split.
    pub fn test_set(&self) -> &Dataset {
        &self.test_set
    }

    /// Clean (noise-free) test accuracy, in percent.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn eval_clean(&mut self) -> Result<f32> {
        Ok(evaluate(
            &mut self.model,
            &self.params,
            &self.test_set,
            self.config.eval_batch,
        )? * 100.0)
    }

    /// Test accuracy (percent) under per-layer pulse counts `pulses` at
    /// paper-σ `sigma`, averaged over the configured noise repeats.
    /// Uniform `[8; L]` is the Baseline row; uniform `[q; L]` is `PLA_q`;
    /// a GBO solution supplies its per-layer vector.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn eval_pla(&mut self, sigma: f32, pulses: &[usize]) -> Result<f32> {
        let sigma_abs = self.calibration.sigma_abs(sigma);
        let mut acc_sum = 0.0f32;
        let repeats = self.config.eval_repeats.max(1);
        for rep in 0..repeats {
            let rng = Rng::from_seed(self.config.seed ^ ((rep as u64 + 1) << 40))
                .stream(RngStream::Noise);
            let mut hook = PlaHook::new(
                pulses.to_vec(),
                sigma_abs.clone(),
                self.config.vgg.act_levels,
                rng,
            )?;
            acc_sum += evaluate_with_hook(
                &mut self.model,
                &self.params,
                &self.test_set,
                self.config.eval_batch,
                &mut hook,
            )?;
        }
        Ok(acc_sum / repeats as f32 * 100.0)
    }

    /// Runs a GBO search at `sigma` with trade-off weight `gamma`,
    /// returning the selected per-layer encoding.
    ///
    /// # Errors
    ///
    /// Propagates search errors.
    pub fn run_gbo(&mut self, sigma: f32, mut gbo: GboConfig) -> Result<GboResult> {
        gbo.seed ^= self.config.seed;
        let tokens = format!(
            "sigma{sigma} gamma{} epochs{} seed{}",
            gbo.gamma, gbo.epochs, gbo.seed
        );
        let res = stage_resilience(&self.config, "gbo", &tokens, &self.params)?;
        let mut trainer = GboTrainer::new(self.model.crossbar_layers(), gbo)?;
        trainer.search_resilient(
            &mut self.model,
            &self.params,
            &self.train_set,
            &self.calibration,
            sigma,
            &res,
        )
    }

    /// NIA-fine-tunes the held model at `sigma` (mutates the weights; use
    /// on a cloned experiment or after all clean evaluations).
    ///
    /// # Errors
    ///
    /// Propagates training errors.
    pub fn run_nia(&mut self, sigma: f32, cfg: &NiaConfig) -> Result<()> {
        let tokens = format!("sigma{sigma} epochs{} seed{}", cfg.epochs, cfg.seed);
        let res = stage_resilience(&self.config, "nia", &tokens, &self.params)?;
        nia_finetune_resilient(
            &mut self.model,
            &mut self.params,
            &self.train_set,
            &self.calibration,
            sigma,
            cfg,
            &res,
        )?;
        // recalibrate: fine-tuned weights shift layer statistics
        self.calibration = calibrate_noise(
            &mut self.model,
            &self.params,
            &self.train_set,
            self.config.eval_batch,
            4,
            self.config.sigma_unit,
        )?;
        Ok(())
    }

    /// Snapshot of the trained state, so NIA variants can fork without
    /// re-training.
    pub fn fork(&self) -> Experiment
    where
        Vgg: Clone,
    {
        Experiment {
            config: self.config.clone(),
            model: self.model.clone(),
            params: self.params.clone(),
            calibration: self.calibration.clone(),
            train_set: self.train_set.clone(),
            test_set: self.test_set.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config(seed: u64) -> ExperimentConfig {
        let mut cfg = ExperimentConfig::quick(2, seed);
        cfg.vgg = VggConfig::tiny();
        cfg.vgg.num_classes = 10;
        cfg.vgg.in_h = 8;
        cfg.vgg.in_w = 8;
        cfg.data = SynthCifarConfig::tiny();
        cfg.train.batch_size = 40;
        cfg.eval_batch = 40;
        cfg.eval_repeats = 1;
        cfg
    }

    #[test]
    fn setup_and_basic_evals() {
        let mut exp = Experiment::setup(tiny_config(1)).unwrap();
        let clean = exp.eval_clean().unwrap();
        assert!((0.0..=100.0).contains(&clean));
        assert_eq!(exp.calibration().layers(), 3);
        let noisy = exp.eval_pla(20.0, &[8, 8, 8]).unwrap();
        assert!((0.0..=100.0).contains(&noisy));
        // heavy noise should not beat clean by a wide margin
        assert!(noisy <= clean + 15.0);
    }

    #[test]
    fn checkpoint_roundtrip_reuses_weights() {
        let dir = std::env::temp_dir().join(format!("membit-exp-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let ckpt = dir.join("tiny.ckpt");
        let mut cfg = tiny_config(2);
        cfg.checkpoint = Some(ckpt.clone());
        let mut exp1 = Experiment::setup(cfg.clone()).unwrap();
        let acc1 = exp1.eval_clean().unwrap();
        assert!(ckpt.exists());
        // second setup loads instead of training
        let mut exp2 = Experiment::setup(cfg).unwrap();
        let acc2 = exp2.eval_clean().unwrap();
        assert_eq!(acc1, acc2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fork_is_independent() {
        let exp = Experiment::setup(tiny_config(3)).unwrap();
        let mut fork = exp.fork();
        let (_, params) = fork.model_mut();
        let id = params.find("conv0.weight").unwrap();
        let zeroed = Tensor::zeros(params.get(id).shape());
        let name = params.name(id).to_string();
        params.assign(&name, zeroed);
        // original untouched
        let (_, orig_params) = exp.model();
        let orig = orig_params.get(orig_params.find("conv0.weight").unwrap());
        assert!(orig.abs().sum() > 0.0);
    }
}
