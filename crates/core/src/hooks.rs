//! Concrete MVM noise hooks: the functional crossbar noise models of the
//! paper's evaluation.

use membit_autograd::{Tape, VarId};
use membit_nn::{MvmNoiseHook, Result as NnResult};
use membit_tensor::{Rng, TensorError};

use crate::Result;

/// The paper's Eq. 1/Eq. 3 functional noise: after the MVM of crossbar
/// layer `l`, adds `N(0, (σ_l/√p_l)²)` — per-pulse noise `σ_l` averaged
/// over `p_l` thermometer pulses.
///
/// Used for the Baseline rows (uniform `p = 8`) and inside NIA training.
#[derive(Debug)]
pub struct GaussianMvmNoise {
    sigma: Vec<f32>,
    pulses: Vec<usize>,
    rng: Rng,
}

impl GaussianMvmNoise {
    /// Creates the hook from per-layer per-pulse noise `σ_l` and pulse
    /// counts `p_l`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] on length mismatch or a
    /// zero pulse count.
    pub fn new(sigma: Vec<f32>, pulses: Vec<usize>, rng: Rng) -> Result<Self> {
        if sigma.len() != pulses.len() {
            return Err(TensorError::InvalidArgument(format!(
                "{} sigmas but {} pulse counts",
                sigma.len(),
                pulses.len()
            ))
            .into());
        }
        if pulses.contains(&0) {
            return Err(
                TensorError::InvalidArgument("pulse counts must be nonzero".into()).into(),
            );
        }
        Ok(Self { sigma, pulses, rng })
    }

    /// Uniform-pulse constructor: the same `σ` and `p` for all `layers`.
    ///
    /// # Errors
    ///
    /// Same as [`new`](Self::new).
    pub fn uniform(layers: usize, sigma: f32, pulses: usize, rng: Rng) -> Result<Self> {
        Self::new(vec![sigma; layers], vec![pulses; layers], rng)
    }

    fn std_for(&self, layer: usize) -> f32 {
        self.sigma[layer] / (self.pulses[layer] as f32).sqrt()
    }
}

impl MvmNoiseHook for GaussianMvmNoise {
    fn apply(&mut self, tape: &mut Tape, layer: usize, mvm_out: VarId) -> NnResult<VarId> {
        let std = self.std_for(layer);
        if std == 0.0 {
            return Ok(mvm_out);
        }
        let shape = tape.value(mvm_out).shape().to_vec();
        let noise = self.rng.normal_tensor(&shape, 0.0, std);
        let c = tape.constant(noise);
        tape.add(mvm_out, c)
    }

    fn state_rng(&self) -> Option<&Rng> {
        Some(&self.rng)
    }

    fn state_rng_mut(&mut self) -> Option<&mut Rng> {
        Some(&mut self.rng)
    }
}

/// PLA evaluation hook (paper §III-B + Table I): crossbar layer `l` runs a
/// `q_l`-pulse thermometer code, so
///
/// * its **input activations** are snapped onto the `q_l + 1` levels the
///   code can represent (`encode`), and
/// * its MVM output picks up `N(0, σ_l²/q_l)` accumulated noise (`apply`).
///
/// Uniform `q = 8` with 9-level activations reduces exactly to the
/// Baseline (the snap is the identity). Per-layer `q_l` vectors express
/// GBO's heterogeneous solutions.
#[derive(Debug)]
pub struct PlaHook {
    pulses: Vec<usize>,
    sigma: Vec<f32>,
    act_levels: usize,
    rng: Rng,
}

impl PlaHook {
    /// Creates the hook from per-layer pulse counts, per-layer per-pulse
    /// noise `σ_l`, and the network's activation level count.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] on length mismatches or
    /// degenerate parameters.
    pub fn new(pulses: Vec<usize>, sigma: Vec<f32>, act_levels: usize, rng: Rng) -> Result<Self> {
        if sigma.len() != pulses.len() {
            return Err(TensorError::InvalidArgument(format!(
                "{} sigmas but {} pulse counts",
                sigma.len(),
                pulses.len()
            ))
            .into());
        }
        if pulses.contains(&0) || act_levels < 2 {
            return Err(TensorError::InvalidArgument(
                "pulse counts must be nonzero and act_levels ≥ 2".into(),
            )
            .into());
        }
        Ok(Self {
            pulses,
            sigma,
            act_levels,
            rng,
        })
    }

    /// Uniform-pulse constructor (`PLA_q` rows of Table I).
    ///
    /// # Errors
    ///
    /// Same as [`new`](Self::new).
    pub fn uniform(
        layers: usize,
        pulses: usize,
        sigma: f32,
        act_levels: usize,
        rng: Rng,
    ) -> Result<Self> {
        Self::new(vec![pulses; layers], vec![sigma; layers], act_levels, rng)
    }

    /// Average pulse count across layers.
    pub fn avg_pulses(&self) -> f32 {
        self.pulses.iter().sum::<usize>() as f32 / self.pulses.len().max(1) as f32
    }
}

impl MvmNoiseHook for PlaHook {
    fn apply(&mut self, tape: &mut Tape, layer: usize, mvm_out: VarId) -> NnResult<VarId> {
        let std = self.sigma[layer] / (self.pulses[layer] as f32).sqrt();
        if std == 0.0 {
            return Ok(mvm_out);
        }
        let shape = tape.value(mvm_out).shape().to_vec();
        let noise = self.rng.normal_tensor(&shape, 0.0, std);
        let c = tape.constant(noise);
        tape.add(mvm_out, c)
    }

    fn encode(&mut self, tape: &mut Tape, layer: usize, input: VarId) -> NnResult<VarId> {
        let q = self.pulses[layer];
        if q == self.act_levels - 1 || q.is_multiple_of(self.act_levels - 1) {
            // exact representation (the base code or an integer-ensemble
            // multiple of it) — no approximation error
            return Ok(input);
        }
        // snap onto the q+1 levels a q-pulse thermometer code carries,
        // with the paper's sign-directed (bias-free) tie-breaking
        tape.pla_quantize_ste(input, self.act_levels, q)
    }

    fn state_rng(&self) -> Option<&Rng> {
        Some(&self.rng)
    }

    fn state_rng_mut(&mut self) -> Option<&mut Rng> {
        Some(&mut self.rng)
    }
}

/// Variation-aware NIA hook: the functional noise of [`GaussianMvmNoise`]
/// with per-pass *physical operating-condition* sampling layered on top.
///
/// Each forward pass draws an operating temperature uniformly from the
/// configured range and an IR-drop severity uniformly from `[0, droop]`;
/// every crossbar layer of that pass then sees
///
/// * its MVM output scaled by `1 − severity` (the mean attenuation a
///   resistive wire network applies, see
///   [`membit_xbar::NonIdealitySpec::attenuation`]), and
/// * Gaussian noise with `σ_l/√p_l` scaled by `√(T/T_REF)` — the same
///   Johnson-noise temperature law the device layer applies via
///   [`membit_xbar::NonIdealitySpec::scaled_noise`].
///
/// Fine-tuning under this hook makes NIA *variation-aware*: the weights
/// absorb not just one noise level but the whole envelope of deployment
/// conditions, which is what the `ablation_nonideal` experiment measures.
#[derive(Debug)]
pub struct VariationAwareNoise {
    sigma: Vec<f32>,
    pulses: Vec<usize>,
    /// Sampled operating-temperature range in kelvin.
    temp_range: (f32, f32),
    /// Maximum IR-drop output droop (fraction of signal lost at the
    /// worst sampled severity).
    droop: f32,
    /// Condition profile for the current pass, resampled whenever
    /// layer 0 comes around: (σ scale, output scale).
    profile: (f32, f32),
    rng: Rng,
}

impl VariationAwareNoise {
    /// Creates the hook from per-layer per-pulse noise `σ_l`, pulse
    /// counts `p_l`, a temperature range in kelvin, and a maximum
    /// IR-drop droop fraction.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] on length mismatch, a
    /// zero pulse count, a temperature range outside the device's rated
    /// envelope (or inverted), or a droop outside `[0, 1)`.
    pub fn new(
        sigma: Vec<f32>,
        pulses: Vec<usize>,
        temp_range: (f32, f32),
        droop: f32,
        rng: Rng,
    ) -> Result<Self> {
        if sigma.len() != pulses.len() {
            return Err(TensorError::InvalidArgument(format!(
                "{} sigmas but {} pulse counts",
                sigma.len(),
                pulses.len()
            ))
            .into());
        }
        if pulses.contains(&0) {
            return Err(
                TensorError::InvalidArgument("pulse counts must be nonzero".into()).into(),
            );
        }
        let (lo, hi) = temp_range;
        if !(membit_xbar::T_MIN..=membit_xbar::T_MAX).contains(&lo) || !(lo..=membit_xbar::T_MAX).contains(&hi)
        {
            return Err(TensorError::InvalidArgument(format!(
                "temperature range [{lo}, {hi}] K outside rated [{}, {}] K",
                membit_xbar::T_MIN,
                membit_xbar::T_MAX
            ))
            .into());
        }
        if !(0.0..1.0).contains(&droop) {
            return Err(TensorError::InvalidArgument(format!(
                "IR-drop droop {droop} outside [0, 1)"
            ))
            .into());
        }
        Ok(Self {
            sigma,
            pulses,
            temp_range,
            droop,
            profile: (1.0, 1.0),
            rng,
        })
    }

    /// Uniform-pulse constructor: the same `σ` and `p` for all `layers`.
    ///
    /// # Errors
    ///
    /// Same as [`new`](Self::new).
    pub fn uniform(
        layers: usize,
        sigma: f32,
        pulses: usize,
        temp_range: (f32, f32),
        droop: f32,
        rng: Rng,
    ) -> Result<Self> {
        Self::new(
            vec![sigma; layers],
            vec![pulses; layers],
            temp_range,
            droop,
            rng,
        )
    }

    /// Samples a fresh operating-condition profile for one forward pass.
    fn resample(&mut self) {
        let kelvin = self.rng.uniform(self.temp_range.0, self.temp_range.1);
        let sigma_scale = (kelvin / membit_xbar::T_REF).sqrt();
        let out_scale = 1.0 - self.rng.uniform(0.0, self.droop);
        self.profile = (sigma_scale, out_scale);
    }
}

impl MvmNoiseHook for VariationAwareNoise {
    fn apply(&mut self, tape: &mut Tape, layer: usize, mvm_out: VarId) -> NnResult<VarId> {
        if layer == 0 {
            // one condition profile per forward pass: all layers of a
            // pass share the same chip temperature and supply droop
            self.resample();
        }
        let (sigma_scale, out_scale) = self.profile;
        let attenuated = if out_scale == 1.0 {
            mvm_out
        } else {
            tape.mul_scalar(mvm_out, out_scale)
        };
        let std = self.sigma[layer] / (self.pulses[layer] as f32).sqrt() * sigma_scale;
        if std == 0.0 {
            return Ok(attenuated);
        }
        let shape = tape.value(attenuated).shape().to_vec();
        let noise = self.rng.normal_tensor(&shape, 0.0, std);
        let c = tape.constant(noise);
        tape.add(attenuated, c)
    }

    fn state_rng(&self) -> Option<&Rng> {
        Some(&self.rng)
    }

    fn state_rng_mut(&mut self) -> Option<&mut Rng> {
        Some(&mut self.rng)
    }
}

/// Fig. 2 hook: injects `N(0, σ²)` at exactly one crossbar layer, leaving
/// all others clean — the paper's layer-wise sensitivity probe.
#[derive(Debug)]
pub struct SingleLayerNoise {
    target: usize,
    sigma: f32,
    rng: Rng,
}

impl SingleLayerNoise {
    /// Creates the probe for crossbar layer `target`.
    pub fn new(target: usize, sigma: f32, rng: Rng) -> Self {
        Self { target, sigma, rng }
    }
}

impl MvmNoiseHook for SingleLayerNoise {
    fn apply(&mut self, tape: &mut Tape, layer: usize, mvm_out: VarId) -> NnResult<VarId> {
        if layer != self.target || self.sigma == 0.0 {
            return Ok(mvm_out);
        }
        let shape = tape.value(mvm_out).shape().to_vec();
        let noise = self.rng.normal_tensor(&shape, 0.0, self.sigma);
        let c = tape.constant(noise);
        tape.add(mvm_out, c)
    }
}

/// Calibration hook: records the running RMS of every crossbar layer's
/// clean MVM output. Drives [`calibrate_noise`](crate::calibrate_noise).
#[derive(Debug, Clone)]
pub struct RmsRecorder {
    sum_sq: Vec<f64>,
    count: Vec<u64>,
}

impl RmsRecorder {
    /// Creates a recorder for `layers` crossbar layers.
    pub fn new(layers: usize) -> Self {
        Self {
            sum_sq: vec![0.0; layers],
            count: vec![0; layers],
        }
    }

    /// RMS of each layer observed so far (0 for unobserved layers).
    pub fn rms(&self) -> Vec<f32> {
        self.sum_sq
            .iter()
            .zip(&self.count)
            .map(|(&s, &c)| if c == 0 { 0.0 } else { (s / c as f64).sqrt() as f32 })
            .collect()
    }
}

impl MvmNoiseHook for RmsRecorder {
    fn apply(&mut self, tape: &mut Tape, layer: usize, mvm_out: VarId) -> NnResult<VarId> {
        let v = tape.value(mvm_out);
        self.sum_sq[layer] += v.as_slice().iter().map(|&x| f64::from(x) * f64::from(x)).sum::<f64>();
        self.count[layer] += v.len() as u64;
        Ok(mvm_out)
    }
}

/// When a [`NanFault`] hook injects its poison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NanFaultMode {
    /// Inject NaN on exactly one forward pass (0-based index), then go
    /// quiet — a transient fault the watchdog should roll back and
    /// outlive.
    OnceAt(usize),
    /// Inject NaN on every forward pass from the given index onward — a
    /// persistent fault that must surface as
    /// [`TrainError::Diverged`](crate::TrainError::Diverged).
    AlwaysFrom(usize),
}

/// Fault-injection hook: corrupts the first crossbar layer's MVM output
/// with NaN on scheduled forward passes. Exists so the test suite can
/// prove the watchdog's recovery paths actually fire; it is not a noise
/// model.
///
/// The pass counter deliberately does **not** participate in rollback
/// snapshots: a `OnceAt` fault stays spent after the watchdog rewinds,
/// which is exactly how a transient hardware glitch behaves.
#[derive(Debug)]
pub struct NanFault {
    mode: NanFaultMode,
    passes: usize,
}

impl NanFault {
    /// A transient fault on forward pass `n`.
    pub fn once_at(n: usize) -> Self {
        Self {
            mode: NanFaultMode::OnceAt(n),
            passes: 0,
        }
    }

    /// A persistent fault from forward pass `n` onward.
    pub fn always_from(n: usize) -> Self {
        Self {
            mode: NanFaultMode::AlwaysFrom(n),
            passes: 0,
        }
    }

    /// Forward passes seen so far.
    pub fn passes(&self) -> usize {
        self.passes
    }

    fn fires(&self, pass: usize) -> bool {
        match self.mode {
            NanFaultMode::OnceAt(n) => pass == n,
            NanFaultMode::AlwaysFrom(n) => pass >= n,
        }
    }
}

impl MvmNoiseHook for NanFault {
    fn apply(&mut self, tape: &mut Tape, layer: usize, mvm_out: VarId) -> NnResult<VarId> {
        if layer != 0 {
            return Ok(mvm_out);
        }
        let pass = self.passes;
        self.passes += 1;
        if !self.fires(pass) {
            return Ok(mvm_out);
        }
        let shape = tape.value(mvm_out).shape().to_vec();
        let len: usize = shape.iter().product();
        let poison = tape.constant(membit_tensor::Tensor::from_vec(
            vec![f32::NAN; len],
            &shape,
        )?);
        tape.add(mvm_out, poison)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use membit_tensor::Tensor;

    fn setup(shape: &[usize]) -> (Tape, VarId) {
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::zeros(shape));
        (tape, x)
    }

    #[test]
    fn gaussian_noise_scales_with_inverse_sqrt_pulses() {
        let rng = Rng::from_seed(0);
        let mut hook8 =
            GaussianMvmNoise::uniform(1, 8.0, 8, rng.clone()).unwrap();
        let mut hook32 = GaussianMvmNoise::uniform(1, 8.0, 32, rng).unwrap();
        let (mut t1, x1) = setup(&[40_000]);
        let y1 = hook8.apply(&mut t1, 0, x1).unwrap();
        let (mut t2, x2) = setup(&[40_000]);
        let y2 = hook32.apply(&mut t2, 0, x2).unwrap();
        let s1 = t1.value(y1).std();
        let s2 = t2.value(y2).std();
        assert!((s1 - 8.0 / 8f32.sqrt()).abs() < 0.05, "s1 = {s1}");
        assert!((s2 - 8.0 / 32f32.sqrt()).abs() < 0.05, "s2 = {s2}");
    }

    #[test]
    fn zero_sigma_is_identity() {
        let rng = Rng::from_seed(0);
        let mut hook = GaussianMvmNoise::uniform(2, 0.0, 8, rng).unwrap();
        let (mut t, x) = setup(&[4]);
        assert_eq!(hook.apply(&mut t, 1, x).unwrap(), x);
    }

    #[test]
    fn constructors_validate() {
        let rng = Rng::from_seed(0);
        assert!(GaussianMvmNoise::new(vec![1.0], vec![8, 8], rng.clone()).is_err());
        assert!(GaussianMvmNoise::new(vec![1.0], vec![0], rng.clone()).is_err());
        assert!(PlaHook::new(vec![8], vec![1.0, 2.0], 9, rng.clone()).is_err());
        assert!(PlaHook::new(vec![0], vec![1.0], 9, rng.clone()).is_err());
        assert!(PlaHook::new(vec![8], vec![1.0], 1, rng).is_err());
    }

    #[test]
    fn pla_baseline_encode_is_identity() {
        let rng = Rng::from_seed(1);
        let mut hook = PlaHook::uniform(1, 8, 1.0, 9, rng).unwrap();
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::from_vec(vec![0.25, -0.5], &[2]).unwrap());
        let y = hook.encode(&mut tape, 0, x).unwrap();
        assert_eq!(x, y); // q = act_levels − 1 ⇒ no snap node
    }

    #[test]
    fn pla_snap_changes_representation() {
        let rng = Rng::from_seed(1);
        let mut hook = PlaHook::uniform(1, 10, 1.0, 9, rng).unwrap();
        let mut tape = Tape::new();
        // 9-level value 0.25 is not representable with 11 levels (step 0.2)
        let x = tape.constant(Tensor::from_vec(vec![0.25], &[1]).unwrap());
        let y = hook.encode(&mut tape, 0, x).unwrap();
        let v = tape.value(y).item();
        assert!((v - 0.2).abs() < 1e-6, "snapped to {v}");
        assert_eq!(hook.avg_pulses(), 10.0);
    }

    #[test]
    fn variation_aware_noise_scales_with_temperature() {
        let rng = Rng::from_seed(7);
        // degenerate range pinned at the hot end, no droop: the injected
        // std must be exactly σ/√p · √(T/T_REF)
        let hot = 390.0f32;
        let mut hook =
            VariationAwareNoise::uniform(1, 8.0, 8, (hot, hot), 0.0, rng).unwrap();
        let (mut t, x) = setup(&[40_000]);
        let y = hook.apply(&mut t, 0, x).unwrap();
        let expect = 8.0 / 8f32.sqrt() * (hot / membit_xbar::T_REF).sqrt();
        let s = t.value(y).std();
        assert!((s - expect).abs() < 0.06, "std {s} vs {expect}");
    }

    #[test]
    fn variation_aware_droop_attenuates_output() {
        let rng = Rng::from_seed(8);
        let t_ref = membit_xbar::T_REF;
        let mut hook =
            VariationAwareNoise::uniform(1, 0.0, 8, (t_ref, t_ref), 0.5, rng).unwrap();
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::from_vec(vec![2.0, -2.0], &[2]).unwrap());
        let y = hook.apply(&mut tape, 0, x).unwrap();
        let v = tape.value(y).as_slice().to_vec();
        // severity ∈ (0, 0.5]: output strictly shrunk, sign preserved
        assert!(v[0] < 2.0 && v[0] >= 1.0, "droop gave {v:?}");
        assert!((v[0] + v[1]).abs() < 1e-6);
    }

    #[test]
    fn variation_aware_constructor_validates() {
        let rng = Rng::from_seed(9);
        // inverted and out-of-envelope temperature ranges
        assert!(VariationAwareNoise::uniform(1, 1.0, 8, (390.0, 300.0), 0.1, rng.clone()).is_err());
        assert!(VariationAwareNoise::uniform(1, 1.0, 8, (100.0, 300.0), 0.1, rng.clone()).is_err());
        assert!(VariationAwareNoise::uniform(1, 1.0, 8, (300.0, 900.0), 0.1, rng.clone()).is_err());
        // droop must stay a proper fraction
        assert!(VariationAwareNoise::uniform(1, 1.0, 8, (300.0, 330.0), 1.0, rng.clone()).is_err());
        assert!(VariationAwareNoise::uniform(1, 1.0, 8, (300.0, 330.0), -0.1, rng.clone()).is_err());
        // mismatched layer vectors and zero pulses, as for the Gaussian hook
        assert!(
            VariationAwareNoise::new(vec![1.0], vec![8, 8], (300.0, 330.0), 0.1, rng.clone())
                .is_err()
        );
        assert!(VariationAwareNoise::new(vec![1.0], vec![0], (300.0, 330.0), 0.1, rng).is_err());
    }

    #[test]
    fn single_layer_noise_targets_one_layer() {
        let rng = Rng::from_seed(2);
        let mut hook = SingleLayerNoise::new(1, 5.0, rng);
        let (mut t, x) = setup(&[100]);
        assert_eq!(hook.apply(&mut t, 0, x).unwrap(), x); // untouched
        let y = hook.apply(&mut t, 1, x).unwrap();
        assert_ne!(y, x);
        assert!(t.value(y).std() > 1.0);
    }

    #[test]
    fn nan_fault_fires_on_schedule() {
        let mut once = NanFault::once_at(1);
        let mut always = NanFault::always_from(1);
        for pass in 0..4 {
            let (mut t, x) = setup(&[3]);
            let y = once.apply(&mut t, 0, x).unwrap();
            let poisoned = t.value(y).as_slice().iter().any(|v| v.is_nan());
            assert_eq!(poisoned, pass == 1, "once_at pass {pass}");
            let (mut t, x) = setup(&[3]);
            let y = always.apply(&mut t, 0, x).unwrap();
            let poisoned = t.value(y).as_slice().iter().any(|v| v.is_nan());
            assert_eq!(poisoned, pass >= 1, "always_from pass {pass}");
        }
        // non-target layers are never poisoned and don't advance the counter
        let mut h = NanFault::once_at(0);
        let (mut t, x) = setup(&[2]);
        assert_eq!(h.apply(&mut t, 1, x).unwrap(), x);
        assert_eq!(h.passes(), 0);
    }

    #[test]
    fn rms_recorder_measures_rms() {
        let mut rec = RmsRecorder::new(2);
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::from_vec(vec![3.0, -4.0], &[2]).unwrap());
        rec.apply(&mut tape, 0, x).unwrap();
        let rms = rec.rms();
        assert!((rms[0] - (12.5f32).sqrt()).abs() < 1e-5);
        assert_eq!(rms[1], 0.0);
        // second batch accumulates
        rec.apply(&mut tape, 0, x).unwrap();
        assert!((rec.rms()[0] - (12.5f32).sqrt()).abs() < 1e-5);
    }
}
