//! Structured training-pipeline errors.
//!
//! Everything in this crate returns [`crate::Result`], whose error type
//! [`TrainError`] distinguishes the three failure families a long run
//! actually hits: tensor/shape bugs, checkpoint damage, and numerical
//! divergence. Callers (bench binaries, the pipeline) can match on the
//! variant instead of parsing strings — a diverged GBO search is
//! recoverable policy (retry, widen γ), a corrupt checkpoint is not.

use std::fmt;

use membit_nn::CheckpointError;
use membit_tensor::TensorError;

/// Why the divergence watchdog tripped.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DivergenceReason {
    /// The batch loss evaluated to NaN or ±Inf.
    NonFiniteLoss,
    /// A parameter gradient contained NaN or ±Inf.
    NonFiniteGrad,
    /// The batch loss jumped far above its running average.
    LossSpike {
        /// The offending loss.
        loss: f32,
        /// The exponential moving average it was compared against.
        ema: f32,
    },
}

impl fmt::Display for DivergenceReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DivergenceReason::NonFiniteLoss => write!(f, "non-finite loss"),
            DivergenceReason::NonFiniteGrad => write!(f, "non-finite gradient"),
            DivergenceReason::LossSpike { loss, ema } => {
                write!(f, "loss spike ({loss} vs running average {ema})")
            }
        }
    }
}

/// A failure of the training/experiment stack.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TrainError {
    /// A tensor/shape/argument error.
    Tensor(TensorError),
    /// A checkpoint could not be written or read back.
    Checkpoint(CheckpointError),
    /// Training diverged and the watchdog exhausted its rollback budget.
    Diverged {
        /// Which stage diverged (`"pretrain"`, `"gbo"`, `"nia"`).
        stage: String,
        /// 0-based epoch that kept failing.
        epoch: usize,
        /// Rollback attempts that were made before giving up.
        retries: usize,
        /// What the watchdog observed on the final attempt.
        reason: DivergenceReason,
    },
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::Tensor(e) => write!(f, "{e}"),
            TrainError::Checkpoint(e) => write!(f, "{e}"),
            TrainError::Diverged {
                stage,
                epoch,
                retries,
                reason,
            } => write!(
                f,
                "{stage} diverged at epoch {epoch} ({reason}) after {retries} rollback retries"
            ),
        }
    }
}

impl std::error::Error for TrainError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TrainError::Tensor(e) => Some(e),
            TrainError::Checkpoint(e) => Some(e),
            TrainError::Diverged { .. } => None,
        }
    }
}

impl From<TensorError> for TrainError {
    fn from(e: TensorError) -> Self {
        TrainError::Tensor(e)
    }
}

impl From<CheckpointError> for TrainError {
    fn from(e: CheckpointError) -> Self {
        TrainError::Checkpoint(e)
    }
}

impl From<std::io::Error> for TrainError {
    fn from(e: std::io::Error) -> Self {
        TrainError::Checkpoint(CheckpointError::from(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let t: TrainError = TensorError::InvalidArgument("bad".into()).into();
        assert!(matches!(t, TrainError::Tensor(_)));
        let c: TrainError = CheckpointError::BadMagic.into();
        assert!(c.to_string().contains("magic"));
        let d = TrainError::Diverged {
            stage: "gbo".into(),
            epoch: 3,
            retries: 2,
            reason: DivergenceReason::LossSpike { loss: 9.0, ema: 1.0 },
        };
        let msg = d.to_string();
        assert!(msg.contains("gbo") && msg.contains("epoch 3") && msg.contains("spike"));
    }
}
