//! The model abstraction the GBO machinery operates on.

use membit_autograd::{Tape, VarId};
use membit_nn::{Binding, Mlp, MvmNoiseHook, Params, Phase, ResNet, Vgg};
use membit_tensor::Tensor;

use crate::Result;

/// Flattens `(name, mean, var)` running-stat triples into the
/// `{name}.running_mean` / `{name}.running_var` tensor list the
/// checkpoint format stores.
fn stats_to_tensors(stats: Vec<(String, Tensor, Tensor)>) -> Vec<(String, Tensor)> {
    let mut out = Vec::with_capacity(stats.len() * 2);
    for (name, mean, var) in stats {
        out.push((format!("{name}.running_mean"), mean));
        out.push((format!("{name}.running_var"), var));
    }
    out
}

/// Re-pairs `{name}.running_mean` / `{name}.running_var` entries into the
/// triples the models' `set_running_stats` consume. Unpaired or unknown
/// entries are ignored (the setter ignores unknown names too).
fn tensors_to_stats(state: &[(String, Tensor)]) -> Vec<(String, Tensor, Tensor)> {
    let mut out = Vec::new();
    for (name, mean) in state {
        let Some(base) = name.strip_suffix(".running_mean") else {
            continue;
        };
        let var_key = format!("{base}.running_var");
        if let Some((_, var)) = state.iter().find(|(n, _)| n == &var_key) {
            out.push((base.to_string(), mean.clone(), var.clone()));
        }
    }
    out
}

/// Any network whose crossbar-mapped layers expose MVM hook points.
///
/// Both the paper's [`Vgg`] and the test-scale [`Mlp`] implement this, so
/// every experiment in this crate runs unchanged on either.
pub trait CrossbarModel {
    /// Runs the network, returning class logits.
    ///
    /// # Errors
    ///
    /// Propagates tape/shape errors.
    fn forward(
        &mut self,
        tape: &mut Tape,
        params: &Params,
        binding: &mut Binding,
        x: VarId,
        phase: Phase,
        hook: &mut dyn MvmNoiseHook,
    ) -> Result<VarId>;

    /// Number of crossbar (hooked) layers.
    fn crossbar_layers(&self) -> usize;

    /// Non-parameter state (batch-norm running statistics) to include in
    /// checkpoints. Default: stateless.
    fn state_tensors(&self) -> Vec<(String, Tensor)> {
        Vec::new()
    }

    /// Restores state previously captured by
    /// [`state_tensors`](Self::state_tensors). Unknown names are ignored.
    fn restore_state_tensors(&mut self, _state: &[(String, Tensor)]) {}
}

impl CrossbarModel for Vgg {
    fn forward(
        &mut self,
        tape: &mut Tape,
        params: &Params,
        binding: &mut Binding,
        x: VarId,
        phase: Phase,
        hook: &mut dyn MvmNoiseHook,
    ) -> Result<VarId> {
        Ok(Vgg::forward(self, tape, params, binding, x, phase, hook)?)
    }

    fn crossbar_layers(&self) -> usize {
        Vgg::crossbar_layers(self)
    }

    fn state_tensors(&self) -> Vec<(String, Tensor)> {
        stats_to_tensors(self.running_stats())
    }

    fn restore_state_tensors(&mut self, state: &[(String, Tensor)]) {
        self.set_running_stats(&tensors_to_stats(state));
    }
}

impl CrossbarModel for ResNet {
    fn forward(
        &mut self,
        tape: &mut Tape,
        params: &Params,
        binding: &mut Binding,
        x: VarId,
        phase: Phase,
        hook: &mut dyn MvmNoiseHook,
    ) -> Result<VarId> {
        Ok(ResNet::forward(self, tape, params, binding, x, phase, hook)?)
    }

    fn crossbar_layers(&self) -> usize {
        ResNet::crossbar_layers(self)
    }

    fn state_tensors(&self) -> Vec<(String, Tensor)> {
        stats_to_tensors(self.running_stats())
    }

    fn restore_state_tensors(&mut self, state: &[(String, Tensor)]) {
        self.set_running_stats(&tensors_to_stats(state));
    }
}

impl CrossbarModel for Mlp {
    /// Rank-4 image batches (`[N, C, H, W]`) are flattened to `[N, C·H·W]`
    /// automatically, so MLPs consume the same datasets as the VGG.
    fn forward(
        &mut self,
        tape: &mut Tape,
        params: &Params,
        binding: &mut Binding,
        x: VarId,
        phase: Phase,
        hook: &mut dyn MvmNoiseHook,
    ) -> Result<VarId> {
        let shape = tape.value(x).shape().to_vec();
        let x = if shape.len() > 2 {
            let n = shape[0];
            let d: usize = shape[1..].iter().product();
            tape.reshape(x, &[n, d])?
        } else {
            x
        };
        Ok(Mlp::forward(self, tape, params, binding, x, phase, hook)?)
    }

    fn crossbar_layers(&self) -> usize {
        Mlp::crossbar_layers(self)
    }

    fn state_tensors(&self) -> Vec<(String, Tensor)> {
        stats_to_tensors(self.running_stats())
    }

    fn restore_state_tensors(&mut self, state: &[(String, Tensor)]) {
        self.set_running_stats(&tensors_to_stats(state));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use membit_nn::{MlpConfig, NoNoise, VggConfig};
    use membit_tensor::{Rng, Tensor};

    #[test]
    fn trait_objects_work_for_both_models() {
        let mut rng = Rng::from_seed(0);

        let mut params = Params::new();
        let mut mlp = Mlp::new(&MlpConfig::new(4, &[6], 3), &mut params, &mut rng).unwrap();
        let model: &mut dyn CrossbarModel = &mut mlp;
        assert_eq!(model.crossbar_layers(), 1);
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::zeros(&[2, 4]));
        let mut binding = params.binding();
        let y = model
            .forward(&mut tape, &params, &mut binding, x, Phase::Eval, &mut NoNoise)
            .unwrap();
        assert_eq!(tape.value(y).shape(), &[2, 3]);

        let mut vparams = Params::new();
        let mut vgg = Vgg::new(&VggConfig::tiny(), &mut vparams, &mut rng).unwrap();
        let vmodel: &mut dyn CrossbarModel = &mut vgg;
        assert_eq!(vmodel.crossbar_layers(), 3);
    }
}
