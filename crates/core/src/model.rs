//! The model abstraction the GBO machinery operates on.

use membit_autograd::{Tape, VarId};
use membit_nn::{Binding, Mlp, MvmNoiseHook, Params, Phase, ResNet, Vgg};

use crate::Result;

/// Any network whose crossbar-mapped layers expose MVM hook points.
///
/// Both the paper's [`Vgg`] and the test-scale [`Mlp`] implement this, so
/// every experiment in this crate runs unchanged on either.
pub trait CrossbarModel {
    /// Runs the network, returning class logits.
    ///
    /// # Errors
    ///
    /// Propagates tape/shape errors.
    fn forward(
        &mut self,
        tape: &mut Tape,
        params: &Params,
        binding: &mut Binding,
        x: VarId,
        phase: Phase,
        hook: &mut dyn MvmNoiseHook,
    ) -> Result<VarId>;

    /// Number of crossbar (hooked) layers.
    fn crossbar_layers(&self) -> usize;
}

impl CrossbarModel for Vgg {
    fn forward(
        &mut self,
        tape: &mut Tape,
        params: &Params,
        binding: &mut Binding,
        x: VarId,
        phase: Phase,
        hook: &mut dyn MvmNoiseHook,
    ) -> Result<VarId> {
        Vgg::forward(self, tape, params, binding, x, phase, hook)
    }

    fn crossbar_layers(&self) -> usize {
        Vgg::crossbar_layers(self)
    }
}

impl CrossbarModel for ResNet {
    fn forward(
        &mut self,
        tape: &mut Tape,
        params: &Params,
        binding: &mut Binding,
        x: VarId,
        phase: Phase,
        hook: &mut dyn MvmNoiseHook,
    ) -> Result<VarId> {
        ResNet::forward(self, tape, params, binding, x, phase, hook)
    }

    fn crossbar_layers(&self) -> usize {
        ResNet::crossbar_layers(self)
    }
}

impl CrossbarModel for Mlp {
    /// Rank-4 image batches (`[N, C, H, W]`) are flattened to `[N, C·H·W]`
    /// automatically, so MLPs consume the same datasets as the VGG.
    fn forward(
        &mut self,
        tape: &mut Tape,
        params: &Params,
        binding: &mut Binding,
        x: VarId,
        phase: Phase,
        hook: &mut dyn MvmNoiseHook,
    ) -> Result<VarId> {
        let shape = tape.value(x).shape().to_vec();
        let x = if shape.len() > 2 {
            let n = shape[0];
            let d: usize = shape[1..].iter().product();
            tape.reshape(x, &[n, d])?
        } else {
            x
        };
        Mlp::forward(self, tape, params, binding, x, phase, hook)
    }

    fn crossbar_layers(&self) -> usize {
        Mlp::crossbar_layers(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use membit_nn::{MlpConfig, NoNoise, VggConfig};
    use membit_tensor::{Rng, Tensor};

    #[test]
    fn trait_objects_work_for_both_models() {
        let mut rng = Rng::from_seed(0);

        let mut params = Params::new();
        let mut mlp = Mlp::new(&MlpConfig::new(4, &[6], 3), &mut params, &mut rng).unwrap();
        let model: &mut dyn CrossbarModel = &mut mlp;
        assert_eq!(model.crossbar_layers(), 1);
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::zeros(&[2, 4]));
        let mut binding = params.binding();
        let y = model
            .forward(&mut tape, &params, &mut binding, x, Phase::Eval, &mut NoNoise)
            .unwrap();
        assert_eq!(tape.value(y).shape(), &[2, 3]);

        let mut vparams = Params::new();
        let mut vgg = Vgg::new(&VggConfig::tiny(), &mut vparams, &mut rng).unwrap();
        let vmodel: &mut dyn CrossbarModel = &mut vgg;
        assert_eq!(vmodel.crossbar_layers(), 3);
    }
}
