//! # membit-core
//!
//! The paper's primary contribution: **Gradient-based Bit encoding
//! Optimization (GBO)** and **Pulse Length Approximation (PLA)** for
//! noise-robust binary memristive crossbars, plus everything needed to
//! reproduce the paper's evaluation — pre-training of the VGG9-BWNN,
//! layer-noise calibration, the layer-wise sensitivity analysis (Fig. 2),
//! PLA/baseline evaluation (Table I), Noise-Injection Adaptation and its
//! synergy with GBO (Table II), and a device-level validation pass on the
//! [`membit_xbar`] tiled simulator.
//!
//! The crate is organized around three ideas:
//!
//! 1. A [`CrossbarModel`] is any network exposing per-layer crossbar MVM
//!    hook points ([`membit_nn::MvmNoiseHook`]).
//! 2. Noise is always expressed through a [`NoiseCalibration`]: the
//!    paper's unit-less σ ∈ {10, 15, 20} maps onto per-layer absolute
//!    noise as `σ/unit × RMS(layer)`, measured once on the clean
//!    pre-trained network.
//! 3. Every experiment is a pure function of `(config, seed)`.
//!
//! See `DESIGN.md` and `EXPERIMENTS.md` at the repository root for the
//! experiment index.
//!
//! ```
//! use membit_core::{calibrate_noise, evaluate_with_hook, GboConfig, PlaHook};
//! use membit_data::{synth_cifar, SynthCifarConfig};
//! use membit_nn::{Mlp, MlpConfig, Params};
//! use membit_tensor::{Rng, RngStream};
//!
//! # fn main() -> Result<(), membit_core::TrainError> {
//! // a binary-weight model with one crossbar layer, and data
//! let (train, test) = synth_cifar(&SynthCifarConfig::tiny(), 1)?;
//! let mut rng = Rng::from_seed(1).stream(RngStream::Init);
//! let mut params = Params::new();
//! let mut model = Mlp::new(&MlpConfig::new(3 * 8 * 8, &[16], 10), &mut params, &mut rng)?;
//!
//! // calibrate the crossbar noise scale, then evaluate under a
//! // 12-pulse thermometer code at paper-σ 15
//! let cal = calibrate_noise(&mut model, &params, &train, 32, 2, 14.0)?;
//! let mut hook = PlaHook::new(
//!     vec![12],
//!     cal.sigma_abs(15.0),
//!     9,
//!     Rng::from_seed(2).stream(RngStream::Noise),
//! )?;
//! let acc = evaluate_with_hook(&mut model, &params, &test, 32, &mut hook)?;
//! assert!((0.0..=1.0).contains(&acc));
//!
//! // the paper's GBO search space: pulse lengths {4, 6, 8, 10, 12, 14, 16}
//! assert_eq!(GboConfig::paper(1e-3, 0).pulse_lengths(), vec![4, 6, 8, 10, 12, 14, 16]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod calibrate;
mod device_eval;
mod error;
mod gbo;
mod hooks;
mod model;
mod nia;
mod pipeline;
mod report;
mod resilience;
mod sensitivity;
mod trainer;
mod watchdog;

pub use calibrate::{calibrate_noise, NoiseCalibration};
pub use device_eval::{DeploymentPolicy, DeviceEvalConfig, DeviceVgg};
pub use error::{DivergenceReason, TrainError};
pub use gbo::{GboConfig, GboResult, GboTrainer};
pub use hooks::{
    GaussianMvmNoise, NanFault, NanFaultMode, PlaHook, RmsRecorder, SingleLayerNoise,
    VariationAwareNoise,
};
pub use model::CrossbarModel;
pub use nia::{
    nia_finetune, nia_finetune_resilient, nia_finetune_variation_aware, NiaConfig, NiaVariation,
};
pub use pipeline::{Experiment, ExperimentConfig};
pub use report::{
    markdown_table, write_csv, FaultAblationRow, GuardAblationRow, NonIdealAblationRow, Table1Row,
    Table2Row,
};
pub use resilience::ResilienceConfig;
pub use sensitivity::layer_sensitivity;
pub use trainer::{
    evaluate, evaluate_with_hook, pretrain, pretrain_resilient, pretrain_with_validation,
    TrainConfig, TrainReport, ValidatedTrainReport,
};
pub use watchdog::{TrainWatchdog, WatchdogConfig};

/// Result alias for the crate's [`TrainError`].
pub type Result<T> = std::result::Result<T, TrainError>;
