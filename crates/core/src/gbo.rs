//! Gradient-based Bit encoding Optimization (GBO) — paper §III-A.
//!
//! Weights are frozen; per crossbar layer `l` a logit vector `λ^l ∈ ℝ^m`
//! over the pulse-scaling set `Ω` is the only trainable state. Each
//! forward pass mixes, per layer, `m` independent noise samples with
//! variances `σ_l²/(n_k·p)` weighted by `α^l = softmax(λ^l)` (Eq. 5); the
//! loss is cross-entropy plus the latency regularizer
//! `γ·Σ_l Σ_k α_k^l·n_k^l·p` (Eq. 6). At the end, each layer deploys the
//! encoding with the largest logit (Eq. after 7).

use membit_autograd::{Tape, VarId};
use membit_data::Dataset;
use membit_nn::{
    Adam, Checkpoint, MvmNoiseHook, Optimizer, ParamId, Params, Phase, Result as NnResult,
};
use membit_tensor::{Rng, RngStream, Tensor, TensorError};

use crate::calibrate::NoiseCalibration;
use crate::error::{DivergenceReason, TrainError};
use crate::model::CrossbarModel;
use crate::resilience::{
    need_f64, need_u64, put_params, put_rng, put_state, restore_params, restore_rng, take_state,
    ResilienceConfig,
};
use crate::watchdog::TrainWatchdog;
use crate::Result;

/// Hyperparameters of the GBO search.
#[derive(Debug, Clone, PartialEq)]
pub struct GboConfig {
    /// Pulse scaling set Ω (paper: `[0.5, 0.75, 1, 1.25, 1.5, 1.75, 2]`).
    pub omega: Vec<f32>,
    /// Base thermometer pulse count `p` (paper: 8).
    pub base_pulses: usize,
    /// Latency/accuracy trade-off weight γ of Eq. 6.
    pub gamma: f32,
    /// Search epochs (paper: 10).
    pub epochs: usize,
    /// Adam learning rate for λ (paper: 1e-4; at this simulator's scale a
    /// larger default converges within the short search budget).
    pub lr: f32,
    /// Minibatch size.
    pub batch_size: usize,
    /// Root RNG seed for noise sampling and shuffling.
    pub seed: u64,
    /// **Extension beyond the paper**: when set to the per-layer
    /// effective fan-ins (e.g. [`membit_nn::Vgg::crossbar_fan_ins`]), the
    /// per-branch mixture variance becomes
    /// `σ_l²/(n_k·p) + fan_in_l·MSE(q_k)` where `MSE(q)` is the PLA
    /// representation error of a `q`-pulse code over the activation
    /// grid — letting the search *see* that non-exact pulse budgets trade
    /// noise suppression against approximation error. `None` reproduces
    /// the paper's Eq. 5 exactly.
    pub snap_error_fan_in: Option<Vec<f32>>,
}

impl GboConfig {
    /// The paper's search space: Ω as above, `p = 8` ⇒ pulse lengths
    /// `{4, 6, 8, 10, 12, 14, 16}`.
    pub fn paper(gamma: f32, seed: u64) -> Self {
        Self {
            omega: vec![0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0],
            base_pulses: 8,
            gamma,
            epochs: 10,
            lr: 0.05,
            batch_size: 50,
            seed,
            snap_error_fan_in: None,
        }
    }

    /// The pulse length each Ω entry deploys: `round(n_k·p)`.
    pub fn pulse_lengths(&self) -> Vec<usize> {
        self.omega
            .iter()
            .map(|&n| (n * self.base_pulses as f32).round().max(1.0) as usize)
            .collect()
    }

    fn validate(&self, layers: usize) -> Result<()> {
        if self.omega.is_empty() {
            return Err(TensorError::InvalidArgument(
                "Ω must contain at least one scaling factor".into(),
            )
            .into());
        }
        if self.omega.iter().any(|&n| n <= 0.0) {
            return Err(TensorError::InvalidArgument("Ω entries must be positive".into()).into());
        }
        if self.base_pulses == 0 || self.epochs == 0 || self.batch_size == 0 || layers == 0 {
            return Err(TensorError::InvalidArgument(
                "base_pulses, epochs, batch_size and layer count must be nonzero".into(),
            )
            .into());
        }
        Ok(())
    }
}

/// Outcome of a GBO search.
#[derive(Debug, Clone, PartialEq)]
pub struct GboResult {
    /// Final logits, one `[m]` vector per layer.
    pub lambdas: Vec<Vec<f32>>,
    /// Per-layer selected pulse scaling factor `n_optimal`.
    pub selected_scale: Vec<f32>,
    /// Per-layer deployed pulse count `round(n·p)` — the paper's
    /// "# pulses in each layer" column.
    pub selected_pulses: Vec<usize>,
    /// Mean total loss per epoch.
    pub epoch_losses: Vec<f32>,
}

impl GboResult {
    /// Average deployed pulse count (the paper's "Avg.# pulses").
    pub fn avg_pulses(&self) -> f32 {
        self.selected_pulses.iter().sum::<usize>() as f32
            / self.selected_pulses.len().max(1) as f32
    }
}

/// The live hook used during search: binds λ, computes α, and applies the
/// Eq. 5 noise mixture at every crossbar layer.
struct GboSearchHook<'a> {
    lambda_store: &'a Params,
    lambda_ids: &'a [ParamId],
    binding: &'a mut membit_nn::Binding,
    sigma_abs: &'a [f32],
    omega: &'a [f32],
    base_pulses: usize,
    /// Per-layer, per-branch additive variance from PLA representation
    /// error (all zeros when the snap-error extension is disabled).
    snap_var: &'a [Vec<f32>],
    rng: &'a mut Rng,
    alpha_vars: Vec<Option<VarId>>,
}

impl MvmNoiseHook for GboSearchHook<'_> {
    fn apply(&mut self, tape: &mut Tape, layer: usize, mvm_out: VarId) -> NnResult<VarId> {
        let lam = self
            .lambda_store
            .bind(tape, self.binding, self.lambda_ids[layer]);
        let alpha = tape.softmax1d(lam)?;
        self.alpha_vars[layer] = Some(alpha);
        let shape = tape.value(mvm_out).shape().to_vec();
        let eps: Vec<Tensor> = self
            .omega
            .iter()
            .enumerate()
            .map(|(k, &n)| {
                let s = self.sigma_abs[layer];
                let var = s * s / (n * self.base_pulses as f32) + self.snap_var[layer][k];
                self.rng.normal_tensor(&shape, 0.0, var.sqrt())
            })
            .collect();
        tape.mix_noise(mvm_out, alpha, eps)
    }
}

/// What one search-epoch attempt produced.
enum SearchEpoch {
    Done { mean_loss: f32 },
    Tripped(DivergenceReason),
}

/// Runs GBO searches against a frozen pre-trained model.
#[derive(Debug)]
pub struct GboTrainer {
    config: GboConfig,
    lambda_store: Params,
    lambda_ids: Vec<ParamId>,
}

impl GboTrainer {
    /// Creates a trainer with zero-initialized λ for `layers` crossbar
    /// layers.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation errors.
    pub fn new(layers: usize, config: GboConfig) -> Result<Self> {
        config.validate(layers)?;
        let m = config.omega.len();
        let mut lambda_store = Params::new();
        let lambda_ids = (0..layers)
            .map(|l| lambda_store.register(format!("lambda{l}"), Tensor::zeros(&[m])))
            .collect();
        Ok(Self {
            config,
            lambda_store,
            lambda_ids,
        })
    }

    /// The search configuration.
    pub fn config(&self) -> &GboConfig {
        &self.config
    }

    /// Current λ values (one vector per layer).
    pub fn lambdas(&self) -> Vec<Vec<f32>> {
        self.lambda_ids
            .iter()
            .map(|&id| self.lambda_store.get(id).as_slice().to_vec())
            .collect()
    }

    /// Runs the search: `epochs` passes over `train` updating only λ with
    /// Adam, weights (and batch-norm statistics) frozen.
    ///
    /// `calibration` supplies the per-layer absolute noise for
    /// `paper_sigma`.
    ///
    /// # Errors
    ///
    /// Propagates tape/shape errors and calibration/layer-count
    /// mismatches.
    pub fn search(
        &mut self,
        model: &mut dyn CrossbarModel,
        params: &Params,
        train: &Dataset,
        calibration: &NoiseCalibration,
        paper_sigma: f32,
    ) -> Result<GboResult> {
        self.search_resilient(
            model,
            params,
            train,
            calibration,
            paper_sigma,
            &ResilienceConfig::default(),
        )
    }

    /// [`search`](Self::search) with an explicit resilience policy:
    /// watchdog-guarded rollback of the λ optimization, periodic atomic
    /// checkpoints of λ / Adam moments / RNG streams, and `--resume`
    /// restore (see [`pretrain_resilient`](crate::pretrain_resilient) for
    /// the shared semantics).
    ///
    /// # Errors
    ///
    /// As [`search`](Self::search), plus checkpoint errors and
    /// [`TrainError::Diverged`] on unrecoverable divergence.
    pub fn search_resilient(
        &mut self,
        model: &mut dyn CrossbarModel,
        params: &Params,
        train: &Dataset,
        calibration: &NoiseCalibration,
        paper_sigma: f32,
        res: &ResilienceConfig,
    ) -> Result<GboResult> {
        let layers = self.lambda_ids.len();
        if model.crossbar_layers() != layers || calibration.layers() != layers {
            return Err(TensorError::InvalidArgument(format!(
                "layer count mismatch: trainer {layers}, model {}, calibration {}",
                model.crossbar_layers(),
                calibration.layers()
            ))
            .into());
        }
        let sigma_abs = calibration.sigma_abs(paper_sigma);
        let snap_var = self.snap_variances()?;
        let costs: Vec<f32> = self
            .config
            .omega
            .iter()
            .map(|&n| n * self.config.base_pulses as f32)
            .collect();
        let cost_tensor = Tensor::from_vec(costs, &[self.config.omega.len()])?;
        let mut opt = Adam::new(self.config.lr);
        let root = Rng::from_seed(self.config.seed);
        let mut shuffle_rng = root.stream(RngStream::Data);
        let mut noise_rng = root.stream(RngStream::Noise);
        let mut watchdog = TrainWatchdog::new(res.watchdog.clone());
        let mut epoch_losses = Vec::with_capacity(self.config.epochs);
        let mut lr_scale = 1.0f32;
        let mut start_epoch = 0usize;
        let mut prior_trips = 0usize;

        if let Some(ckpt) = res.load_for_resume()? {
            start_epoch = need_u64(&ckpt, "meta.epoch")? as usize;
            lr_scale = need_f64(&ckpt, "meta.lr_scale")? as f32;
            prior_trips = need_u64(&ckpt, "meta.trips")? as usize;
            if let Some(losses) = ckpt.tensor("loss.epoch_losses") {
                epoch_losses = losses.as_slice().to_vec();
            }
            restore_params(&ckpt, &mut self.lambda_store)?;
            opt.restore_state_tensors(&take_state(&ckpt, "opt"));
            shuffle_rng = restore_rng(&ckpt, "shuffle")?;
            noise_rng = restore_rng(&ckpt, "noise")?;
        }

        let mut epoch = start_epoch;
        while epoch < self.config.epochs {
            let snap_lambda = self.lambda_store.clone();
            let snap_opt = opt.state_tensors();
            let snap_shuffle = shuffle_rng.clone();
            let snap_noise = noise_rng.clone();
            let mut retries = 0usize;
            let mean_loss = loop {
                opt.set_lr(self.config.lr * lr_scale);
                let outcome = self.run_search_epoch(
                    model,
                    params,
                    train,
                    &sigma_abs,
                    &snap_var,
                    &cost_tensor,
                    &mut opt,
                    &mut shuffle_rng,
                    &mut noise_rng,
                    &mut watchdog,
                )?;
                match outcome {
                    SearchEpoch::Done { mean_loss } => break mean_loss,
                    SearchEpoch::Tripped(reason) => {
                        if retries >= res.watchdog.max_retries {
                            return Err(TrainError::Diverged {
                                stage: "gbo".to_string(),
                                epoch,
                                retries,
                                reason,
                            });
                        }
                        retries += 1;
                        self.lambda_store = snap_lambda.clone();
                        opt = Adam::new(self.config.lr);
                        opt.restore_state_tensors(&snap_opt);
                        shuffle_rng = snap_shuffle.clone();
                        noise_rng = snap_noise.clone();
                        lr_scale *= res.watchdog.lr_backoff;
                        watchdog.reset_epoch();
                    }
                }
            };
            epoch_losses.push(mean_loss);
            if res.should_checkpoint(epoch) {
                let mut ckpt = Checkpoint::new();
                ckpt.put_u64("meta.epoch", (epoch + 1) as u64);
                ckpt.put_f64("meta.lr_scale", f64::from(lr_scale));
                ckpt.put_u64("meta.trips", (prior_trips + watchdog.trips()) as u64);
                ckpt.put_tensor(
                    "loss.epoch_losses",
                    Tensor::from_vec(epoch_losses.clone(), &[epoch_losses.len()])?,
                );
                put_rng(&mut ckpt, "shuffle", &shuffle_rng);
                put_rng(&mut ckpt, "noise", &noise_rng);
                put_params(&mut ckpt, &self.lambda_store);
                put_state(&mut ckpt, "opt", &opt.state_tensors());
                res.save(&ckpt)?;
            }
            epoch += 1;
        }
        res.finish();
        Ok(self.result(epoch_losses))
    }

    /// One pass over the (re-shuffled) search set. Returns `Tripped` the
    /// moment the watchdog flags the loss or the λ gradients.
    #[allow(clippy::too_many_arguments)]
    fn run_search_epoch(
        &mut self,
        model: &mut dyn CrossbarModel,
        params: &Params,
        train: &Dataset,
        sigma_abs: &[f32],
        snap_var: &[Vec<f32>],
        cost_tensor: &Tensor,
        opt: &mut Adam,
        shuffle_rng: &mut Rng,
        noise_rng: &mut Rng,
        watchdog: &mut TrainWatchdog,
    ) -> Result<SearchEpoch> {
        let layers = self.lambda_ids.len();
        let shuffled = train.shuffled(shuffle_rng);
        let mut loss_sum = 0.0f64;
        let mut batches = 0usize;
        for (images, labels) in shuffled.batches(self.config.batch_size) {
            let mut tape = Tape::new();
            let mut weight_binding = params.frozen_binding();
            let mut lambda_binding = self.lambda_store.binding();
            let x = tape.constant(images);
            // The hook borrows the λ store and binding for the
            // duration of the forward + loss construction.
            {
                let mut hook = GboSearchHook {
                    lambda_store: &self.lambda_store,
                    lambda_ids: &self.lambda_ids,
                    binding: &mut lambda_binding,
                    sigma_abs,
                    omega: &self.config.omega,
                    base_pulses: self.config.base_pulses,
                    snap_var,
                    rng: noise_rng,
                    alpha_vars: vec![None; layers],
                };
                let logits = model.forward(
                    &mut tape,
                    params,
                    &mut weight_binding,
                    x,
                    Phase::Eval,
                    &mut hook,
                )?;
                // latency term: γ · Σ_l ⟨α^l, n·p⟩
                let mut latency: Option<VarId> = None;
                for alpha in hook.alpha_vars.iter().flatten() {
                    let term = tape.dot_const(*alpha, cost_tensor)?;
                    latency = Some(match latency {
                        Some(acc) => tape.add(acc, term)?,
                        None => term,
                    });
                }
                let ce = tape.softmax_cross_entropy(logits, &labels)?;
                let loss = match latency {
                    Some(lat) => {
                        let weighted = tape.mul_scalar(lat, self.config.gamma);
                        tape.add(ce, weighted)?
                    }
                    None => ce,
                };
                let loss_value = tape.value(loss).item();
                if let Some(reason) = watchdog.observe(loss_value) {
                    return Ok(SearchEpoch::Tripped(reason));
                }
                loss_sum += f64::from(loss_value);
                batches += 1;
                tape.backward(loss)?;
            }
            if let Some(reason) = watchdog.check_grads(&tape, &lambda_binding) {
                return Ok(SearchEpoch::Tripped(reason));
            }
            opt.step(&mut self.lambda_store, &tape, &lambda_binding)?;
        }
        Ok(SearchEpoch::Done {
            mean_loss: (loss_sum / batches.max(1) as f64) as f32,
        })
    }

    /// Per-layer, per-branch additive variance from the PLA
    /// representation error (zeros unless the snap-error extension is
    /// configured).
    fn snap_variances(&self) -> Result<Vec<Vec<f32>>> {
        let layers = self.lambda_ids.len();
        let m = self.config.omega.len();
        let Some(fan_ins) = &self.config.snap_error_fan_in else {
            return Ok(vec![vec![0.0; m]; layers]);
        };
        if fan_ins.len() != layers {
            return Err(TensorError::InvalidArgument(format!(
                "snap_error_fan_in covers {} layers, trainer has {layers}",
                fan_ins.len()
            ))
            .into());
        }
        let levels = self.config.base_pulses + 1;
        let mut per_branch_mse = Vec::with_capacity(m);
        for &n in &self.config.omega {
            let q = (n * self.config.base_pulses as f32).round().max(1.0) as usize;
            let mse = if q.is_multiple_of(self.config.base_pulses) {
                0.0
            } else {
                let pla = membit_encoding::pla::PlaThermometer::new(levels, q)?;
                let total: f32 = (0..levels)
                    .map(|k| {
                        let v = k as f32 / (levels - 1) as f32 * 2.0 - 1.0;
                        (pla.approximate(v) - v).powi(2)
                    })
                    .sum();
                total / levels as f32
            };
            per_branch_mse.push(mse);
        }
        Ok(fan_ins
            .iter()
            .map(|&f| per_branch_mse.iter().map(|&mse| f * mse).collect())
            .collect())
    }

    /// Extracts the deployed configuration from the current λ.
    fn result(&self, epoch_losses: Vec<f32>) -> GboResult {
        let lambdas = self.lambdas();
        let mut selected_scale = Vec::with_capacity(lambdas.len());
        let mut selected_pulses = Vec::with_capacity(lambdas.len());
        for lam in &lambdas {
            let best = lam
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(i, _)| i)
                .unwrap_or(0);
            let n = self.config.omega[best];
            selected_scale.push(n);
            selected_pulses.push((n * self.config.base_pulses as f32).round().max(1.0) as usize);
        }
        GboResult {
            lambdas,
            selected_scale,
            selected_pulses,
            epoch_losses,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibrate::calibrate_noise;
    use crate::trainer::{pretrain, TrainConfig};
    use membit_data::{synth_cifar, SynthCifarConfig};
    use membit_nn::{Mlp, MlpConfig, NoNoise};

    #[test]
    fn config_validation_and_pulse_lengths() {
        let cfg = GboConfig::paper(0.001, 0);
        assert_eq!(cfg.pulse_lengths(), vec![4, 6, 8, 10, 12, 14, 16]);
        assert!(GboTrainer::new(0, cfg.clone()).is_err());
        let mut bad = cfg.clone();
        bad.omega.clear();
        assert!(GboTrainer::new(2, bad).is_err());
        let mut neg = cfg;
        neg.omega[0] = -1.0;
        assert!(GboTrainer::new(2, neg).is_err());
    }

    #[test]
    fn huge_gamma_collapses_to_shortest_pulses() {
        // With an enormous latency weight, the CE term is irrelevant and
        // every layer must pick the cheapest encoding (n = 0.5 ⇒ 4 pulses).
        let mut rng = Rng::from_seed(0);
        let mut params = Params::new();
        let mut mlp = Mlp::new(
            &MlpConfig::new(3 * 8 * 8, &[16, 12], 10),
            &mut params,
            &mut rng,
        )
        .unwrap();
        let (train, _) = synth_cifar(&SynthCifarConfig::tiny(), 3).unwrap();
        let cal = calibrate_noise(&mut mlp, &params, &train, 20, 2, 10.0).unwrap();
        let mut cfg = GboConfig::paper(10.0, 1);
        cfg.epochs = 4;
        cfg.batch_size = 40;
        cfg.lr = 0.2;
        let mut trainer = GboTrainer::new(2, cfg).unwrap();
        let result = trainer
            .search(&mut mlp, &params, &train, &cal, 10.0)
            .unwrap();
        assert_eq!(result.selected_pulses, vec![4, 4], "{:?}", result.lambdas);
        assert_eq!(result.avg_pulses(), 4.0);
    }

    #[test]
    fn zero_gamma_under_heavy_noise_prefers_long_pulses() {
        // With γ = 0 and strong noise, longer codes strictly reduce the CE
        // loss, so λ should drift toward n = 2 (16 pulses).
        let mut rng = Rng::from_seed(0);
        let mut params = Params::new();
        let mut mlp = Mlp::new(
            &MlpConfig::new(3 * 8 * 8, &[16], 10),
            &mut params,
            &mut rng,
        )
        .unwrap();
        let (train, _) = synth_cifar(&SynthCifarConfig::tiny(), 3).unwrap();
        // train briefly so the CE landscape is informative
        let tc = TrainConfig {
            epochs: 20,
            batch_size: 20,
            lr: 2e-2,
            momentum: 0.9,
            weight_decay: 0.0,
            augment_flip: false,
            seed: 2,
        };
        pretrain(&mut mlp, &mut params, &train, &tc, &mut NoNoise).unwrap();
        let cal = calibrate_noise(&mut mlp, &params, &train, 20, 2, 10.0).unwrap();
        let mut cfg = GboConfig::paper(0.0, 1);
        cfg.epochs = 6;
        cfg.batch_size = 40;
        cfg.lr = 0.2;
        let mut trainer = GboTrainer::new(1, cfg).unwrap();
        // very strong noise: paper σ of 30 ⇒ 3× the layer RMS
        let result = trainer
            .search(&mut mlp, &params, &train, &cal, 30.0)
            .unwrap();
        assert!(
            result.selected_pulses[0] >= 10,
            "selected {:?}, λ {:?}",
            result.selected_pulses,
            result.lambdas
        );
        // the cheapest (noisiest) encodings must rank below the selected one
        let lam = &result.lambdas[0];
        let max = lam.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        assert!(lam[0] < max && lam[1] < max, "λ {lam:?}");
    }

    #[test]
    fn layer_count_mismatch_rejected() {
        let mut rng = Rng::from_seed(0);
        let mut params = Params::new();
        let mut mlp = Mlp::new(&MlpConfig::new(8, &[4], 2), &mut params, &mut rng).unwrap();
        let cal = NoiseCalibration::new(vec![1.0, 1.0], 10.0).unwrap();
        let (train, _) = synth_cifar(&SynthCifarConfig::tiny(), 0).unwrap();
        let mut trainer = GboTrainer::new(3, GboConfig::paper(0.0, 0)).unwrap();
        assert!(trainer
            .search(&mut mlp, &params, &train, &cal, 10.0)
            .is_err());
    }

    #[test]
    fn lambdas_start_at_zero() {
        let trainer = GboTrainer::new(2, GboConfig::paper(0.001, 0)).unwrap();
        for lam in trainer.lambdas() {
            assert_eq!(lam, vec![0.0; 7]);
        }
    }
}
