//! The divergence watchdog: per-batch numerical health checks for every
//! training loop in this crate.
//!
//! The watchdog is a small state machine wrapped around an exponential
//! moving average of the batch loss:
//!
//! ```text
//!         observe(loss)                    healthy → update EMA
//!   ┌────────────────────┐
//!   │  loss NaN/Inf?     │──► NonFiniteLoss ─┐
//!   │  grads NaN/Inf?    │──► NonFiniteGrad ─┼─► caller rolls back to the
//!   │  loss ≫ EMA after  │                   │   last good epoch snapshot,
//!   │  warmup?           │──► LossSpike ─────┘   scales LR down, retries;
//!   └────────────────────┘                       after `max_retries` the
//!                                                run fails with
//!                                                [`TrainError::Diverged`]
//! ```
//!
//! The training loops own the rollback mechanics (snapshots, LR backoff,
//! retry budget — see `pretrain_resilient`); this module owns detection.
//!
//! [`TrainError::Diverged`]: crate::TrainError::Diverged

use membit_autograd::Tape;
use membit_nn::Binding;

use crate::error::DivergenceReason;

/// Tuning knobs for the [`TrainWatchdog`].
#[derive(Debug, Clone, PartialEq)]
pub struct WatchdogConfig {
    /// Rollback attempts per epoch before the run fails with
    /// [`Diverged`](crate::TrainError::Diverged).
    pub max_retries: usize,
    /// A batch loss above `spike_factor × EMA` (after warmup) counts as
    /// divergence. Set very large to effectively disable spike detection.
    pub spike_factor: f32,
    /// Batches observed before spike detection arms (the EMA needs a few
    /// samples to mean anything; NaN/Inf checks are always armed).
    pub warmup_batches: usize,
    /// EMA decay per batch (closer to 1 = smoother).
    pub ema_decay: f32,
    /// Also scan parameter gradients for NaN/Inf before each optimizer
    /// step (catches corruption the scalar loss hides).
    pub check_grads: bool,
    /// Learning-rate multiplier applied on every rollback.
    pub lr_backoff: f32,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        Self {
            max_retries: 2,
            spike_factor: 25.0,
            warmup_batches: 8,
            ema_decay: 0.9,
            check_grads: true,
            lr_backoff: 0.5,
        }
    }
}

/// Per-batch numerical health monitor (see the module docs for the state
/// machine).
#[derive(Debug, Clone)]
pub struct TrainWatchdog {
    config: WatchdogConfig,
    ema: Option<f32>,
    observed: usize,
    trips: usize,
}

impl TrainWatchdog {
    /// Creates a watchdog with the given thresholds.
    pub fn new(config: WatchdogConfig) -> Self {
        Self {
            config,
            ema: None,
            observed: 0,
            trips: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &WatchdogConfig {
        &self.config
    }

    /// Number of times the watchdog has tripped so far.
    pub fn trips(&self) -> usize {
        self.trips
    }

    /// Feeds one batch loss. Returns `Some(reason)` when the loss is
    /// unhealthy — the caller must then roll back and call
    /// [`reset_epoch`](Self::reset_epoch). Healthy losses update the EMA.
    pub fn observe(&mut self, loss: f32) -> Option<DivergenceReason> {
        if !loss.is_finite() {
            self.trips += 1;
            return Some(DivergenceReason::NonFiniteLoss);
        }
        if self.observed >= self.config.warmup_batches {
            if let Some(ema) = self.ema {
                if ema > 0.0 && loss > ema * self.config.spike_factor {
                    self.trips += 1;
                    return Some(DivergenceReason::LossSpike { loss, ema });
                }
            }
        }
        let d = self.config.ema_decay;
        self.ema = Some(match self.ema {
            Some(ema) => ema * d + loss * (1.0 - d),
            None => loss,
        });
        self.observed += 1;
        None
    }

    /// Scans the gradients of every bound parameter. Returns
    /// `Some(NonFiniteGrad)` (and counts a trip) if any is NaN/Inf; `None`
    /// when healthy or gradient checking is disabled.
    pub fn check_grads(&mut self, tape: &Tape, binding: &Binding) -> Option<DivergenceReason> {
        if !self.config.check_grads {
            return None;
        }
        for (_, var) in binding.bound() {
            if let Some(grad) = tape.grad(var) {
                if grad.as_slice().iter().any(|v| !v.is_finite()) {
                    self.trips += 1;
                    return Some(DivergenceReason::NonFiniteGrad);
                }
            }
        }
        None
    }

    /// Clears the loss statistics after a rollback (the replayed epoch
    /// must not be judged against the diverged run's EMA).
    pub fn reset_epoch(&mut self) {
        self.ema = None;
        self.observed = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use membit_nn::Params;
    use membit_tensor::Tensor;

    fn watchdog(warmup: usize, factor: f32) -> TrainWatchdog {
        TrainWatchdog::new(WatchdogConfig {
            warmup_batches: warmup,
            spike_factor: factor,
            ..WatchdogConfig::default()
        })
    }

    #[test]
    fn nan_and_inf_always_trip() {
        let mut w = watchdog(100, 10.0);
        assert_eq!(w.observe(f32::NAN), Some(DivergenceReason::NonFiniteLoss));
        assert_eq!(
            w.observe(f32::INFINITY),
            Some(DivergenceReason::NonFiniteLoss)
        );
        assert_eq!(w.trips(), 2);
    }

    #[test]
    fn spike_requires_warmup() {
        let mut w = watchdog(3, 5.0);
        // during warmup even a huge jump passes
        assert!(w.observe(1.0).is_none());
        assert!(w.observe(100.0).is_none());
        // after warmup, a jump above factor × EMA trips
        let mut w = watchdog(2, 5.0);
        assert!(w.observe(1.0).is_none());
        assert!(w.observe(1.0).is_none());
        assert!(w.observe(1.1).is_none());
        match w.observe(50.0) {
            Some(DivergenceReason::LossSpike { loss, .. }) => assert_eq!(loss, 50.0),
            other => panic!("expected spike, got {other:?}"),
        }
    }

    #[test]
    fn steady_loss_never_trips() {
        let mut w = watchdog(2, 4.0);
        for i in 0..100 {
            let loss = 2.0 + (i as f32 * 0.7).sin() * 0.5;
            assert!(w.observe(loss).is_none(), "tripped at batch {i}");
        }
        assert_eq!(w.trips(), 0);
    }

    #[test]
    fn reset_epoch_rearms_warmup() {
        let mut w = watchdog(1, 3.0);
        assert!(w.observe(1.0).is_none());
        assert!(w.observe(1.0).is_none());
        w.reset_epoch();
        // first post-reset batch is warmup again: no spike judgement
        assert!(w.observe(100.0).is_none());
    }

    #[test]
    fn grad_check_finds_nan() {
        let mut params = Params::new();
        let id = params.register("w", Tensor::from_vec(vec![2.0], &[1]).unwrap());
        let mut tape = Tape::new();
        let mut binding = params.binding();
        let w = params.bind(&mut tape, &mut binding, id);
        // loss = w · NaN ⇒ ∂loss/∂w = NaN
        let c = tape.constant(Tensor::from_vec(vec![f32::NAN], &[1]).unwrap());
        let l = tape.mul(w, c).unwrap();
        let loss = tape.sum_all(l);
        tape.backward(loss).unwrap();
        let mut dog = TrainWatchdog::new(WatchdogConfig::default());
        assert_eq!(
            dog.check_grads(&tape, &binding),
            Some(DivergenceReason::NonFiniteGrad)
        );
        let mut off = TrainWatchdog::new(WatchdogConfig {
            check_grads: false,
            ..WatchdogConfig::default()
        });
        assert_eq!(off.check_grads(&tape, &binding), None);
    }
}
