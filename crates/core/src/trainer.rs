//! Training and evaluation loops, with crash-safe checkpointing and a
//! divergence watchdog.

use membit_autograd::Tape;
use membit_data::Dataset;
use membit_nn::{
    accuracy, Checkpoint, MvmNoiseHook, NoNoise, Optimizer, Params, Phase, Sgd, StepLr,
};

use membit_tensor::{Rng, RngStream, Tensor, TensorError};

use crate::error::{DivergenceReason, TrainError};
use crate::model::CrossbarModel;
use crate::resilience::{
    need_f64, need_u64, put_params, put_rng, put_state, restore_params, restore_rng, take_state,
    ResilienceConfig,
};
use crate::watchdog::TrainWatchdog;
use crate::Result;

/// Hyperparameters for the pre-training stage (paper §IV-A: SGD, momentum
/// 0.9, weight decay 5e-4, base LR 1e-3 with ×0.1 decay at 50/70/90 % of
/// the epochs).
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Number of epochs.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Base learning rate.
    pub lr: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// Random horizontal flips as train-time augmentation.
    pub augment_flip: bool,
    /// Root RNG seed.
    pub seed: u64,
}

impl TrainConfig {
    /// The paper's recipe scaled to `epochs`.
    pub fn paper(epochs: usize, seed: u64) -> Self {
        Self {
            epochs,
            batch_size: 50,
            lr: 1e-3,
            momentum: 0.9,
            weight_decay: 5e-4,
            augment_flip: true,
            seed,
        }
    }

    fn validate(&self) -> Result<()> {
        if self.epochs == 0 || self.batch_size == 0 {
            return Err(
                TensorError::InvalidArgument("epochs and batch_size must be nonzero".into())
                    .into(),
            );
        }
        Ok(())
    }
}

/// Outcome of a training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Mean cross-entropy per epoch.
    pub epoch_losses: Vec<f32>,
    /// Training accuracy of the final epoch (on the fly, train-mode BN).
    pub final_train_acc: f32,
    /// How many times the divergence watchdog tripped (and the loop
    /// rolled back) over the whole run, including resumed history.
    pub watchdog_trips: usize,
}

/// Flips a `[N, C, H, W]` batch horizontally, sample-wise at random.
fn flip_batch(images: &membit_tensor::Tensor, rng: &mut Rng) -> membit_tensor::Tensor {
    let [n, c, h, w] = [
        images.shape()[0],
        images.shape()[1],
        images.shape()[2],
        images.shape()[3],
    ];
    let mut out = images.clone();
    let src = images.as_slice();
    let dst = out.as_mut_slice();
    for ni in 0..n {
        if !rng.coin(0.5) {
            continue;
        }
        for ci in 0..c {
            for y in 0..h {
                let base = ((ni * c + ci) * h + y) * w;
                for x in 0..w {
                    dst[base + x] = src[base + (w - 1 - x)];
                }
            }
        }
    }
    out
}

/// Pre-trains `model` on `train` with cross-entropy loss and the given
/// hook (use [`NoNoise`] for the paper's clean pre-training, or a noise
/// hook for NIA-style noise-aware training).
///
/// Equivalent to [`pretrain_resilient`] with the default
/// [`ResilienceConfig`]: no on-disk checkpointing, watchdog armed with
/// default thresholds.
///
/// # Errors
///
/// Propagates tape/shape errors, rejects degenerate configs, and fails
/// with [`TrainError::Diverged`] when the watchdog exhausts its retries.
pub fn pretrain(
    model: &mut dyn CrossbarModel,
    params: &mut Params,
    train: &Dataset,
    cfg: &TrainConfig,
    hook: &mut dyn MvmNoiseHook,
) -> Result<TrainReport> {
    pretrain_resilient(model, params, train, cfg, hook, &ResilienceConfig::default())
}

/// [`pretrain`] with an explicit resilience policy: periodic atomic
/// checkpoints, `--resume` restore, and watchdog-guarded rollback.
///
/// Each completed epoch is snapshotted in memory (parameters, batch-norm
/// statistics, optimizer moments, RNG streams). When the watchdog trips
/// mid-epoch, the loop rolls the snapshot back, scales the learning rate
/// by `watchdog.lr_backoff`, and replays the epoch — up to
/// `watchdog.max_retries` times before failing with
/// [`TrainError::Diverged`]. With `res.checkpoint` set, the same state is
/// also persisted atomically every `res.every_epochs` epochs, and
/// `res.resume` restores it so an interrupted run continues bit-for-bit
/// identically to an uninterrupted one.
///
/// # Errors
///
/// Propagates tape/shape/checkpoint errors; [`TrainError::Diverged`] on
/// unrecoverable divergence.
pub fn pretrain_resilient(
    model: &mut dyn CrossbarModel,
    params: &mut Params,
    train: &Dataset,
    cfg: &TrainConfig,
    hook: &mut dyn MvmNoiseHook,
    res: &ResilienceConfig,
) -> Result<TrainReport> {
    pretrain_stage("pretrain", model, params, train, cfg, hook, res)
}

/// What one epoch attempt produced.
enum EpochRun {
    Done { mean_loss: f32, train_acc: f32 },
    Tripped(DivergenceReason),
}

/// Everything needed to rewind to the last good epoch boundary.
struct Snapshot {
    params: Params,
    model_state: Vec<(String, Tensor)>,
    opt_state: Vec<(String, Tensor)>,
    shuffle_rng: Rng,
    aug_rng: Rng,
    hook_rng: Option<Rng>,
}

pub(crate) fn pretrain_stage(
    stage: &str,
    model: &mut dyn CrossbarModel,
    params: &mut Params,
    train: &Dataset,
    cfg: &TrainConfig,
    hook: &mut dyn MvmNoiseHook,
    res: &ResilienceConfig,
) -> Result<TrainReport> {
    cfg.validate()?;
    let schedule = StepLr::paper(cfg.lr, cfg.epochs);
    let root = Rng::from_seed(cfg.seed);
    let mut opt = Sgd::new(cfg.lr, cfg.momentum, cfg.weight_decay);
    let mut shuffle_rng = root.stream(RngStream::Data);
    let mut aug_rng = root.stream(RngStream::Custom(77));
    let mut watchdog = TrainWatchdog::new(res.watchdog.clone());
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);
    let mut final_train_acc = 0.0f32;
    let mut lr_scale = 1.0f32;
    let mut start_epoch = 0usize;
    let mut prior_trips = 0usize;

    if let Some(ckpt) = res.load_for_resume()? {
        start_epoch = need_u64(&ckpt, "meta.epoch")? as usize;
        lr_scale = need_f64(&ckpt, "meta.lr_scale")? as f32;
        final_train_acc = need_f64(&ckpt, "meta.final_train_acc")? as f32;
        prior_trips = need_u64(&ckpt, "meta.trips")? as usize;
        if let Some(losses) = ckpt.tensor("loss.epoch_losses") {
            epoch_losses = losses.as_slice().to_vec();
        }
        restore_params(&ckpt, params)?;
        model.restore_state_tensors(&take_state(&ckpt, "state"));
        opt.restore_state_tensors(&take_state(&ckpt, "opt"));
        shuffle_rng = restore_rng(&ckpt, "shuffle")?;
        aug_rng = restore_rng(&ckpt, "aug")?;
        if let Some(hr) = hook.state_rng_mut() {
            *hr = restore_rng(&ckpt, "hook")?;
        }
    }

    let mut epoch = start_epoch;
    while epoch < cfg.epochs {
        let snapshot = Snapshot {
            params: params.clone(),
            model_state: model.state_tensors(),
            opt_state: opt.state_tensors(),
            shuffle_rng: shuffle_rng.clone(),
            aug_rng: aug_rng.clone(),
            hook_rng: hook.state_rng().cloned(),
        };
        let mut retries = 0usize;
        let (mean_loss, train_acc) = loop {
            opt.set_lr(schedule.lr_at(epoch) * lr_scale);
            let outcome = run_one_epoch(
                model,
                params,
                train,
                cfg,
                hook,
                &mut opt,
                &mut shuffle_rng,
                &mut aug_rng,
                &mut watchdog,
            )?;
            match outcome {
                EpochRun::Done {
                    mean_loss,
                    train_acc,
                } => break (mean_loss, train_acc),
                EpochRun::Tripped(reason) => {
                    if retries >= res.watchdog.max_retries {
                        return Err(TrainError::Diverged {
                            stage: stage.to_string(),
                            epoch,
                            retries,
                            reason,
                        });
                    }
                    retries += 1;
                    *params = snapshot.params.clone();
                    model.restore_state_tensors(&snapshot.model_state);
                    opt = Sgd::new(cfg.lr, cfg.momentum, cfg.weight_decay);
                    opt.restore_state_tensors(&snapshot.opt_state);
                    shuffle_rng = snapshot.shuffle_rng.clone();
                    aug_rng = snapshot.aug_rng.clone();
                    if let (Some(hr), Some(saved)) =
                        (hook.state_rng_mut(), snapshot.hook_rng.as_ref())
                    {
                        *hr = saved.clone();
                    }
                    lr_scale *= res.watchdog.lr_backoff;
                    watchdog.reset_epoch();
                }
            }
        };
        epoch_losses.push(mean_loss);
        final_train_acc = train_acc;
        if res.should_checkpoint(epoch) {
            let mut ckpt = Checkpoint::new();
            ckpt.put_u64("meta.epoch", (epoch + 1) as u64);
            ckpt.put_f64("meta.lr_scale", f64::from(lr_scale));
            ckpt.put_f64("meta.final_train_acc", f64::from(final_train_acc));
            ckpt.put_u64("meta.trips", (prior_trips + watchdog.trips()) as u64);
            ckpt.put_tensor(
                "loss.epoch_losses",
                Tensor::from_vec(epoch_losses.clone(), &[epoch_losses.len()])?,
            );
            put_rng(&mut ckpt, "shuffle", &shuffle_rng);
            put_rng(&mut ckpt, "aug", &aug_rng);
            if let Some(hr) = hook.state_rng() {
                put_rng(&mut ckpt, "hook", hr);
            }
            put_params(&mut ckpt, params);
            put_state(&mut ckpt, "state", &model.state_tensors());
            put_state(&mut ckpt, "opt", &opt.state_tensors());
            res.save(&ckpt)?;
        }
        epoch += 1;
    }
    res.finish();
    Ok(TrainReport {
        epoch_losses,
        final_train_acc,
        watchdog_trips: prior_trips + watchdog.trips(),
    })
}

/// One pass over the (re-shuffled) training set. Returns `Tripped` the
/// moment the watchdog flags the loss or gradients — before the
/// poisonous optimizer step is applied.
#[allow(clippy::too_many_arguments)]
fn run_one_epoch(
    model: &mut dyn CrossbarModel,
    params: &mut Params,
    train: &Dataset,
    cfg: &TrainConfig,
    hook: &mut dyn MvmNoiseHook,
    opt: &mut Sgd,
    shuffle_rng: &mut Rng,
    aug_rng: &mut Rng,
    watchdog: &mut TrainWatchdog,
) -> Result<EpochRun> {
    let shuffled = train.shuffled(shuffle_rng);
    let mut loss_sum = 0.0f64;
    let mut batches = 0usize;
    let mut correct = 0usize;
    let mut seen = 0usize;
    // one tape for the whole epoch: reset() keeps node and im2col-buffer
    // allocations, so per-batch forward passes stop re-allocating
    let mut tape = Tape::new();
    for (images, labels) in shuffled.batches(cfg.batch_size) {
        let images = if cfg.augment_flip {
            flip_batch(&images, aug_rng)
        } else {
            images
        };
        tape.reset();
        let mut binding = params.binding();
        let x = tape.constant(images);
        let logits = model.forward(&mut tape, params, &mut binding, x, Phase::Train, hook)?;
        let loss = tape.softmax_cross_entropy(logits, &labels)?;
        let loss_value = tape.value(loss).item();
        if let Some(reason) = watchdog.observe(loss_value) {
            return Ok(EpochRun::Tripped(reason));
        }
        loss_sum += f64::from(loss_value);
        batches += 1;
        correct +=
            (accuracy(tape.value(logits), &labels)? * labels.len() as f32).round() as usize;
        seen += labels.len();
        tape.backward(loss)?;
        if let Some(reason) = watchdog.check_grads(&tape, &binding) {
            return Ok(EpochRun::Tripped(reason));
        }
        opt.step(params, &tape, &binding)?;
    }
    Ok(EpochRun::Done {
        mean_loss: (loss_sum / batches.max(1) as f64) as f32,
        train_acc: correct as f32 / seen.max(1) as f32,
    })
}

/// Outcome of [`pretrain_with_validation`].
#[derive(Debug, Clone, PartialEq)]
pub struct ValidatedTrainReport {
    /// Mean cross-entropy per epoch (for epochs actually run).
    pub epoch_losses: Vec<f32>,
    /// Validation accuracy after each epoch.
    pub val_accuracies: Vec<f32>,
    /// Epoch index (0-based) with the best validation accuracy.
    pub best_epoch: usize,
}

/// Like [`pretrain`] but evaluates on `val` after every epoch and stops
/// early when validation accuracy hasn't improved for `patience` epochs
/// (`None` disables early stopping). The *final* parameters are whatever
/// the last executed epoch produced — callers wanting the best epoch
/// should checkpoint externally using `best_epoch`.
///
/// # Errors
///
/// Propagates training/evaluation errors.
pub fn pretrain_with_validation(
    model: &mut dyn CrossbarModel,
    params: &mut Params,
    train: &Dataset,
    val: &Dataset,
    cfg: &TrainConfig,
    patience: Option<usize>,
) -> Result<ValidatedTrainReport> {
    cfg.validate()?;
    let mut epoch_losses = Vec::new();
    let mut val_accuracies = Vec::new();
    let mut best = (0usize, f32::NEG_INFINITY);
    for epoch in 0..cfg.epochs {
        // one epoch at a time, reusing the single-epoch path with a
        // deterministic per-epoch seed
        let mut one = cfg.clone();
        one.epochs = 1;
        one.seed = cfg.seed.wrapping_add(epoch as u64);
        one.lr = StepLr::paper(cfg.lr, cfg.epochs).lr_at(epoch);
        let report = pretrain(model, params, train, &one, &mut NoNoise)?;
        epoch_losses.extend(report.epoch_losses);
        let acc = evaluate(model, params, val, cfg.batch_size)?;
        val_accuracies.push(acc);
        if acc > best.1 {
            best = (epoch, acc);
        } else if let Some(p) = patience {
            if epoch - best.0 >= p {
                break;
            }
        }
    }
    Ok(ValidatedTrainReport {
        epoch_losses,
        val_accuracies,
        best_epoch: best.0,
    })
}

/// Evaluates classification accuracy with an ideal (noise-free) crossbar.
///
/// # Errors
///
/// Propagates tape/shape errors.
pub fn evaluate(
    model: &mut dyn CrossbarModel,
    params: &Params,
    data: &Dataset,
    batch_size: usize,
) -> Result<f32> {
    evaluate_with_hook(model, params, data, batch_size, &mut NoNoise)
}

/// Evaluates classification accuracy with an arbitrary crossbar hook
/// (noise models, PLA snapping, device-level replacement, ...).
///
/// # Errors
///
/// Propagates tape/shape errors.
pub fn evaluate_with_hook(
    model: &mut dyn CrossbarModel,
    params: &Params,
    data: &Dataset,
    batch_size: usize,
    hook: &mut dyn MvmNoiseHook,
) -> Result<f32> {
    let mut correct = 0usize;
    let mut tape = Tape::new();
    for (images, labels) in data.batches(batch_size) {
        tape.reset();
        let mut binding = params.frozen_binding();
        let x = tape.constant(images);
        let logits = model.forward(&mut tape, params, &mut binding, x, Phase::Eval, hook)?;
        correct +=
            (accuracy(tape.value(logits), &labels)? * labels.len() as f32).round() as usize;
    }
    Ok(correct as f32 / data.len().max(1) as f32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use membit_data::{synth_cifar, SynthCifarConfig};
    use membit_nn::{Mlp, MlpConfig};

    fn tiny_setup() -> (Mlp, Params, Dataset, Dataset) {
        let mut rng = Rng::from_seed(0);
        let mut params = Params::new();
        let mlp = Mlp::new(
            &MlpConfig::new(3 * 8 * 8, &[24], 10),
            &mut params,
            &mut rng,
        )
        .unwrap();
        let (train, test) = synth_cifar(&SynthCifarConfig::tiny(), 5).unwrap();
        (mlp, params, train, test)
    }

    #[test]
    fn training_reduces_loss_and_beats_chance() {
        let (mut mlp, mut params, train, test) = tiny_setup();
        let cfg = TrainConfig {
            epochs: 25,
            batch_size: 20,
            lr: 2e-2,
            momentum: 0.9,
            weight_decay: 0.0,
            augment_flip: false,
            seed: 1,
        };
        let report = pretrain(&mut mlp, &mut params, &train, &cfg, &mut NoNoise).unwrap();
        assert_eq!(report.epoch_losses.len(), 25);
        assert!(
            report.epoch_losses.last().unwrap() < report.epoch_losses.first().unwrap(),
            "{:?}",
            report.epoch_losses
        );
        let acc = evaluate(&mut mlp, &params, &test, 20).unwrap();
        assert!(acc > 0.3, "test accuracy only {acc}"); // chance = 0.1
        assert!(report.final_train_acc > 0.6, "train accuracy only {}", report.final_train_acc);
    }

    #[test]
    fn degenerate_configs_rejected() {
        let (mut mlp, mut params, train, _) = tiny_setup();
        let mut cfg = TrainConfig::paper(1, 0);
        cfg.epochs = 0;
        assert!(pretrain(&mut mlp, &mut params, &train, &cfg, &mut NoNoise).is_err());
        cfg.epochs = 1;
        cfg.batch_size = 0;
        assert!(pretrain(&mut mlp, &mut params, &train, &cfg, &mut NoNoise).is_err());
    }

    #[test]
    fn flip_batch_reverses_rows() {
        let images = membit_tensor::Tensor::from_fn(&[1, 1, 1, 4], |i| i as f32);
        // force the coin to flip by trying seeds until one flips
        for seed in 0..20 {
            let mut rng = Rng::from_seed(seed);
            let flipped = flip_batch(&images, &mut rng);
            if flipped != images {
                assert_eq!(flipped.as_slice(), &[3.0, 2.0, 1.0, 0.0]);
                return;
            }
        }
        panic!("no seed produced a flip");
    }

    #[test]
    fn validated_training_tracks_and_stops_early() {
        let (mut mlp, mut params, train, test) = tiny_setup();
        let cfg = TrainConfig {
            epochs: 40,
            batch_size: 20,
            lr: 2e-2,
            momentum: 0.9,
            weight_decay: 0.0,
            augment_flip: false,
            seed: 9,
        };
        let report = pretrain_with_validation(
            &mut mlp,
            &mut params,
            &train,
            &test,
            &cfg,
            Some(4),
        )
        .unwrap();
        assert_eq!(report.epoch_losses.len(), report.val_accuracies.len());
        assert!(report.best_epoch < report.val_accuracies.len());
        // best epoch attains the maximum recorded accuracy (ties keep
        // the earliest epoch)
        let best_acc = report
            .val_accuracies
            .iter()
            .cloned()
            .fold(f32::NEG_INFINITY, f32::max);
        assert_eq!(report.val_accuracies[report.best_epoch], best_acc);
        // early stopping may (or may not) trigger; either way we never
        // exceed the configured epochs
        assert!(report.val_accuracies.len() <= 40);
    }

    #[test]
    fn evaluation_is_deterministic_without_noise() {
        let (mut mlp, params, _, test) = tiny_setup();
        let a = evaluate(&mut mlp, &params, &test, 16).unwrap();
        let b = evaluate(&mut mlp, &params, &test, 16).unwrap();
        assert_eq!(a, b);
    }
}
