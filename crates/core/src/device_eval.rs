//! Device-level validation: run the trained VGG9-BWNN on the tiled
//! [`membit_xbar`] simulator instead of the functional noise model.
//!
//! Each crossbar layer's MVM is executed pulse-by-pulse through
//! [`CrossbarLinear`] (conv layers via im2col patch vectors, ISAAC-style),
//! with thermometer/PLA input encoding, ADC quantization and device
//! non-idealities. Batch norm, `tanh`, quantization, pooling and the
//! first/last layers run digitally, matching the deployment the paper
//! assumes. This is the "does the conclusion survive a less idealized
//! crossbar" ablation of DESIGN.md (ablC).

use membit_data::Dataset;
use membit_encoding::pla::PlaThermometer;
use membit_encoding::BitEncoder;
use membit_nn::{Params, Vgg};
use membit_tensor::{im2col_into, Conv2dGeometry, Rng, Tensor, TensorError};
use membit_xbar::{
    CellHealth, CellSide, CrossbarLinear, ExecutionStats, HealthMonitor, MvmKernel,
    RecoveryPolicy, RemapReport, XbarConfig,
};

use crate::Result;

/// Fault-aware deployment policy: what the deployment pipeline does about
/// manufacturing faults at program time and about retention drift in
/// service.
///
/// The default is a bare deployment (no recovery, no monitoring) —
/// existing experiments are unaffected unless they opt in.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DeploymentPolicy {
    /// Post-programming fault recovery (march test → remap); `None`
    /// deploys whatever programming produced.
    pub recovery: Option<RecoveryPolicy>,
    /// In-service drift monitoring with refresh; `None` never re-checks
    /// deployed arrays.
    pub monitor: Option<HealthMonitor>,
}

impl DeploymentPolicy {
    /// Full fault awareness: standard recovery plus standard health
    /// monitoring.
    pub fn fault_aware() -> Self {
        Self {
            recovery: Some(RecoveryPolicy::standard()),
            monitor: Some(HealthMonitor::standard()),
        }
    }

    /// Validates the embedded policies.
    ///
    /// # Errors
    ///
    /// Propagates [`RecoveryPolicy::validate`] /
    /// [`HealthMonitor::validate`] errors.
    pub fn validate(&self) -> Result<()> {
        if let Some(r) = &self.recovery {
            r.validate()?;
        }
        if let Some(m) = &self.monitor {
            m.validate()?;
        }
        Ok(())
    }
}

/// Configuration of a device-level deployment.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceEvalConfig {
    /// Hardware configuration (tiles, ADC, noise).
    pub xbar: XbarConfig,
    /// Per-crossbar-layer thermometer pulse counts (a Table I row).
    pub pulses: Vec<usize>,
    /// Activation quantization levels of the trained network.
    pub act_levels: usize,
    /// Fault recovery / drift monitoring policy.
    pub policy: DeploymentPolicy,
}

/// How a conv layer's MVM is realized on the deployment.
enum ConvKernel {
    /// The first conv runs digitally (the paper keeps it off-crossbar):
    /// just its weight matrix — no crossbar engine exists for it, so it
    /// consumes no programming RNG draws and contributes nothing to
    /// program/recovery stats.
    Digital(Tensor),
    /// A crossbar-deployed conv with its input-encoding pulse count.
    /// (Boxed: the engine dwarfs the digital variant.)
    Crossbar {
        engine: Box<CrossbarLinear>,
        pulses: usize,
    },
}

struct DeviceConvLayer {
    kernel: ConvKernel,
    geom: Conv2dGeometry,
    out_channels: usize,
    scale: Tensor,
    shift: Tensor,
    pool: bool,
}

/// The deployed network.
pub struct DeviceVgg {
    convs: Vec<DeviceConvLayer>,
    fc_engine: CrossbarLinear,
    fc_scale: Tensor,
    fc_shift: Tensor,
    fc_pulses: usize,
    classifier_w: Tensor,
    classifier_b: Tensor,
    feature_dim: usize,
    act_levels: usize,
    num_classes: usize,
    /// `[C, H, W]` of one input sample, captured at deploy time so
    /// long-lived consumers (e.g. a serving loop) can validate and
    /// reshape flat request payloads without the original `VggConfig`.
    input_shape: [usize; 3],
    monitor: Option<HealthMonitor>,
    /// Inference vectors seen since the last health check.
    vectors_since_check: u64,
    /// Drift refreshes triggered over the deployment's lifetime.
    refreshes: u64,
}

fn quantize_tensor(t: &Tensor, levels: usize) -> Tensor {
    let l = (levels - 1) as f32;
    t.map(|v| ((v.clamp(-1.0, 1.0) + 1.0) / 2.0 * l).round() / l * 2.0 - 1.0)
}

impl DeviceVgg {
    /// Programs the trained `vgg` onto crossbar hardware.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if `cfg.pulses` doesn't
    /// match the VGG's crossbar layer count, or propagates programming
    /// errors.
    pub fn deploy(vgg: &Vgg, params: &Params, cfg: &DeviceEvalConfig, rng: &mut Rng) -> Result<Self> {
        let config = vgg.config();
        cfg.policy.validate()?;
        if cfg.pulses.len() != config.crossbar_layers() {
            return Err(TensorError::InvalidArgument(format!(
                "{} pulse counts for {} crossbar layers",
                cfg.pulses.len(),
                config.crossbar_layers()
            ))
            .into());
        }
        if cfg.pulses.contains(&0) {
            return Err(
                TensorError::InvalidArgument("pulse counts must be nonzero".into()).into(),
            );
        }
        let (mut h, mut w) = (config.in_h, config.in_w);
        let mut in_ch = config.in_channels;
        let mut convs = Vec::with_capacity(config.channels.len());
        for (i, conv) in vgg.convs().iter().enumerate() {
            let oc = conv.out_channels();
            let geom = Conv2dGeometry::new(in_ch, h, w, 3, 3, 1, 1)?;
            let deployed = conv.deployed_weight(params);
            let wmat = deployed.reshape(&[oc, geom.patch_len()])?;
            let (scale, shift) = vgg.conv_bns()[i].fold_eval(params);
            let pool = config.pool_after.contains(&i);
            let kernel = if i == 0 {
                // the first conv runs digitally: no crossbar engine, no
                // RNG draws, no program/recovery stats for this layer
                ConvKernel::Digital(wmat)
            } else {
                let mut engine = CrossbarLinear::program(&wmat, &cfg.xbar, rng)?;
                if let Some(policy) = &cfg.policy.recovery {
                    engine.remap(policy, rng)?; // report stays on the engine
                }
                ConvKernel::Crossbar {
                    engine: Box::new(engine),
                    pulses: cfg.pulses[i - 1],
                }
            };
            convs.push(DeviceConvLayer {
                kernel,
                geom,
                out_channels: oc,
                scale,
                shift,
                pool,
            });
            in_ch = oc;
            if pool {
                h /= 2;
                w /= 2;
            }
        }
        let fc_w = vgg.fc_hidden().deployed_weight(params);
        let mut fc_engine = CrossbarLinear::program(&fc_w, &cfg.xbar, rng)?;
        if let Some(policy) = &cfg.policy.recovery {
            fc_engine.remap(policy, rng)?;
        }
        let (fc_scale, fc_shift) = vgg.fc_bn().fold_eval(params);
        let classifier_w = vgg.classifier().deployed_weight(params);
        let classifier_b = vgg
            .classifier()
            .bias()
            .map(|id| params.get(id).clone())
            .unwrap_or_else(|| Tensor::zeros(&[config.num_classes]));
        let fc_pulses = *cfg.pulses.last().ok_or_else(|| {
            TensorError::InvalidArgument("deployment needs at least one pulse count".into())
        })?;
        Ok(Self {
            convs,
            fc_engine,
            fc_scale,
            fc_shift,
            fc_pulses,
            classifier_w,
            classifier_b,
            feature_dim: config.feature_dim(),
            act_levels: cfg.act_levels,
            num_classes: config.num_classes,
            input_shape: config.input_shape(),
            monitor: cfg.policy.monitor,
            vectors_since_check: 0,
            refreshes: 0,
        })
    }

    /// Runs one batch (`[N, C, H, W]`), returning logits and accumulated
    /// hardware event counts.
    ///
    /// Every crossbar MVM goes through
    /// [`CrossbarLinear::execute_guarded`]: on deployments whose
    /// [`XbarConfig`] carries a [`membit_xbar::GuardPolicy`] the checksum
    /// guard and its escalation ladder run per layer (`&mut self` exists
    /// for the ladder's refresh/remap repairs); without one this is the
    /// plain execution path, bit for bit.
    ///
    /// # Errors
    ///
    /// Propagates shape errors.
    pub fn forward(&mut self, images: &Tensor, rng: &mut Rng) -> Result<(Tensor, ExecutionStats)> {
        let mut stats = ExecutionStats::default();
        let n = images.shape()[0];
        let mut act = images.clone();
        // one column buffer reused across every conv layer of the batch
        // (sized by the largest lowering, allocated once per forward)
        let mut col_buf: Vec<f32> = Vec::new();
        let act_levels = self.act_levels;
        for layer in &mut self.convs {
            let (oh, ow) = (layer.geom.out_h(), layer.geom.out_w());
            im2col_into(&act, &layer.geom, &mut col_buf)?;
            let rows = col_buf.len() / layer.geom.patch_len();
            let cols = Tensor::from_vec(
                std::mem::take(&mut col_buf),
                &[rows, layer.geom.patch_len()],
            )?;
            let out_rows = match &mut layer.kernel {
                ConvKernel::Digital(wmat) => cols.matmul(&wmat.transpose()?)?,
                ConvKernel::Crossbar { engine, pulses } => {
                    let enc = PlaThermometer::new(act_levels, *pulses)?;
                    let train = enc.encode_tensor(&cols)?;
                    let (y, s) = engine.execute_guarded(&train, rng)?;
                    stats.merge(&s);
                    y
                }
            };
            col_buf = cols.into_vec(); // hand the allocation to the next layer
            let mut out = out_rows
                .into_reshaped(&[n, oh, ow, layer.out_channels])?
                .nhwc_to_nchw()?;
            // digital periphery: BN fold, tanh, re-quantize
            out = out.channel_map(&layer.scale, |v, s| v * s)?;
            out = out.channel_map(&layer.shift, |v, t| v + t)?;
            out = quantize_tensor(&out.tanh(), self.act_levels);
            if layer.pool {
                out = max_pool2(&out)?;
            }
            act = out;
        }
        let flat = act.into_reshaped(&[n, self.feature_dim])?;
        let enc = PlaThermometer::new(self.act_levels, self.fc_pulses)?;
        let train = enc.encode_tensor(&flat)?;
        let (mut f, s) = self.fc_engine.execute_guarded(&train, rng)?;
        stats.merge(&s);
        f = f
            .mul(&self.fc_scale)?
            .add(&self.fc_shift)?;
        f = quantize_tensor(&f.tanh(), self.act_levels);
        let logits = f.matmul(&self.classifier_w.transpose()?)?.add(&self.classifier_b)?;
        Ok((logits, stats))
    }

    /// Evaluates classification accuracy over a dataset.
    ///
    /// When a [`HealthMonitor`] is deployed, arrays are periodically
    /// probed between batches and drift-refreshed when their measured
    /// conductance decay crosses the monitor's threshold (`&mut self`
    /// exists for exactly this re-programming). The returned stats carry
    /// the fault-exposure fields: `unrecoverable_cells`/`degraded_tiles`
    /// reflect the deployment's recovery outcome (set once, not summed
    /// per batch) and `refreshes` counts the refresh passes this call
    /// triggered.
    ///
    /// # Errors
    ///
    /// Propagates forward errors.
    pub fn evaluate(
        &mut self,
        data: &Dataset,
        batch_size: usize,
        rng: &mut Rng,
    ) -> Result<(f32, ExecutionStats)> {
        let mut stats = ExecutionStats::default();
        let mut correct = 0usize;
        let refreshes_before = self.refreshes;
        for (images, labels) in data.batches(batch_size) {
            let (logits, s) = self.forward(&images, rng)?;
            stats.merge(&s);
            for (pred, &y) in logits.argmax_rows()?.iter().zip(&labels) {
                if *pred == y {
                    correct += 1;
                }
            }
            self.vectors_since_check += images.shape()[0] as u64;
            self.health_check(rng);
        }
        let recovery = self.recovery_report();
        stats.unrecoverable_cells = recovery.unrecoverable_cells;
        stats.degraded_tiles = recovery.degraded_tiles;
        stats.refreshes = self.refreshes - refreshes_before;
        // deployment-level degradation state (set-once like the damage
        // counters above): how many layers the guard ladder has demoted
        // to the digital fallback, counted across engines rather than
        // summed per batch
        stats.guard.degraded_layers = self.degraded_layers();
        Ok((correct as f32 / data.len().max(1) as f32, stats))
    }

    /// Probes every crossbar engine for retention decay if the monitor
    /// is due, refreshing (re-programming toward stored targets) any
    /// engine whose mean weight magnitude has decayed past the
    /// threshold.
    fn health_check(&mut self, rng: &mut Rng) {
        let Some(monitor) = self.monitor else { return };
        if !monitor.due(self.vectors_since_check) {
            return;
        }
        self.vectors_since_check = 0;
        let mut refreshed = 0u64;
        for layer in &mut self.convs {
            if let ConvKernel::Crossbar { engine, .. } = &mut layer.kernel {
                if monitor.needs_refresh(engine.measure_decay(monitor.probes, rng)) {
                    engine.refresh(rng);
                    refreshed += 1;
                }
            }
        }
        if monitor.needs_refresh(self.fc_engine.measure_decay(monitor.probes, rng)) {
            self.fc_engine.refresh(rng);
            refreshed += 1;
        }
        self.refreshes += refreshed;
    }

    /// Every crossbar engine in deployment order (crossbar convs, then
    /// the hidden FC). The digital first conv and classifier have no
    /// engine.
    fn engines(&self) -> impl Iterator<Item = &CrossbarLinear> {
        self.convs
            .iter()
            .filter_map(|l| match &l.kernel {
                ConvKernel::Crossbar { engine, .. } => Some(engine.as_ref()),
                ConvKernel::Digital(_) => None,
            })
            .chain(std::iter::once(&self.fc_engine))
    }

    fn engines_mut(&mut self) -> impl Iterator<Item = &mut CrossbarLinear> {
        self.convs
            .iter_mut()
            .filter_map(|l| match &mut l.kernel {
                ConvKernel::Crossbar { engine, .. } => Some(engine.as_mut()),
                ConvKernel::Digital(_) => None,
            })
            .chain(std::iter::once(&mut self.fc_engine))
    }

    /// Aggregated fault-recovery outcome across all crossbar engines,
    /// computed on demand from their current reports — deploy-time
    /// remaps, the guard ladder's stage-3 repairs, everything. All-zero
    /// when no repair has run (or a later
    /// [`CrossbarLinear::inject_fault`] invalidated the records).
    pub fn recovery_report(&self) -> RemapReport {
        let mut report = RemapReport::default();
        for engine in self.engines() {
            if let Some(r) = engine.recovery_report() {
                report.merge(r);
            }
        }
        report
    }

    /// Number of crossbar layers the guard ladder has demoted to the
    /// digital fallback path.
    pub fn degraded_layers(&self) -> u64 {
        self.engines().filter(|e| e.is_degraded()).count() as u64
    }

    /// Injects transient stuck-at upsets at the given per-cell `rate`
    /// across every crossbar engine — the instrumented path for studying
    /// mid-inference upsets. Each engine receives `round(out·in·rate)`
    /// upsets at uniform positions, random differential side, and a fair
    /// stuck-high/stuck-low coin (see [`CrossbarLinear::upset_cell`]:
    /// conductance excursions, curable by refresh, unlike the pinned
    /// health of `inject_fault`). Returns the number injected.
    ///
    /// Armed checksum references are deliberately left stale (that is
    /// what makes the damage detectable) and stored recovery reports are
    /// cleared, mirroring [`CrossbarLinear::inject_fault`].
    ///
    /// # Errors
    ///
    /// Propagates injection errors (coordinates are drawn in range, so
    /// none are expected).
    pub fn inject_faults(&mut self, rate: f32, rng: &mut Rng) -> Result<u64> {
        let mut injected = 0u64;
        for engine in self.engines_mut() {
            let (out, inp) = engine.dims();
            let count = ((out * inp) as f32 * rate).round() as usize;
            for _ in 0..count {
                let row = rng.below(inp);
                let col = rng.below(out);
                let side = if rng.coin(0.5) { CellSide::Pos } else { CellSide::Neg };
                let high = rng.coin(0.5);
                engine.upset_cell(row, col, side, high)?;
                injected += 1;
            }
        }
        Ok(injected)
    }

    /// Injects *persistent* stuck-at faults at the given per-cell `rate`
    /// across every crossbar engine — the SAF (stuck-at-fault) scenario
    /// of the non-ideality ablation. Unlike [`Self::inject_faults`],
    /// whose conductance excursions a refresh cures, these pin the cell
    /// health itself (see [`CrossbarLinear::inject_fault`]): only a march
    /// test + remap pass ([`Self::remap_all`]) can route around them, and
    /// cells the analog strategies cannot fix stay broken unless the SAF
    /// error-correction arm compensates digitally. Returns the number
    /// injected.
    ///
    /// # Errors
    ///
    /// Propagates injection errors (coordinates are drawn in range, so
    /// none are expected).
    pub fn inject_stuck_faults(&mut self, rate: f32, rng: &mut Rng) -> Result<u64> {
        let mut injected = 0u64;
        for engine in self.engines_mut() {
            let (out, inp) = engine.dims();
            let count = ((out * inp) as f32 * rate).round() as usize;
            for _ in 0..count {
                let row = rng.below(inp);
                let col = rng.below(out);
                let side = if rng.coin(0.5) { CellSide::Pos } else { CellSide::Neg };
                let health = if rng.coin(0.5) {
                    CellHealth::StuckOn
                } else {
                    CellHealth::StuckOff
                };
                engine.inject_fault(row, col, side, health)?;
                injected += 1;
            }
        }
        Ok(injected)
    }

    /// Runs the full march-test + remap pipeline on every crossbar
    /// engine under `policy` — the deployment-level repair pass after
    /// in-service fault injection (deploy-time recovery runs
    /// automatically via [`DeploymentPolicy::recovery`]). With
    /// [`RecoveryPolicy::with_ecc`] the residual unrecoverable cells
    /// additionally get per-tile SAF error-correction entries, which
    /// every subsequent MVM applies digitally. Returns the merged
    /// recovery outcome.
    ///
    /// # Errors
    ///
    /// Propagates march-test / reprogramming errors.
    pub fn remap_all(&mut self, policy: &RecoveryPolicy, rng: &mut Rng) -> Result<RemapReport> {
        let mut report = RemapReport::default();
        for engine in self.engines_mut() {
            report.merge(&engine.remap(policy, rng)?);
        }
        Ok(report)
    }

    /// Drift refreshes triggered by the health monitor over this
    /// deployment's lifetime.
    pub fn refreshes(&self) -> u64 {
        self.refreshes
    }

    /// Number of classes at the output.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// `[C, H, W]` of one input sample.
    pub fn input_shape(&self) -> [usize; 3] {
        self.input_shape
    }

    /// Rebounds the host-side thread fan-out of every crossbar engine
    /// (see [`CrossbarLinear::set_max_threads`]). Outputs are bitwise
    /// independent of the setting; only wall clock changes.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if `max_threads` is zero.
    pub fn set_max_threads(&mut self, max_threads: usize) -> Result<()> {
        for engine in self.engines_mut() {
            engine.set_max_threads(max_threads)?;
        }
        Ok(())
    }

    /// Switches the tile MVM kernel of every crossbar engine (see
    /// [`CrossbarLinear::set_kernel`]). For the binary pulse trains this
    /// deployment drives, every kernel is bitwise identical — the knob
    /// selects an inner loop (e.g. the bit-packed popcount path), never
    /// different results, so it is safe to flip on a live deployment.
    pub fn set_kernel(&mut self, kernel: MvmKernel) {
        for engine in self.engines_mut() {
            engine.set_kernel(kernel);
        }
    }

    /// Whether every crossbar engine satisfies the packed kernel's
    /// exactness preconditions on every tile (see
    /// [`CrossbarLinear::packed_ready`]).
    pub fn packed_ready(&self) -> bool {
        self.engines().all(CrossbarLinear::packed_ready)
    }

    /// Ages every crossbar array by `hours` of retention drift (power-law
    /// conductance decay, per-cell exponent `N(nu, nu_sigma)`) — see
    /// [`membit_xbar::Tile::age`]. The digital first conv and classifier
    /// are unaffected.
    pub fn age(&mut self, hours: f32, nu: f32, nu_sigma: f32, rng: &mut Rng) {
        for layer in &mut self.convs {
            if let ConvKernel::Crossbar { engine, .. } = &mut layer.kernel {
                engine.age(hours, nu, nu_sigma, rng);
            }
        }
        self.fc_engine.age(hours, nu, nu_sigma, rng);
    }
}

/// Digital 2×2 max pool (stride 2) over NCHW.
fn max_pool2(x: &Tensor) -> Result<Tensor> {
    let [n, c, h, w] = [x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]];
    if h % 2 != 0 || w % 2 != 0 {
        return Err(TensorError::InvalidArgument(format!("cannot 2×2-pool {h}×{w}")).into());
    }
    let (oh, ow) = (h / 2, w / 2);
    let src = x.as_slice();
    let mut out = vec![f32::NEG_INFINITY; n * c * oh * ow];
    for ni in 0..n {
        for ci in 0..c {
            let base = (ni * c + ci) * h * w;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    for ky in 0..2 {
                        for kx in 0..2 {
                            best = best.max(src[base + (oy * 2 + ky) * w + ox * 2 + kx]);
                        }
                    }
                    out[((ni * c + ci) * oh + oy) * ow + ox] = best;
                }
            }
        }
    }
    Ok(Tensor::from_vec(out, &[n, c, oh, ow])?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::CrossbarModel;
    use crate::trainer::evaluate;
    use membit_nn::{NoNoise, Phase, VggConfig};
    use membit_autograd::Tape;

    fn tiny_vgg() -> (Vgg, Params) {
        let mut rng = Rng::from_seed(0);
        let mut params = Params::new();
        let vgg = Vgg::new(&VggConfig::tiny(), &mut params, &mut rng).unwrap();
        (vgg, params)
    }

    #[test]
    fn deploy_validates_pulse_counts() {
        let (vgg, params) = tiny_vgg();
        let mut rng = Rng::from_seed(1);
        let cfg = DeviceEvalConfig {
            xbar: XbarConfig::ideal(),
            pulses: vec![8, 8], // tiny VGG has 3 crossbar layers
            act_levels: 9,
            policy: DeploymentPolicy::default(),
        };
        assert!(DeviceVgg::deploy(&vgg, &params, &cfg, &mut rng).is_err());
        let cfg0 = DeviceEvalConfig {
            xbar: XbarConfig::ideal(),
            pulses: vec![8, 0, 8],
            act_levels: 9,
            policy: DeploymentPolicy::default(),
        };
        assert!(DeviceVgg::deploy(&vgg, &params, &cfg0, &mut rng).is_err());
    }

    #[test]
    fn ideal_device_matches_functional_model() {
        // With ideal hardware and baseline 8-pulse encoding, the device-
        // level forward must agree with the tape-based Eval forward.
        let (mut vgg, params) = tiny_vgg();
        let mut rng = Rng::from_seed(2);
        let cfg = DeviceEvalConfig {
            xbar: XbarConfig::ideal(),
            pulses: vec![8, 8, 8],
            act_levels: 9,
            policy: DeploymentPolicy::default(),
        };
        let mut device = DeviceVgg::deploy(&vgg, &params, &cfg, &mut rng).unwrap();
        let images = Tensor::from_fn(&[2, 3, 8, 8], |i| ((i % 17) as f32 / 8.0 - 1.0).clamp(-1.0, 1.0));
        // functional reference
        let mut tape = Tape::new();
        let mut binding = params.frozen_binding();
        let x = tape.constant(quantize_tensor(&images, 9));
        let reference = CrossbarModel::forward(
            &mut vgg,
            &mut tape,
            &params,
            &mut binding,
            x,
            Phase::Eval,
            &mut NoNoise,
        )
        .unwrap();
        let (logits, stats) = device.forward(&quantize_tensor(&images, 9), &mut rng).unwrap();
        assert!(
            logits.allclose(tape.value(reference), 0.15),
            "{logits:?}\nvs\n{:?}",
            tape.value(reference)
        );
        assert!(stats.pulses > 0);
        assert_eq!(device.num_classes(), 4);
    }

    #[test]
    fn device_eval_runs_on_dataset() {
        let (vgg, params) = tiny_vgg();
        let mut rng = Rng::from_seed(3);
        let cfg = DeviceEvalConfig {
            xbar: XbarConfig::ideal(),
            pulses: vec![8, 8, 8],
            act_levels: 9,
            policy: DeploymentPolicy::default(),
        };
        let mut device = DeviceVgg::deploy(&vgg, &params, &cfg, &mut rng).unwrap();
        let (_, test) = membit_data::shapes(&membit_data::ShapesConfig::tiny(), 1).unwrap();
        // shapes is 1-channel; build a 3-channel set instead from synth
        let (_, test3) =
            membit_data::synth_cifar(&membit_data::SynthCifarConfig::tiny(), 1).unwrap();
        let _ = test;
        // tiny vgg has 4 classes but synth has 10 labels — evaluate on a
        // label-clamped copy to exercise the path
        let labels: Vec<usize> = test3.labels().iter().map(|&y| y % 4).collect();
        let data = Dataset::new(test3.images().clone(), labels, 4).unwrap();
        let (acc, stats) = device.evaluate(&data, 8, &mut rng).unwrap();
        assert!((0.0..=1.0).contains(&acc));
        assert!(stats.vectors > 0);
        // untrained network should hover near chance
        let untrained_acc = evaluate(&mut vgg.clone(), &params, &data, 8).unwrap();
        assert!((acc - untrained_acc).abs() < 0.35);
    }

    #[test]
    fn aging_degrades_logit_magnitude() {
        let (vgg, params) = tiny_vgg();
        let mut rng = Rng::from_seed(5);
        let cfg = DeviceEvalConfig {
            xbar: XbarConfig::ideal(),
            pulses: vec![8, 8, 8],
            act_levels: 9,
            policy: DeploymentPolicy::default(),
        };
        let mut device = DeviceVgg::deploy(&vgg, &params, &cfg, &mut rng).unwrap();
        let images = quantize_tensor(
            &Tensor::from_fn(&[1, 3, 8, 8], |i| ((i % 11) as f32 / 5.0 - 1.0).clamp(-1.0, 1.0)),
            9,
        );
        let (fresh, _) = device.forward(&images, &mut rng).unwrap();
        device.age(10_000.0, 0.05, 0.0, &mut rng);
        let (aged, _) = device.forward(&images, &mut rng).unwrap();
        // drift shrinks the stored weights: feature magnitudes fall,
        // so the pre-classifier signal (and typically logit spread)
        // collapses toward the classifier bias
        assert!(
            aged.std() <= fresh.std() + 1e-3,
            "aged spread {} vs fresh {}",
            aged.std(),
            fresh.std()
        );
    }

    #[test]
    fn fault_aware_deployment_recovers_and_reports() {
        let (vgg, params) = tiny_vgg();
        let mut rng = Rng::from_seed(11);
        let mut xbar = XbarConfig::ideal();
        xbar.noise.device.on_off_ratio = 20.0;
        xbar.noise.device.stuck_on_rate = 0.02;
        xbar.noise.device.stuck_off_rate = 0.02;
        let cfg = DeviceEvalConfig {
            xbar,
            pulses: vec![8, 8, 8],
            act_levels: 9,
            policy: DeploymentPolicy::fault_aware(),
        };
        let mut device = DeviceVgg::deploy(&vgg, &params, &cfg, &mut rng).unwrap();
        let report = device.recovery_report();
        assert!(report.tiles > 0);
        assert!(report.faults_detected > 0, "2% stuck rates must trip the march test");
        assert!(
            report.cells_recovered > 0,
            "recovery must fix something: {report:?}"
        );
        let (_, test3) =
            membit_data::synth_cifar(&membit_data::SynthCifarConfig::tiny(), 1).unwrap();
        let labels: Vec<usize> = test3.labels().iter().map(|&y| y % 4).collect();
        let data = Dataset::new(test3.images().clone(), labels, 4).unwrap();
        let (acc, stats) = device.evaluate(&data, 8, &mut rng).unwrap();
        assert!((0.0..=1.0).contains(&acc));
        // graceful degradation: outcome surfaced in stats, never a panic
        assert_eq!(stats.unrecoverable_cells, report.unrecoverable_cells);
        assert_eq!(stats.degraded_tiles, report.degraded_tiles);
    }

    #[test]
    fn health_monitor_refreshes_aged_deployment() {
        let (vgg, params) = tiny_vgg();
        let mut rng = Rng::from_seed(13);
        let cfg = DeviceEvalConfig {
            xbar: XbarConfig::ideal(),
            pulses: vec![8, 8, 8],
            act_levels: 9,
            policy: DeploymentPolicy {
                recovery: None,
                monitor: Some(HealthMonitor {
                    check_interval: 4,
                    decay_threshold: 0.1,
                    probes: 32,
                }),
            },
        };
        let mut device = DeviceVgg::deploy(&vgg, &params, &cfg, &mut rng).unwrap();
        device.age(20_000.0, 0.05, 0.0, &mut rng);
        let (_, test3) =
            membit_data::synth_cifar(&membit_data::SynthCifarConfig::tiny(), 1).unwrap();
        let labels: Vec<usize> = test3.labels().iter().map(|&y| y % 4).collect();
        let data = Dataset::new(test3.images().clone(), labels, 4).unwrap();
        let (_, stats) = device.evaluate(&data, 8, &mut rng).unwrap();
        assert!(stats.refreshes > 0, "aged arrays must trigger refresh");
        assert_eq!(device.refreshes(), stats.refreshes);
        // after refresh the arrays are back near full magnitude: a second
        // pass over the same data finds nothing left to refresh
        let (_, stats2) = device.evaluate(&data, 8, &mut rng).unwrap();
        assert_eq!(stats2.refreshes, 0);
    }

    #[test]
    fn guarded_deployment_detects_and_repairs_transient_faults() {
        use membit_xbar::GuardPolicy;
        let (vgg, params) = tiny_vgg();
        let mut rng = Rng::from_seed(17);
        let cfg = DeviceEvalConfig {
            xbar: XbarConfig::functional(0.05).with_guard(GuardPolicy::standard()),
            pulses: vec![8, 8, 8],
            act_levels: 9,
            policy: DeploymentPolicy::default(),
        };
        let mut device = DeviceVgg::deploy(&vgg, &params, &cfg, &mut rng).unwrap();
        let images = quantize_tensor(
            &Tensor::from_fn(&[2, 3, 8, 8], |i| ((i % 13) as f32 / 6.0 - 1.0).clamp(-1.0, 1.0)),
            9,
        );
        // healthy arrays: the guard checks every readout and stays quiet
        let (_, clean) = device.forward(&images, &mut rng).unwrap();
        assert!(clean.guard.checks > 0);
        assert_eq!(clean.guard.violations, 0, "{:?}", clean.guard);
        // a mid-inference transient burst must be detected and repaired
        // by the ladder, and the repair disclosed
        // 5% on these tiny arrays → a handful of upsets per tile, whose
        // summed deviation clears the 6σ tolerance on many readouts
        let injected = device.inject_faults(0.05, &mut rng).unwrap();
        assert!(injected > 0);
        let (_, hit) = device.forward(&images, &mut rng).unwrap();
        assert!(hit.guard.violations > 0, "{:?}", hit.guard);
        assert!(
            hit.guard.tile_refreshes + hit.guard.tile_remaps + hit.guard.fallbacks > 0,
            "{:?}",
            hit.guard
        );
        // upsets are conductance excursions, so the refresh stage cures
        // them: the next forward must run violation-free on live arrays
        let (_, after) = device.forward(&images, &mut rng).unwrap();
        assert_eq!(after.guard.violations, 0, "{:?}", after.guard);
        assert_eq!(device.degraded_layers(), 0);
    }

    #[test]
    fn stuck_faults_persist_and_saf_ecc_compensates() {
        let (vgg, params) = tiny_vgg();
        let mut rng = Rng::from_seed(23);
        let mut xbar = XbarConfig::ideal();
        xbar.noise.device.on_off_ratio = 20.0;
        let cfg = DeviceEvalConfig {
            xbar,
            pulses: vec![8, 8, 8],
            act_levels: 9,
            policy: DeploymentPolicy::default(),
        };
        let mut device = DeviceVgg::deploy(&vgg, &params, &cfg, &mut rng).unwrap();
        let images = quantize_tensor(
            &Tensor::from_fn(&[2, 3, 8, 8], |i| ((i % 13) as f32 / 6.0 - 1.0).clamp(-1.0, 1.0)),
            9,
        );
        let (clean, _) = device.forward(&images, &mut rng).unwrap();
        // a heavy persistent burst: unlike upsets, refresh cannot cure it
        let injected = device.inject_stuck_faults(0.05, &mut rng).unwrap();
        assert!(injected > 0);
        for engine in device.engines_mut() {
            engine.refresh(&mut rng);
        }
        let (faulty, _) = device.forward(&images, &mut rng).unwrap();
        let err_faulty = faulty.sub(&clean).unwrap().abs().max();
        assert!(err_faulty > 0.05, "stuck faults must survive refresh: {err_faulty}");
        // march + remap with the SAF error-correction arm
        let report = device.remap_all(&RecoveryPolicy::with_ecc(), &mut rng).unwrap();
        assert!(report.faults_detected > 0, "{report:?}");
        let (fixed, stats) = device.forward(&images, &mut rng).unwrap();
        let err_fixed = fixed.sub(&clean).unwrap().abs().max();
        assert!(
            err_fixed < err_faulty,
            "repair must shrink the error: {err_faulty} → {err_fixed}"
        );
        if report.cells_corrected > 0 {
            assert!(stats.guard.saf_corrections > 0, "{:?}", stats.guard);
        }
    }

    #[test]
    fn max_pool2_reduces_spatial() {
        let x = Tensor::from_fn(&[1, 1, 4, 4], |i| i as f32);
        let p = max_pool2(&x).unwrap();
        assert_eq!(p.shape(), &[1, 1, 2, 2]);
        assert_eq!(p.as_slice(), &[5.0, 7.0, 13.0, 15.0]);
        assert!(max_pool2(&Tensor::zeros(&[1, 1, 3, 3])).is_err());
    }
}
