//! Result rows and table/CSV rendering for the paper's tables.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// One row of the Table I reproduction.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Method label (`Baseline`, `PLA_10`, `GBO (~PLA10)`, ...).
    pub method: String,
    /// Paper-σ noise level.
    pub sigma: f32,
    /// Per-layer pulse counts.
    pub pulses: Vec<usize>,
    /// Average pulse count.
    pub avg_pulses: f32,
    /// Classification accuracy in percent.
    pub accuracy: f32,
}

impl Table1Row {
    /// Formats the per-layer pulse list like the paper: `[8, 8, …]`.
    pub fn pulses_string(&self) -> String {
        let items: Vec<String> = self.pulses.iter().map(ToString::to_string).collect();
        format!("[{}]", items.join(", "))
    }
}

/// One row of the Table II reproduction (accuracy / avg pulses at each σ).
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Method label (`Baseline`, `NIA`, `GBO`, `NIA + GBO`, `NIA + PLA`).
    pub method: String,
    /// `(accuracy %, avg pulses)` per σ column.
    pub cells: Vec<(f32, f32)>,
}

/// One row of the fault-tolerance ablation: accuracy and recovery
/// outcome of a deployment at one stuck-fault rate under one policy.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultAblationRow {
    /// Deployment policy label (`none`, `remap`, `remap+refresh`).
    pub policy: String,
    /// Per-polarity stuck-cell probability (applied to both stuck-ON and
    /// stuck-OFF).
    pub stuck_rate: f32,
    /// Classification accuracy in percent.
    pub accuracy: f32,
    /// Faults the march test detected across all engines.
    pub faults_detected: u64,
    /// Detected cells brought back within tolerance.
    pub cells_recovered: u64,
    /// Cells still faulty after the full recovery pipeline.
    pub unrecoverable_cells: u64,
    /// Tiles deployed with at least one unrecoverable cell.
    pub degraded_tiles: u64,
    /// Drift refreshes triggered during evaluation.
    pub refreshes: u64,
}

/// One row of the guarded-execution ablation: accuracy and guard
/// telemetry of a deployment at one transient-fault rate / noise level
/// under one execution mode.
#[derive(Debug, Clone, PartialEq)]
pub struct GuardAblationRow {
    /// Execution mode label (`clean`, `unguarded`, `guarded`).
    pub mode: String,
    /// Per-cell transient stuck-fault rate injected mid-inference.
    pub fault_rate: f32,
    /// Paper-σ noise level of the deployment.
    pub sigma: f32,
    /// Classification accuracy in percent.
    pub accuracy: f32,
    /// Checksum comparisons performed.
    pub checks: u64,
    /// Checksum violations detected (initial detections + failed
    /// retries).
    pub violations: u64,
    /// Stage-1 pulse re-executions.
    pub retries: u64,
    /// Retries whose fresh readout passed.
    pub retry_successes: u64,
    /// Stage-2 targeted tile refreshes.
    pub tile_refreshes: u64,
    /// Stage-3 march-test + remap repairs.
    pub tile_remaps: u64,
    /// Stage-4 digital-fallback demotions.
    pub fallbacks: u64,
    /// Layers serving the digital fallback after this run.
    pub degraded_layers: u64,
}

impl GuardAblationRow {
    /// CSV header matching [`GuardAblationRow::to_record`].
    pub const CSV_HEADER: [&'static str; 12] = [
        "mode",
        "fault_rate",
        "sigma",
        "accuracy_pct",
        "checks",
        "violations",
        "retries",
        "retry_successes",
        "tile_refreshes",
        "tile_remaps",
        "fallbacks",
        "degraded_layers",
    ];

    /// Renders the row as CSV fields in [`Self::CSV_HEADER`] order.
    pub fn to_record(&self) -> Vec<String> {
        vec![
            self.mode.clone(),
            format!("{}", self.fault_rate),
            format!("{}", self.sigma),
            format!("{:.2}", self.accuracy),
            self.checks.to_string(),
            self.violations.to_string(),
            self.retries.to_string(),
            self.retry_successes.to_string(),
            self.tile_refreshes.to_string(),
            self.tile_remaps.to_string(),
            self.fallbacks.to_string(),
            self.degraded_layers.to_string(),
        ]
    }

    /// Builds a row from guard telemetry.
    pub fn from_stats(
        mode: impl Into<String>,
        fault_rate: f32,
        sigma: f32,
        accuracy: f32,
        guard: &membit_xbar::GuardStats,
    ) -> Self {
        Self {
            mode: mode.into(),
            fault_rate,
            sigma,
            accuracy,
            checks: guard.checks,
            violations: guard.violations,
            retries: guard.retries,
            retry_successes: guard.retry_successes,
            tile_refreshes: guard.tile_refreshes,
            tile_remaps: guard.tile_remaps,
            fallbacks: guard.fallbacks,
            degraded_layers: guard.degraded_layers,
        }
    }
}

/// One row of the physical non-ideality ablation: accuracy and recovery
/// telemetry of a deployment under one (scenario, mitigation) pair.
#[derive(Debug, Clone, PartialEq)]
pub struct NonIdealAblationRow {
    /// Scenario label (`baseline`, `ir_drop`, `hot`, `saf`, `combined`).
    pub scenario: String,
    /// Mitigation stack label (`none`, `guard`, `full`).
    pub mitigation: String,
    /// Operating temperature of the scenario in kelvin.
    pub temperature_k: f32,
    /// Classification accuracy in percent.
    pub accuracy: f32,
    /// Checksum comparisons performed.
    pub checks: u64,
    /// Checksum violations detected.
    pub violations: u64,
    /// Stage-2 targeted tile refreshes.
    pub tile_refreshes: u64,
    /// Stage-3 march-test + remap repairs.
    pub tile_remaps: u64,
    /// Stage-4 digital-fallback demotions.
    pub fallbacks: u64,
    /// Digital SAF error corrections applied during execution.
    pub saf_corrections: u64,
    /// Unrecoverable cells carrying an ECC correction entry.
    pub cells_corrected: u64,
    /// Cells still faulty after the full recovery pipeline.
    pub unrecoverable_cells: u64,
}

impl NonIdealAblationRow {
    /// CSV header matching [`NonIdealAblationRow::to_record`].
    pub const CSV_HEADER: [&'static str; 12] = [
        "scenario",
        "mitigation",
        "temperature_k",
        "accuracy_pct",
        "checks",
        "violations",
        "tile_refreshes",
        "tile_remaps",
        "fallbacks",
        "saf_corrections",
        "cells_corrected",
        "unrecoverable_cells",
    ];

    /// Renders the row as CSV fields in [`Self::CSV_HEADER`] order.
    pub fn to_record(&self) -> Vec<String> {
        vec![
            self.scenario.clone(),
            self.mitigation.clone(),
            format!("{}", self.temperature_k),
            format!("{:.2}", self.accuracy),
            self.checks.to_string(),
            self.violations.to_string(),
            self.tile_refreshes.to_string(),
            self.tile_remaps.to_string(),
            self.fallbacks.to_string(),
            self.saf_corrections.to_string(),
            self.cells_corrected.to_string(),
            self.unrecoverable_cells.to_string(),
        ]
    }

    /// Builds a row from guard telemetry plus the recovery outcome.
    pub fn from_stats(
        scenario: impl Into<String>,
        mitigation: impl Into<String>,
        temperature_k: f32,
        accuracy: f32,
        stats: &membit_xbar::ExecutionStats,
        cells_corrected: u64,
    ) -> Self {
        Self {
            scenario: scenario.into(),
            mitigation: mitigation.into(),
            temperature_k,
            accuracy,
            checks: stats.guard.checks,
            violations: stats.guard.violations,
            tile_refreshes: stats.guard.tile_refreshes,
            tile_remaps: stats.guard.tile_remaps,
            fallbacks: stats.guard.fallbacks,
            saf_corrections: stats.guard.saf_corrections,
            cells_corrected,
            unrecoverable_cells: stats.unrecoverable_cells,
        }
    }
}

impl FaultAblationRow {
    /// CSV header matching [`FaultAblationRow::to_record`].
    pub const CSV_HEADER: [&'static str; 8] = [
        "policy",
        "stuck_rate",
        "accuracy_pct",
        "faults_detected",
        "cells_recovered",
        "unrecoverable_cells",
        "degraded_tiles",
        "refreshes",
    ];

    /// Renders the row as CSV fields in [`Self::CSV_HEADER`] order.
    pub fn to_record(&self) -> Vec<String> {
        vec![
            self.policy.clone(),
            format!("{}", self.stuck_rate),
            format!("{:.2}", self.accuracy),
            self.faults_detected.to_string(),
            self.cells_recovered.to_string(),
            self.unrecoverable_cells.to_string(),
            self.degraded_tiles.to_string(),
            self.refreshes.to_string(),
        ]
    }
}

/// Renders rows as a GitHub-flavored markdown table.
pub fn markdown_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "| {} |", header.join(" | "));
    let _ = writeln!(
        out,
        "|{}|",
        header.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    for row in rows {
        let _ = writeln!(out, "| {} |", row.join(" | "));
    }
    out
}

/// Writes rows as CSV (comma-separated, quoted only when needed) under
/// `path`, creating parent directories.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn write_csv(path: impl AsRef<Path>, header: &[&str], rows: &[Vec<String>]) -> io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    let mut out = String::new();
    let quote = |s: &str| {
        if s.contains(',') || s.contains('"') {
            format!("\"{}\"", s.replace('"', "\"\""))
        } else {
            s.to_string()
        }
    };
    let _ = writeln!(
        out,
        "{}",
        header.iter().map(|h| quote(h)).collect::<Vec<_>>().join(",")
    );
    for row in rows {
        let _ = writeln!(
            out,
            "{}",
            row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(",")
        );
    }
    fs::write(path, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_row_formats_pulses() {
        let row = Table1Row {
            method: "Baseline".into(),
            sigma: 10.0,
            pulses: vec![8; 3],
            avg_pulses: 8.0,
            accuracy: 83.94,
        };
        assert_eq!(row.pulses_string(), "[8, 8, 8]");
    }

    #[test]
    fn fault_row_record_matches_header() {
        let row = FaultAblationRow {
            policy: "remap+refresh".into(),
            stuck_rate: 0.01,
            accuracy: 71.25,
            faults_detected: 42,
            cells_recovered: 40,
            unrecoverable_cells: 2,
            degraded_tiles: 1,
            refreshes: 3,
        };
        let rec = row.to_record();
        assert_eq!(rec.len(), FaultAblationRow::CSV_HEADER.len());
        assert_eq!(rec[0], "remap+refresh");
        assert_eq!(rec[2], "71.25");
    }

    #[test]
    fn guard_row_record_matches_header() {
        let guard = membit_xbar::GuardStats {
            checks: 1000,
            violations: 12,
            retries: 24,
            retry_successes: 6,
            tile_refreshes: 3,
            tile_remaps: 2,
            fallbacks: 1,
            saf_corrections: 0,
            degraded_layers: 1,
        };
        let row = GuardAblationRow::from_stats("guarded", 0.01, 0.1, 68.5, &guard);
        let rec = row.to_record();
        assert_eq!(rec.len(), GuardAblationRow::CSV_HEADER.len());
        assert_eq!(rec[0], "guarded");
        assert_eq!(rec[4], "1000");
        assert_eq!(rec[11], "1");
    }

    #[test]
    fn nonideal_row_record_matches_header() {
        let stats = membit_xbar::ExecutionStats {
            unrecoverable_cells: 4,
            guard: membit_xbar::GuardStats {
                checks: 200,
                violations: 3,
                retries: 6,
                retry_successes: 2,
                tile_refreshes: 1,
                tile_remaps: 1,
                fallbacks: 0,
                saf_corrections: 57,
                degraded_layers: 0,
            },
            ..Default::default()
        };
        let row =
            NonIdealAblationRow::from_stats("saf", "full", 300.0, 74.5, &stats, 4);
        let rec = row.to_record();
        assert_eq!(rec.len(), NonIdealAblationRow::CSV_HEADER.len());
        assert_eq!(rec[0], "saf");
        assert_eq!(rec[1], "full");
        assert_eq!(rec[9], "57");
        assert_eq!(rec[10], "4");
        assert_eq!(rec[11], "4");
    }

    #[test]
    fn markdown_table_shape() {
        let md = markdown_table(
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        );
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], "| a | b |");
        assert_eq!(lines[1], "|---|---|");
        assert_eq!(lines[3], "| 3 | 4 |");
    }

    #[test]
    fn csv_roundtrip_with_quoting() {
        let path = std::env::temp_dir().join(format!(
            "membit-report-test-{}.csv",
            std::process::id()
        ));
        write_csv(
            &path,
            &["x", "list"],
            &[vec!["1".into(), "[8, 8]".into()]],
        )
        .unwrap();
        let text = fs::read_to_string(&path).unwrap();
        fs::remove_file(&path).ok();
        assert_eq!(text, "x,list\n1,\"[8, 8]\"\n");
    }
}
