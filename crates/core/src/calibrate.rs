//! Mapping the paper's unit-less σ onto this simulator's scale.
//!
//! The paper reports σ ∈ {10, 15, 20} in the (unstated) units of its
//! un-normalized MVM outputs. We make the mapping explicit: calibration
//! measures each crossbar layer's clean MVM output RMS on the pre-trained
//! network, and a paper-σ converts to per-layer absolute per-pulse noise
//! as `σ_abs(l) = σ/unit × RMS(l)`. The `unit` constant is chosen once so
//! the Baseline degradation ladder matches the paper's (≈ 84 → 62 → 31 %);
//! everything else (the 1/√p suppression, the layer-wise heterogeneity,
//! the GBO optimization) then follows the paper's equations exactly.

use membit_autograd::Tape;
use membit_data::Dataset;
use membit_nn::{Params, Phase};
use membit_tensor::TensorError;

use crate::hooks::RmsRecorder;
use crate::model::CrossbarModel;
use crate::Result;

/// Per-layer noise scale derived from the clean network.
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseCalibration {
    rms: Vec<f32>,
    unit: f32,
}

impl NoiseCalibration {
    /// Wraps measured per-layer RMS values with the σ-unit divisor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] for an empty RMS vector or
    /// a non-positive unit.
    pub fn new(rms: Vec<f32>, unit: f32) -> Result<Self> {
        if rms.is_empty() {
            return Err(
                TensorError::InvalidArgument("calibration needs at least one layer".into())
                    .into(),
            );
        }
        if unit <= 0.0 || unit.is_nan() {
            return Err(TensorError::InvalidArgument(format!(
                "sigma unit must be positive, got {unit}"
            ))
            .into());
        }
        Ok(Self { rms, unit })
    }

    /// The measured per-layer clean MVM RMS.
    pub fn rms(&self) -> &[f32] {
        &self.rms
    }

    /// The paper-σ divisor.
    pub fn unit(&self) -> f32 {
        self.unit
    }

    /// Number of crossbar layers.
    pub fn layers(&self) -> usize {
        self.rms.len()
    }

    /// Per-layer absolute per-pulse noise for a paper-σ.
    pub fn sigma_abs(&self, paper_sigma: f32) -> Vec<f32> {
        self.rms
            .iter()
            .map(|&r| paper_sigma / self.unit * r)
            .collect()
    }
}

/// Measures every crossbar layer's clean MVM output RMS over up to
/// `max_batches` evaluation batches and wraps it with `unit`.
///
/// # Errors
///
/// Propagates forward-pass errors, or
/// [`TensorError::InvalidArgument`] for an empty dataset.
pub fn calibrate_noise(
    model: &mut dyn CrossbarModel,
    params: &Params,
    data: &Dataset,
    batch_size: usize,
    max_batches: usize,
    unit: f32,
) -> Result<NoiseCalibration> {
    if data.is_empty() {
        return Err(
            TensorError::InvalidArgument("cannot calibrate on an empty dataset".into()).into(),
        );
    }
    let mut recorder = RmsRecorder::new(model.crossbar_layers());
    for (i, (images, _labels)) in data.batches(batch_size).enumerate() {
        if i >= max_batches {
            break;
        }
        let mut tape = Tape::new();
        let mut binding = params.frozen_binding();
        let x = tape.constant(images);
        model.forward(&mut tape, params, &mut binding, x, Phase::Eval, &mut recorder)?;
    }
    NoiseCalibration::new(recorder.rms(), unit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use membit_data::{synth_cifar, SynthCifarConfig};
    use membit_nn::{Mlp, MlpConfig};
    use membit_tensor::Rng;

    #[test]
    fn calibration_validates() {
        assert!(NoiseCalibration::new(vec![], 10.0).is_err());
        assert!(NoiseCalibration::new(vec![1.0], 0.0).is_err());
        let c = NoiseCalibration::new(vec![2.0, 4.0], 10.0).unwrap();
        assert_eq!(c.sigma_abs(5.0), vec![1.0, 2.0]);
        assert_eq!(c.layers(), 2);
        assert_eq!(c.unit(), 10.0);
    }

    #[test]
    fn calibrate_on_mlp_measures_positive_rms() {
        let mut rng = Rng::from_seed(0);
        let mut params = Params::new();
        let mut mlp = Mlp::new(
            &MlpConfig::new(3 * 8 * 8, &[16, 12], 10),
            &mut params,
            &mut rng,
        )
        .unwrap();
        let (train, _) = synth_cifar(&SynthCifarConfig::tiny(), 1).unwrap();
        let cal = calibrate_noise(&mut mlp, &params, &train, 16, 4, 10.0).unwrap();
        assert_eq!(cal.layers(), 2);
        assert!(cal.rms().iter().all(|&r| r > 0.0), "{:?}", cal.rms());
        // deterministic under repeat
        let cal2 = calibrate_noise(&mut mlp, &params, &train, 16, 4, 10.0).unwrap();
        assert_eq!(cal.rms(), cal2.rms());
    }

    #[test]
    fn empty_dataset_rejected() {
        let mut rng = Rng::from_seed(0);
        let mut params = Params::new();
        let mut mlp = Mlp::new(&MlpConfig::new(4, &[4], 2), &mut params, &mut rng).unwrap();
        let empty = Dataset::new(membit_tensor::Tensor::zeros(&[0, 1, 2, 2]), vec![], 2).unwrap();
        assert!(calibrate_noise(&mut mlp, &params, &empty, 4, 1, 10.0).is_err());
    }
}
