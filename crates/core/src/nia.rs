//! Noise-Injection Adaptation (NIA, He et al. DAC'19) — the prior
//! noise-aware *weight* training GBO is compared against and combined
//! with (paper §IV-C, Table II).
//!
//! NIA fine-tunes the pre-trained weights while injecting the same
//! functional crossbar noise the deployment will see, letting the weights
//! absorb the noise statistics. It is complementary to GBO, which leaves
//! weights untouched and changes only the input encoding.

use membit_data::Dataset;
use membit_nn::Params;
use membit_tensor::{Rng, RngStream, TensorError};

use crate::calibrate::NoiseCalibration;
use crate::hooks::{GaussianMvmNoise, VariationAwareNoise};
use crate::model::CrossbarModel;
use crate::resilience::ResilienceConfig;
use crate::trainer::{pretrain_stage, TrainConfig, TrainReport};
use crate::Result;

/// Hyperparameters for NIA fine-tuning.
#[derive(Debug, Clone, PartialEq)]
pub struct NiaConfig {
    /// Fine-tuning epochs.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Learning rate (fine-tuning: lower than pre-training).
    pub lr: f32,
    /// Pulse count assumed during fine-tuning (the deployment baseline,
    /// 8 in the paper).
    pub pulses: usize,
    /// Horizontal-flip augmentation during fine-tuning — should match
    /// whatever the pre-training stage used.
    pub augment_flip: bool,
    /// Root RNG seed.
    pub seed: u64,
}

impl NiaConfig {
    /// Default fine-tuning recipe: `epochs` on the 8-pulse baseline
    /// encoding. The LR is an order below this repo's pre-training LR
    /// (mirroring the paper's fine-tune-vs-pretrain ratio) rather than
    /// the paper's absolute 1e-4, which stalls at this reduced scale.
    pub fn new(epochs: usize, seed: u64) -> Self {
        Self {
            epochs,
            batch_size: 50,
            lr: 2e-3,
            pulses: 8,
            augment_flip: true,
            seed,
        }
    }
}

/// Fine-tunes `model`'s weights with per-layer Gaussian noise injection at
/// the level `calibration` assigns to `paper_sigma`.
///
/// # Errors
///
/// Propagates training errors and layer-count mismatches.
pub fn nia_finetune(
    model: &mut dyn CrossbarModel,
    params: &mut Params,
    train: &Dataset,
    calibration: &NoiseCalibration,
    paper_sigma: f32,
    cfg: &NiaConfig,
) -> Result<TrainReport> {
    nia_finetune_resilient(
        model,
        params,
        train,
        calibration,
        paper_sigma,
        cfg,
        &ResilienceConfig::default(),
    )
}

/// [`nia_finetune`] with an explicit resilience policy: the underlying
/// noisy training loop gains watchdog-guarded rollback, periodic atomic
/// checkpoints (including the noise hook's RNG stream, so the injected
/// noise sequence survives a restart), and `--resume` restore. See
/// [`pretrain_resilient`](crate::pretrain_resilient) for the shared
/// semantics.
///
/// # Errors
///
/// As [`nia_finetune`], plus checkpoint errors and
/// [`TrainError::Diverged`](crate::TrainError::Diverged) on unrecoverable
/// divergence.
pub fn nia_finetune_resilient(
    model: &mut dyn CrossbarModel,
    params: &mut Params,
    train: &Dataset,
    calibration: &NoiseCalibration,
    paper_sigma: f32,
    cfg: &NiaConfig,
    res: &ResilienceConfig,
) -> Result<TrainReport> {
    if calibration.layers() != model.crossbar_layers() {
        return Err(TensorError::InvalidArgument(format!(
            "calibration covers {} layers but model has {}",
            calibration.layers(),
            model.crossbar_layers()
        ))
        .into());
    }
    let sigma_abs = calibration.sigma_abs(paper_sigma);
    let noise_rng = Rng::from_seed(cfg.seed).stream(RngStream::Noise);
    let mut hook = GaussianMvmNoise::new(
        sigma_abs,
        vec![cfg.pulses; calibration.layers()],
        noise_rng,
    )?;
    let train_cfg = TrainConfig {
        epochs: cfg.epochs,
        batch_size: cfg.batch_size,
        lr: cfg.lr,
        momentum: 0.9,
        weight_decay: 5e-4,
        augment_flip: cfg.augment_flip,
        seed: cfg.seed,
    };
    pretrain_stage("nia", model, params, train, &train_cfg, &mut hook, res)
}

/// Operating-condition envelope sampled during variation-aware NIA
/// fine-tuning (see [`nia_finetune_variation_aware`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NiaVariation {
    /// Sampled operating-temperature range in kelvin; each forward pass
    /// draws one temperature uniformly from it.
    pub temp_range: (f32, f32),
    /// Maximum IR-drop output droop fraction; each pass draws a severity
    /// uniformly from `[0, droop]`.
    pub droop: f32,
}

impl NiaVariation {
    /// The envelope the `ablation_nonideal` experiment deploys into:
    /// room temperature up to a hot 370 K corner, with up to 10 % signal
    /// droop from wire resistance.
    pub fn standard() -> Self {
        Self {
            temp_range: (membit_xbar::T_REF, 370.0),
            droop: 0.10,
        }
    }
}

/// [`nia_finetune`] made *variation-aware*: instead of one fixed noise
/// level, each fine-tuning forward pass samples an operating temperature
/// and an IR-drop severity from `var`'s envelope, scaling the injected
/// noise by `√(T/T_REF)` and the MVM outputs by the sampled attenuation
/// (the functional image of what
/// [`membit_xbar::NonIdealitySpec`] does to the physical array). The
/// weights therefore adapt to the whole deployment envelope rather than
/// its center.
///
/// # Errors
///
/// As [`nia_finetune`], plus invalid `var` envelopes.
pub fn nia_finetune_variation_aware(
    model: &mut dyn CrossbarModel,
    params: &mut Params,
    train: &Dataset,
    calibration: &NoiseCalibration,
    paper_sigma: f32,
    cfg: &NiaConfig,
    var: &NiaVariation,
) -> Result<TrainReport> {
    if calibration.layers() != model.crossbar_layers() {
        return Err(TensorError::InvalidArgument(format!(
            "calibration covers {} layers but model has {}",
            calibration.layers(),
            model.crossbar_layers()
        ))
        .into());
    }
    let sigma_abs = calibration.sigma_abs(paper_sigma);
    let noise_rng = Rng::from_seed(cfg.seed).stream(RngStream::Noise);
    let mut hook = VariationAwareNoise::new(
        sigma_abs,
        vec![cfg.pulses; calibration.layers()],
        var.temp_range,
        var.droop,
        noise_rng,
    )?;
    let train_cfg = TrainConfig {
        epochs: cfg.epochs,
        batch_size: cfg.batch_size,
        lr: cfg.lr,
        momentum: 0.9,
        weight_decay: 5e-4,
        augment_flip: cfg.augment_flip,
        seed: cfg.seed,
    };
    pretrain_stage(
        "nia-var",
        model,
        params,
        train,
        &train_cfg,
        &mut hook,
        &ResilienceConfig::default(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibrate::calibrate_noise;
    use crate::hooks::PlaHook;
    use crate::trainer::{evaluate_with_hook, pretrain as clean_pretrain};
    use membit_data::{synth_cifar, SynthCifarConfig};
    use membit_nn::{Mlp, MlpConfig, NoNoise};

    #[test]
    fn nia_improves_noisy_accuracy() {
        let mut rng = Rng::from_seed(0);
        let mut params = Params::new();
        let mut mlp = Mlp::new(
            &MlpConfig::new(3 * 8 * 8, &[24], 10),
            &mut params,
            &mut rng,
        )
        .unwrap();
        let (train, test) = synth_cifar(&SynthCifarConfig::tiny(), 11).unwrap();
        let tc = TrainConfig {
            epochs: 6,
            batch_size: 40,
            lr: 5e-3,
            momentum: 0.9,
            weight_decay: 0.0,
            augment_flip: false,
            seed: 3,
        };
        clean_pretrain(&mut mlp, &mut params, &train, &tc, &mut NoNoise).unwrap();
        let cal = calibrate_noise(&mut mlp, &params, &train, 20, 2, 10.0).unwrap();
        let sigma = 20.0;

        let eval = |mlp: &mut Mlp, params: &Params, seed: u64| {
            let mut hook = PlaHook::new(
                vec![8; 1],
                cal.sigma_abs(sigma),
                9,
                Rng::from_seed(seed).stream(RngStream::Noise),
            )
            .unwrap();
            evaluate_with_hook(mlp, params, &test, 20, &mut hook).unwrap()
        };
        let before: f32 = (0..3).map(|s| eval(&mut mlp, &params, s)).sum::<f32>() / 3.0;
        nia_finetune(
            &mut mlp,
            &mut params,
            &train,
            &cal,
            sigma,
            &NiaConfig {
                epochs: 5,
                batch_size: 40,
                lr: 2e-3,
                pulses: 8,
                augment_flip: false,
                seed: 4,
            },
        )
        .unwrap();
        let after: f32 = (0..3).map(|s| eval(&mut mlp, &params, s)).sum::<f32>() / 3.0;
        assert!(
            after >= before - 0.02,
            "NIA should not hurt noisy accuracy: {before} → {after}"
        );
    }

    #[test]
    fn variation_aware_finetune_runs_and_validates() {
        let mut rng = Rng::from_seed(21);
        let mut params = Params::new();
        let mut mlp = Mlp::new(
            &MlpConfig::new(3 * 8 * 8, &[12], 10),
            &mut params,
            &mut rng,
        )
        .unwrap();
        let (train, _) = synth_cifar(&SynthCifarConfig::tiny(), 23).unwrap();
        let cal = calibrate_noise(&mut mlp, &params, &train, 20, 1, 10.0).unwrap();
        let cfg = NiaConfig {
            epochs: 1,
            batch_size: 40,
            lr: 2e-3,
            pulses: 8,
            augment_flip: false,
            seed: 5,
        };
        let report = nia_finetune_variation_aware(
            &mut mlp,
            &mut params,
            &train,
            &cal,
            15.0,
            &cfg,
            &NiaVariation::standard(),
        )
        .unwrap();
        assert!(report.final_train_acc >= 0.0);
        // a non-physical envelope is rejected before any training
        let bad = NiaVariation {
            temp_range: (500.0, 600.0),
            droop: 0.1,
        };
        assert!(nia_finetune_variation_aware(
            &mut mlp,
            &mut params,
            &train,
            &cal,
            15.0,
            &cfg,
            &bad
        )
        .is_err());
    }

    #[test]
    fn layer_mismatch_rejected() {
        let mut rng = Rng::from_seed(0);
        let mut params = Params::new();
        let mut mlp = Mlp::new(&MlpConfig::new(8, &[4, 4], 2), &mut params, &mut rng).unwrap();
        let cal = NoiseCalibration::new(vec![1.0], 10.0).unwrap(); // 1 ≠ 2 layers
        let (train, _) = synth_cifar(&SynthCifarConfig::tiny(), 0).unwrap();
        assert!(nia_finetune(
            &mut mlp,
            &mut params,
            &train,
            &cal,
            10.0,
            &NiaConfig::new(1, 0)
        )
        .is_err());
    }
}
