//! Layer-wise noise sensitivity analysis (paper Fig. 2).

use membit_data::Dataset;
use membit_nn::Params;
use membit_tensor::{Rng, RngStream};

use crate::hooks::SingleLayerNoise;
use crate::model::CrossbarModel;
use crate::trainer::evaluate_with_hook;
use crate::Result;

/// For each crossbar layer, evaluates accuracy with Gaussian noise
/// `N(0, σ_l²)` injected at *that layer only* (σ_l given per layer,
/// typically `calibration.sigma_abs(σ)`), averaged over `repeats` noise
/// seeds.
///
/// Returns one accuracy per layer — the paper's Fig. 2 series.
///
/// # Errors
///
/// Propagates evaluation errors.
pub fn layer_sensitivity(
    model: &mut dyn CrossbarModel,
    params: &Params,
    data: &Dataset,
    sigma_abs: &[f32],
    batch_size: usize,
    repeats: usize,
    seed: u64,
) -> Result<Vec<f32>> {
    let layers = model.crossbar_layers().min(sigma_abs.len());
    let mut out = Vec::with_capacity(layers);
    for (layer, &sig) in sigma_abs.iter().enumerate().take(layers) {
        let mut acc_sum = 0.0f32;
        for rep in 0..repeats.max(1) {
            // keyed substream derivation: the old xor/shift/or mixing
            // collided whenever `(seed ^ rep<<32) | layer` coincided
            let rng = Rng::from_seed(seed)
                .substream(&[rep as u64, layer as u64])
                .stream(RngStream::Noise);
            let mut hook = SingleLayerNoise::new(layer, sig, rng);
            acc_sum += evaluate_with_hook(model, params, data, batch_size, &mut hook)?;
        }
        out.push(acc_sum / repeats.max(1) as f32);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibrate::calibrate_noise;
    use crate::trainer::{evaluate, pretrain, TrainConfig};
    use membit_data::{synth_cifar, SynthCifarConfig};
    use membit_nn::{Mlp, MlpConfig, NoNoise};

    #[test]
    fn noisy_layers_hurt_accuracy() {
        let mut rng = Rng::from_seed(0);
        let mut params = Params::new();
        let mut mlp = Mlp::new(
            &MlpConfig::new(3 * 8 * 8, &[24, 16], 10),
            &mut params,
            &mut rng,
        )
        .unwrap();
        let (train, test) = synth_cifar(&SynthCifarConfig::tiny(), 13).unwrap();
        let tc = TrainConfig {
            epochs: 25,
            batch_size: 20,
            lr: 2e-2,
            momentum: 0.9,
            weight_decay: 0.0,
            augment_flip: false,
            seed: 3,
        };
        pretrain(&mut mlp, &mut params, &train, &tc, &mut NoNoise).unwrap();
        let clean = evaluate(&mut mlp, &params, &test, 20).unwrap();
        let cal = calibrate_noise(&mut mlp, &params, &train, 20, 2, 10.0).unwrap();
        // massive single-layer noise: 5× the layer RMS
        let sigma_abs = cal.sigma_abs(50.0);
        let series =
            layer_sensitivity(&mut mlp, &params, &test, &sigma_abs, 20, 2, 7).unwrap();
        assert_eq!(series.len(), 2);
        for (l, &acc) in series.iter().enumerate() {
            assert!(
                acc < clean,
                "layer {l}: noisy acc {acc} should fall below clean {clean}"
            );
        }
    }

    #[test]
    fn zero_noise_recovers_clean_accuracy() {
        let mut rng = Rng::from_seed(0);
        let mut params = Params::new();
        let mut mlp = Mlp::new(
            &MlpConfig::new(3 * 8 * 8, &[16], 10),
            &mut params,
            &mut rng,
        )
        .unwrap();
        let (_, test) = synth_cifar(&SynthCifarConfig::tiny(), 13).unwrap();
        let clean = evaluate(&mut mlp, &params, &test, 20).unwrap();
        let series = layer_sensitivity(&mut mlp, &params, &test, &[0.0], 20, 1, 7).unwrap();
        assert_eq!(series, vec![clean]);
    }
}
