//! Queue invariants of the serving core, property-tested over random
//! workloads: conservation (every request resolved exactly once, no
//! lost or double-served work), admission monotone in queue capacity,
//! zero silent drops, and bitwise replay of the request log.

use std::collections::HashMap;

use membit_serve::{
    replay, simulate, ArrivalEvent, ArrivalKind, LinearServeModel, ServeConfig, ServeError,
};
use membit_tensor::{Rng, Tensor};
use membit_xbar::{GuardPolicy, XbarConfig};
use proptest::prelude::*;

const IN: usize = 4;
const OUT: usize = 3;

fn model(seed: u64) -> LinearServeModel {
    let mut rng = Rng::from_seed(seed);
    let w = Tensor::from_fn(&[OUT, IN], |i| {
        if (i + seed as usize).is_multiple_of(2) {
            1.0
        } else {
            -1.0
        }
    });
    let cfg = XbarConfig::functional(0.05).with_guard(GuardPolicy::standard());
    LinearServeModel::program(&w, &cfg, 9, 4, &mut rng).expect("program")
}

fn payload(i: usize, seed: u64) -> Vec<f32> {
    (0..IN)
        .map(|j| ((((i + j) * 3 + seed as usize) % 9) as f32 / 4.0 - 1.0).clamp(-1.0, 1.0))
        .collect()
}

/// A random workload: `n` requests with random inter-arrival gaps and an
/// occasional chaos event.
fn schedule(n: usize, gap_ns: u64, chaos_every: usize, seed: u64) -> Vec<ArrivalEvent> {
    let mut events = Vec::new();
    let mut t = 0u64;
    for i in 0..n {
        t += gap_ns * ((i as u64 % 3) + 1) / 2;
        if chaos_every > 0 && i > 0 && i % chaos_every == 0 {
            events.push(ArrivalEvent {
                at_ns: t,
                kind: ArrivalKind::Chaos { rate: 0.01 },
            });
        }
        events.push(ArrivalEvent {
            at_ns: t,
            kind: ArrivalKind::Request {
                input: payload(i, seed),
                deadline_ns: None,
            },
        });
    }
    events
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Conservation: every scheduled request gets exactly one outcome,
    /// and the stats identity `admitted == completed + expired + failed
    /// + cancelled` holds — no lost work, no double-served work.
    #[test]
    fn every_request_resolved_exactly_once(
        seed in 0u64..200,
        n in 1usize..24,
        gap_kind in 0usize..3,
        capacity in 1usize..16,
        max_batch in 1usize..9,
        block_align in 1usize..5,
        chaos_every in 0usize..6,
    ) {
        let gap = [0u64, 500, 50_000][gap_kind];
        let mut cfg = ServeConfig::standard(seed);
        cfg.queue_capacity = capacity;
        cfg.max_batch = max_batch;
        cfg.block_align = block_align;
        let events = schedule(n, gap, chaos_every, seed);
        let report = simulate(model(seed), cfg, &events).expect("simulate");

        prop_assert!(report.stats.accounted(), "{:?}", report.stats);
        // one outcome per scheduled request, each index exactly once
        let requests = events.iter()
            .filter(|e| matches!(e.kind, ArrivalKind::Request { .. }))
            .count();
        prop_assert_eq!(report.outcomes.len(), requests);
        let mut seen = std::collections::HashSet::new();
        for o in &report.outcomes {
            prop_assert!(seen.insert(o.index), "index {} resolved twice", o.index);
            // zero silent drops: an outcome is a response or a typed error
            match &o.result {
                Ok(r) => prop_assert_eq!(r.output.len(), OUT),
                Err(ServeError::QueueFull { .. })
                | Err(ServeError::DeadlineExceeded { .. })
                | Err(ServeError::Shed)
                | Err(ServeError::Engine(_)) => {}
                Err(e) => prop_assert!(false, "untyped outcome {e}"),
            }
        }
        // resolved ids are unique (no double-serve)
        let mut ids = std::collections::HashSet::new();
        for o in report.outcomes.iter().filter(|o| o.id.is_some()) {
            prop_assert!(ids.insert(o.id), "id {:?} served twice", o.id);
        }
        let completions = report.outcomes.iter().filter(|o| o.result.is_ok()).count();
        prop_assert_eq!(completions as u64, report.stats.completed);
    }

    /// Admission is monotone in capacity for a burst workload: every
    /// request admitted at capacity `c` is admitted at capacity `c + k`.
    #[test]
    fn burst_admission_monotone_in_capacity(
        seed in 0u64..200,
        n in 1usize..20,
        c in 1usize..10,
        extra in 1usize..8,
    ) {
        // all arrive at t=0: admission is decided before any batch runs
        let events = schedule(n, 0, 0, seed);
        let admitted = |capacity: usize| -> std::collections::HashSet<usize> {
            let mut cfg = ServeConfig::standard(seed);
            cfg.queue_capacity = capacity;
            simulate(model(seed), cfg, &events)
                .expect("simulate")
                .outcomes
                .iter()
                .filter(|o| o.id.is_some())
                .map(|o| o.index)
                .collect()
        };
        let small = admitted(c);
        let large = admitted(c + extra);
        prop_assert!(
            small.is_subset(&large),
            "capacity {} admitted {:?} but {} admitted {:?}",
            c, small, c + extra, large
        );
    }

    /// The request log alone reproduces every completed response
    /// bitwise against a freshly programmed model.
    #[test]
    fn replay_matches_simulation_bitwise(
        seed in 0u64..200,
        n in 1usize..16,
        max_batch in 1usize..6,
        chaos_every in 0usize..4,
    ) {
        let mut cfg = ServeConfig::standard(seed);
        cfg.max_batch = max_batch;
        let retry = cfg.retry;
        let events = schedule(n, 20_000, chaos_every, seed);
        let report = simulate(model(seed), cfg, &events).expect("simulate");
        let live: HashMap<u64, Vec<f32>> = report.outcomes.iter()
            .filter_map(|o| match (&o.id, &o.result) {
                (Some(id), Ok(r)) => Some((*id, r.output.clone())),
                _ => None,
            })
            .collect();
        let mut fresh = model(seed);
        let rows = replay(&mut fresh, seed, &retry, &report.log).expect("replay");
        prop_assert_eq!(rows.len(), live.len());
        for (id, row) in rows {
            let expected = live.get(&id).expect("live row");
            prop_assert_eq!(expected.as_slice(), row.as_slice(), "id {} diverged", id);
        }
    }
}
