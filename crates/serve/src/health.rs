//! Health-aware graceful degradation.
//!
//! The serving loop watches two signals after every batch: the guard's
//! checksum violation rate (violations per check, smoothed with an EMA)
//! and the number of layers the escalation ladder has demoted to the
//! digital fallback. Crossing the lower threshold marks the deployment
//! [`Degraded`](HealthState::Degraded) — it keeps serving (the engines
//! already route around the damage) but the state is surfaced in
//! telemetry; crossing the upper threshold flips admission to
//! [`Shedding`](HealthState::Shedding), rejecting new work with the
//! typed [`ServeError::Shed`](crate::ServeError::Shed) until the EMA
//! recovers. The tracker is pure arithmetic over batch stats, so live
//! serving and replay walk the identical state sequence.

use membit_tensor::TensorError;
use membit_xbar::ExecutionStats;

use crate::Result;

/// Thresholds of the degradation state machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthPolicy {
    /// EMA violation rate above which the deployment counts as degraded.
    pub degrade_violation_rate: f64,
    /// EMA violation rate above which admission sheds load.
    pub shed_violation_rate: f64,
    /// Demoted-layer count at which admission sheds load regardless of
    /// the violation EMA (the ladder is out of hardware remedies).
    pub shed_degraded_layers: u64,
    /// EMA smoothing factor in `(0, 1]`: weight of the newest batch.
    pub ema_alpha: f64,
}

impl HealthPolicy {
    /// Defaults tuned for guarded deployments: degrade at a 2% EMA
    /// violation rate, shed at 20% or once 2 layers run on the fallback.
    pub fn standard() -> Self {
        Self {
            degrade_violation_rate: 0.02,
            shed_violation_rate: 0.2,
            shed_degraded_layers: 2,
            ema_alpha: 0.3,
        }
    }

    /// Validates the thresholds.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] (wrapped) if the rates
    /// are not ordered `0 ≤ degrade ≤ shed` or `ema_alpha` leaves
    /// `(0, 1]`.
    pub fn validate(&self) -> Result<()> {
        if !(0.0..=1.0).contains(&self.degrade_violation_rate)
            || !(0.0..=1.0).contains(&self.shed_violation_rate)
            || self.degrade_violation_rate > self.shed_violation_rate
        {
            return Err(TensorError::InvalidArgument(
                "violation rates must satisfy 0 ≤ degrade ≤ shed ≤ 1".into(),
            )
            .into());
        }
        if !(self.ema_alpha > 0.0 && self.ema_alpha <= 1.0) {
            return Err(TensorError::InvalidArgument("ema_alpha must be in (0, 1]".into()).into());
        }
        Ok(())
    }
}

/// The serving loop's view of deployment health.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthState {
    /// Violation EMA below the degrade threshold; full service.
    Healthy,
    /// Elevated violation EMA or demoted layers: still serving (engines
    /// absorb the damage via the ladder / digital fallback), surfaced in
    /// telemetry.
    Degraded,
    /// Admission closed: new submissions are rejected with
    /// [`ServeError::Shed`](crate::ServeError::Shed).
    Shedding,
}

/// EMA tracker driving [`HealthState`]. Deterministic: state depends
/// only on the sequence of observed batch stats.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthTracker {
    ema: f64,
    state: HealthState,
}

impl HealthTracker {
    /// A fresh tracker: healthy, zero violation history.
    pub fn new() -> Self {
        Self {
            ema: 0.0,
            state: HealthState::Healthy,
        }
    }

    /// Current state.
    pub fn state(&self) -> HealthState {
        self.state
    }

    /// Current violation-rate EMA.
    pub fn violation_ema(&self) -> f64 {
        self.ema
    }

    /// Folds one batch's guard outcome in and returns the new state.
    /// Unguarded batches (zero checks) observe a zero rate, so the EMA
    /// decays back toward healthy.
    pub fn observe(
        &mut self,
        policy: &HealthPolicy,
        stats: &ExecutionStats,
        degraded_layers: u64,
    ) -> HealthState {
        let rate = if stats.guard.checks == 0 {
            0.0
        } else {
            stats.guard.violations as f64 / stats.guard.checks as f64
        };
        self.ema += policy.ema_alpha * (rate - self.ema);
        self.state = if self.ema > policy.shed_violation_rate
            || degraded_layers >= policy.shed_degraded_layers
        {
            HealthState::Shedding
        } else if self.ema > policy.degrade_violation_rate || degraded_layers > 0 {
            HealthState::Degraded
        } else {
            HealthState::Healthy
        };
        self.state
    }
}

impl Default for HealthTracker {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use membit_xbar::GuardStats;

    fn stats(checks: u64, violations: u64) -> ExecutionStats {
        ExecutionStats {
            guard: GuardStats {
                checks,
                violations,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn policy_validation() {
        assert!(HealthPolicy::standard().validate().is_ok());
        let mut p = HealthPolicy::standard();
        p.degrade_violation_rate = 0.5;
        p.shed_violation_rate = 0.1;
        assert!(p.validate().is_err());
        let mut p = HealthPolicy::standard();
        p.ema_alpha = 0.0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn violation_storm_degrades_then_sheds_then_recovers() {
        let policy = HealthPolicy::standard();
        let mut t = HealthTracker::new();
        assert_eq!(t.observe(&policy, &stats(100, 0), 0), HealthState::Healthy);
        // sustained 50% violation rate walks the EMA over both thresholds
        let mut saw_degraded = false;
        let mut state = HealthState::Healthy;
        for _ in 0..20 {
            state = t.observe(&policy, &stats(100, 50), 0);
            if state == HealthState::Degraded {
                saw_degraded = true;
            }
            if state == HealthState::Shedding {
                break;
            }
        }
        assert!(saw_degraded, "must pass through Degraded on the way up");
        assert_eq!(state, HealthState::Shedding);
        // clean batches decay the EMA back below both thresholds
        for _ in 0..40 {
            state = t.observe(&policy, &stats(100, 0), 0);
        }
        assert_eq!(state, HealthState::Healthy);
    }

    #[test]
    fn demoted_layers_force_the_state() {
        let policy = HealthPolicy::standard();
        let mut t = HealthTracker::new();
        assert_eq!(t.observe(&policy, &stats(100, 0), 1), HealthState::Degraded);
        assert_eq!(
            t.observe(&policy, &stats(100, 0), policy.shed_degraded_layers),
            HealthState::Shedding
        );
    }

    #[test]
    fn unguarded_batches_decay_toward_healthy() {
        let policy = HealthPolicy::standard();
        let mut t = HealthTracker::new();
        for _ in 0..10 {
            t.observe(&policy, &stats(10, 10), 0);
        }
        assert_eq!(t.state(), HealthState::Shedding);
        for _ in 0..40 {
            t.observe(&policy, &stats(0, 0), 0);
        }
        assert_eq!(t.state(), HealthState::Healthy);
    }
}
