//! `membit-serve` — fault-tolerant deterministic batched inference
//! serving for binary memristive crossbar models.
//!
//! The crate fronts a deployed crossbar model ([`DeviceVgg`] or a
//! single [`LinearServeModel`] layer) with a production-shaped serving
//! loop:
//!
//! - **Bounded admission.** A fixed-capacity queue with typed
//!   backpressure — [`ServeError::QueueFull`], [`ServeError::Shed`],
//!   [`ServeError::DeadlineExceeded`] — so overload is always visible
//!   to the caller, never a silent drop.
//! - **Dynamic batching.** Waiting requests are packed into batches
//!   aligned to the engine's sample-block partitioning
//!   ([`batch_quota`]), amortising pulse streaming across requests.
//! - **Deadlines and retries.** Each request carries a virtual-time
//!   deadline; transient guard failures are retried with exponential
//!   backoff ([`RetryPolicy`]) *above* the engine's own guard ladder
//!   (retry → refresh → remap → digital fallback).
//! - **Health-aware degradation.** A guard-violation EMA plus the
//!   deployment's degraded-layer count drive a
//!   Healthy → Degraded → Shedding state machine ([`HealthTracker`])
//!   that sheds load before the hardware drowns.
//! - **Deterministic replay.** Every admission, chaos injection,
//!   expiry, and batch composition is recorded in an append-only
//!   [`RequestLog`]; [`replay`] re-executes it against a fresh
//!   deployment and reproduces every response **bitwise**, at any
//!   engine thread count.
//!
//! Three drivers share the same core [`Executor`]: the threaded
//! [`Server`] for live concurrent clients, the discrete-event
//! [`simulate`] loop for load sweeps in virtual time, and [`replay`]
//! for forensic reproduction.
//!
//! # Quickstart
//!
//! ```
//! use membit_serve::{simulate, ArrivalEvent, ArrivalKind, ServeConfig};
//! use membit_serve::LinearServeModel;
//! use membit_tensor::{Rng, Tensor};
//! use membit_xbar::{GuardPolicy, XbarConfig};
//!
//! let w = Tensor::from_fn(&[2, 3], |i| if i % 2 == 0 { 1.0 } else { -1.0 });
//! let cfg = XbarConfig::functional(0.02).with_guard(GuardPolicy::standard());
//! let model = LinearServeModel::program(&w, &cfg, 9, 4, &mut Rng::from_seed(1)).unwrap();
//!
//! let schedule: Vec<ArrivalEvent> = (0..4)
//!     .map(|i| ArrivalEvent {
//!         at_ns: i as u64 * 1_000,
//!         kind: ArrivalKind::Request { input: vec![0.5, -0.5, 1.0], deadline_ns: None },
//!     })
//!     .collect();
//! let report = simulate(model, ServeConfig::standard(7), &schedule).unwrap();
//! assert_eq!(report.stats.completed, 4);
//! assert!(report.stats.accounted());
//! ```
//!
//! [`DeviceVgg`]: membit_core::DeviceVgg

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod error;
pub mod executor;
pub mod health;
pub mod log;
pub mod model;
pub mod server;
pub mod sim;

pub use config::{RetryPolicy, ServeConfig};
pub use error::ServeError;
pub use executor::{admit_check, batch_quota, Executor, Pending, Response, ServeStats};
pub use health::{HealthPolicy, HealthState, HealthTracker};
pub use log::{replay, serve_rng, LogEvent, RequestLog};
pub use model::{LinearServeModel, ServeModel};
pub use server::{Handle, ServeReport, Server};
pub use sim::{simulate, ArrivalEvent, ArrivalKind, SimOutcome, SimReport};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ServeError>;
