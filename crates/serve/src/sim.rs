//! Discrete-event load simulation over the serving core.
//!
//! [`simulate`] drives an [`Executor`] through a timed arrival schedule
//! entirely in virtual time: requests arrive at their scheduled
//! timestamps, batches advance the clock by the energy model's latency
//! accounting, and admission control sees exactly the queue depth a
//! live server would at that virtual instant. Because no wall clock is
//! involved, a simulation is a pure function of `(model, config,
//! schedule)` — the offered-load sweeps of `bench_serve` and the queue
//! invariant proptests both run on it.

use std::collections::VecDeque;

use crate::config::ServeConfig;
use crate::executor::{admit_check, batch_quota, Executor, Pending, Response, ServeStats};
use crate::log::RequestLog;
use crate::model::ServeModel;
use crate::{Result, ServeError};

/// What arrives at a scheduled instant.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalKind {
    /// A client request with a flattened payload and optional deadline
    /// override (virtual ns).
    Request {
        /// Flattened input sample.
        input: Vec<f32>,
        /// Deadline budget; `None` uses the config default.
        deadline_ns: Option<u64>,
    },
    /// A chaos injection at the given per-cell upset rate.
    Chaos {
        /// Per-cell upset rate.
        rate: f32,
    },
}

/// One scheduled arrival.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalEvent {
    /// Virtual arrival time (ns); the schedule must be non-decreasing.
    pub at_ns: u64,
    /// What arrives.
    pub kind: ArrivalKind,
}

/// Outcome of one scheduled request (chaos events produce no outcome).
#[derive(Debug, Clone, PartialEq)]
pub struct SimOutcome {
    /// Position in the input schedule.
    pub index: usize,
    /// Assigned request id, if the request passed admission.
    pub id: Option<u64>,
    /// The response, or the typed rejection/failure.
    pub result: Result<Response>,
}

/// Final state of a simulation.
pub struct SimReport<M> {
    /// The model after serving.
    pub model: M,
    /// The append-only request log (replayable).
    pub log: RequestLog,
    /// Aggregate counters; `stats.accounted()` holds.
    pub stats: ServeStats,
    /// Per-scheduled-request outcomes, in schedule order.
    pub outcomes: Vec<SimOutcome>,
}

enum SimWork {
    Request(Pending, usize),
    Chaos { rate: f32 },
}

/// Runs `model` through `schedule` under `config`, entirely in virtual
/// time.
///
/// # Errors
///
/// Returns a `BadRequest` for an unsorted schedule and propagates
/// configuration errors; per-request failures land in the outcomes, not
/// here.
pub fn simulate<M: ServeModel>(
    model: M,
    config: ServeConfig,
    schedule: &[ArrivalEvent],
) -> Result<SimReport<M>> {
    if schedule.windows(2).any(|w| w[0].at_ns > w[1].at_ns) {
        return Err(ServeError::BadRequest(
            "arrival schedule must be sorted by at_ns".into(),
        ));
    }
    let capacity = config.queue_capacity;
    let max_batch = config.max_batch;
    let block_align = config.block_align;
    let default_deadline = config.default_deadline_ns;
    let mut executor = Executor::new(model, config)?;
    let mut queue: VecDeque<SimWork> = VecDeque::new();
    let mut depth = 0usize;
    let mut outcomes: Vec<SimOutcome> = Vec::new();
    let mut next = 0usize;
    loop {
        // ingest every arrival due at the current virtual time
        while next < schedule.len() && schedule[next].at_ns <= executor.clock_ns() {
            let event = &schedule[next];
            match &event.kind {
                ArrivalKind::Chaos { rate } => {
                    queue.push_back(SimWork::Chaos { rate: *rate });
                }
                ArrivalKind::Request { input, deadline_ns } => {
                    match admit_check(depth, capacity, executor.health_state()) {
                        Err(e) => {
                            executor.note_rejection(&e);
                            outcomes.push(SimOutcome {
                                index: next,
                                id: None,
                                result: Err(e),
                            });
                        }
                        Ok(()) => {
                            let pending = Pending {
                                id: executor.stats().admitted,
                                input: input.clone(),
                                arrival_ns: event.at_ns,
                                deadline_ns: deadline_ns.unwrap_or(default_deadline),
                            };
                            match executor.register(&pending) {
                                Err(e) => outcomes.push(SimOutcome {
                                    index: next,
                                    id: None,
                                    result: Err(e),
                                }),
                                Ok(()) => {
                                    queue.push_back(SimWork::Request(pending, next));
                                    depth += 1;
                                    executor.note_queue_depth(depth);
                                }
                            }
                        }
                    }
                }
            }
            next += 1;
        }
        if !queue.is_empty() {
            // apply leading chaos, then execute one aligned batch
            while let Some(SimWork::Chaos { .. }) = queue.front() {
                if let Some(SimWork::Chaos { rate }) = queue.pop_front() {
                    let _ = executor.apply_chaos(rate); // counted in stats
                }
            }
            let run = queue
                .iter()
                .take_while(|w| matches!(w, SimWork::Request(..)))
                .count();
            if run > 0 {
                let take = batch_quota(run, max_batch, block_align);
                let mut batch = Vec::with_capacity(take);
                let mut indices = Vec::with_capacity(take);
                for _ in 0..take {
                    if let Some(SimWork::Request(p, idx)) = queue.pop_front() {
                        batch.push(p);
                        indices.push(idx);
                    }
                }
                depth -= batch.len();
                for ((req, result), index) in executor.serve(batch).into_iter().zip(indices) {
                    outcomes.push(SimOutcome {
                        index,
                        id: Some(req.id),
                        result,
                    });
                }
            }
            continue;
        }
        if next < schedule.len() {
            executor.advance_clock_to(schedule[next].at_ns);
            continue;
        }
        break;
    }
    outcomes.sort_by_key(|o| o.index);
    let (model, log, stats) = executor.into_report();
    Ok(SimReport {
        model,
        log,
        stats,
        outcomes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::LinearServeModel;
    use membit_tensor::{Rng, Tensor};
    use membit_xbar::{GuardPolicy, XbarConfig};

    fn model(seed: u64) -> LinearServeModel {
        let w = Tensor::from_fn(&[2, 3], |i| if i % 2 == 0 { 1.0 } else { -1.0 });
        let cfg = XbarConfig::functional(0.02).with_guard(GuardPolicy::standard());
        LinearServeModel::program(&w, &cfg, 9, 4, &mut Rng::from_seed(seed)).unwrap()
    }

    fn request(at_ns: u64, i: usize) -> ArrivalEvent {
        ArrivalEvent {
            at_ns,
            kind: ArrivalKind::Request {
                input: (0..3)
                    .map(|j| (((i * 3 + j) % 5) as f32 / 2.0 - 1.0).clamp(-1.0, 1.0))
                    .collect(),
                deadline_ns: None,
            },
        }
    }

    #[test]
    fn spread_arrivals_all_complete() {
        let schedule: Vec<ArrivalEvent> = (0..8).map(|i| request(i as u64 * 10_000, i)).collect();
        let report = simulate(model(1), ServeConfig::standard(1), &schedule).unwrap();
        assert!(report.stats.accounted());
        assert_eq!(report.stats.completed, 8);
        assert_eq!(report.outcomes.len(), 8);
        assert!(report.outcomes.iter().all(|o| o.result.is_ok()));
        // spread arrivals leave the clock at least at the last arrival
        assert!(report.stats.max_queue_depth >= 1);
    }

    #[test]
    fn burst_beyond_capacity_is_rejected_typed() {
        let mut cfg = ServeConfig::standard(2);
        cfg.queue_capacity = 4;
        let schedule: Vec<ArrivalEvent> = (0..10).map(|i| request(0, i)).collect();
        let report = simulate(model(2), cfg, &schedule).unwrap();
        let full = report
            .outcomes
            .iter()
            .filter(|o| matches!(o.result, Err(ServeError::QueueFull { .. })))
            .count();
        assert_eq!(full, 6, "4 admitted, 6 bounced");
        assert_eq!(report.stats.rejected_queue_full, 6);
        assert_eq!(report.stats.completed, 4);
        assert!(report.stats.accounted());
    }

    #[test]
    fn unsorted_schedule_is_rejected() {
        let schedule = vec![request(100, 0), request(0, 1)];
        assert!(matches!(
            simulate(model(3), ServeConfig::standard(3), &schedule),
            Err(ServeError::BadRequest(_))
        ));
    }

    #[test]
    fn chaos_between_requests_is_applied_in_order() {
        let schedule = vec![
            request(0, 0),
            ArrivalEvent {
                at_ns: 0,
                kind: ArrivalKind::Chaos { rate: 0.25 },
            },
            request(0, 1),
        ];
        let report = simulate(model(4), ServeConfig::standard(4), &schedule).unwrap();
        assert_eq!(report.stats.chaos_events, 1);
        assert!(report.stats.chaos_upsets > 0);
        assert_eq!(report.stats.completed, 2);
    }

    #[test]
    fn tight_deadlines_expire_under_backlog() {
        let mut cfg = ServeConfig::standard(5);
        cfg.max_batch = 1;
        cfg.block_align = 1;
        // all arrive at t=0 with a budget shorter than one batch latency:
        // the first request is served (expiry is checked at pickup, when
        // the clock still reads 0), the rest expire as the clock passes
        // their budget
        let schedule: Vec<ArrivalEvent> = (0..6)
            .map(|_| ArrivalEvent {
                at_ns: 0,
                kind: ArrivalKind::Request {
                    input: vec![0.5, -0.5, 1.0],
                    deadline_ns: Some(1),
                },
            })
            .chain(std::iter::once(request(1_000_000, 6)))
            .collect();
        let report = simulate(model(5), cfg, &schedule).unwrap();
        assert!(report.stats.expired > 0, "{:?}", report.stats);
        assert!(report.stats.accounted());
        let expired = report
            .outcomes
            .iter()
            .filter(|o| matches!(o.result, Err(ServeError::DeadlineExceeded { .. })))
            .count();
        assert_eq!(expired as u64, report.stats.expired);
    }
}
