//! The model contract the serving loop drives, and its implementations.
//!
//! A [`ServeModel`] is anything that turns a batch of samples into a
//! batch of outputs through crossbar hardware, deterministically in the
//! RNG it is handed: given the same call sequence (forwards + upset
//! injections) against the same deployed state and RNG stream, outputs
//! are bitwise identical at any engine thread count. That contract —
//! inherited from the engine's keyed noise substreams — is what makes
//! serve-level replay exact.

use membit_core::DeviceVgg;
use membit_encoding::pla::PlaThermometer;
use membit_encoding::BitEncoder;
use membit_tensor::{Rng, Tensor, TensorError};
use membit_xbar::{CellSide, CrossbarLinear, ExecutionStats, XbarConfig};

use crate::Result;

/// A crossbar-backed model the serving loop can drive.
pub trait ServeModel {
    /// Shape of one input sample (no batch axis).
    fn input_shape(&self) -> Vec<usize>;

    /// Length of one output row.
    fn output_dim(&self) -> usize;

    /// Runs one batch shaped `[N, ...input_shape]`, returning outputs
    /// `[N, output_dim]` and the batch's hardware event counts.
    ///
    /// # Errors
    ///
    /// Propagates engine errors.
    fn forward_batch(&mut self, batch: &Tensor, rng: &mut Rng) -> Result<(Tensor, ExecutionStats)>;

    /// Injects transient stuck-at upsets at per-cell `rate` across the
    /// deployment (the chaos hook), returning the number injected.
    ///
    /// # Errors
    ///
    /// Propagates injection errors.
    fn inject_upsets(&mut self, rate: f32, rng: &mut Rng) -> Result<u64>;

    /// Layers the guard ladder has demoted to the digital fallback.
    fn degraded_layers(&self) -> u64;

    /// Rebounds the engine thread fan-out (wall clock only — outputs
    /// are bitwise independent of it).
    ///
    /// # Errors
    ///
    /// Rejects a zero thread count.
    fn set_max_threads(&mut self, max_threads: usize) -> Result<()>;
}

impl ServeModel for DeviceVgg {
    fn input_shape(&self) -> Vec<usize> {
        self.input_shape().to_vec()
    }

    fn output_dim(&self) -> usize {
        self.num_classes()
    }

    fn forward_batch(&mut self, batch: &Tensor, rng: &mut Rng) -> Result<(Tensor, ExecutionStats)> {
        Ok(self.forward(batch, rng)?)
    }

    fn inject_upsets(&mut self, rate: f32, rng: &mut Rng) -> Result<u64> {
        Ok(self.inject_faults(rate, rng)?)
    }

    fn degraded_layers(&self) -> u64 {
        self.degraded_layers()
    }

    fn set_max_threads(&mut self, max_threads: usize) -> Result<()> {
        Ok(DeviceVgg::set_max_threads(self, max_threads)?)
    }
}

/// A single guarded [`CrossbarLinear`] behind a PLA thermometer encoder —
/// the cheap model for serve tests and queue-level benchmarks, with the
/// exact execution semantics (guard ladder, keyed substreams, fallback)
/// of a full deployment layer.
pub struct LinearServeModel {
    engine: CrossbarLinear,
    encoder: PlaThermometer,
    in_features: usize,
    out_features: usize,
}

impl LinearServeModel {
    /// Programs `weights` (`[out, in]`) onto a crossbar under `config`
    /// and encodes inputs with an `act_levels`-level, `pulses`-pulse PLA
    /// thermometer code.
    ///
    /// # Errors
    ///
    /// Propagates programming/encoder construction errors.
    pub fn program(
        weights: &Tensor,
        config: &XbarConfig,
        act_levels: usize,
        pulses: usize,
        rng: &mut Rng,
    ) -> Result<Self> {
        let shape = weights.shape();
        if shape.len() != 2 {
            return Err(TensorError::InvalidArgument(
                "LinearServeModel needs a [out, in] weight matrix".into(),
            )
            .into());
        }
        Ok(Self {
            engine: CrossbarLinear::program(weights, config, rng)?,
            encoder: PlaThermometer::new(act_levels, pulses)?,
            in_features: shape[1],
            out_features: shape[0],
        })
    }

    /// The underlying engine (for fault surgery in tests).
    pub fn engine_mut(&mut self) -> &mut CrossbarLinear {
        &mut self.engine
    }
}

impl ServeModel for LinearServeModel {
    fn input_shape(&self) -> Vec<usize> {
        vec![self.in_features]
    }

    fn output_dim(&self) -> usize {
        self.out_features
    }

    fn forward_batch(&mut self, batch: &Tensor, rng: &mut Rng) -> Result<(Tensor, ExecutionStats)> {
        let train = self.encoder.encode_tensor(batch)?;
        Ok(self.engine.execute_guarded(&train, rng)?)
    }

    fn inject_upsets(&mut self, rate: f32, rng: &mut Rng) -> Result<u64> {
        let (out, inp) = self.engine.dims();
        let count = ((out * inp) as f32 * rate).round() as usize;
        for _ in 0..count {
            let row = rng.below(inp);
            let col = rng.below(out);
            let side = if rng.coin(0.5) {
                CellSide::Pos
            } else {
                CellSide::Neg
            };
            let high = rng.coin(0.5);
            self.engine.upset_cell(row, col, side, high)?;
        }
        Ok(count as u64)
    }

    fn degraded_layers(&self) -> u64 {
        u64::from(self.engine.is_degraded())
    }

    fn set_max_threads(&mut self, max_threads: usize) -> Result<()> {
        Ok(self.engine.set_max_threads(max_threads)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use membit_xbar::GuardPolicy;

    fn model(seed: u64) -> LinearServeModel {
        let w = Tensor::from_fn(&[3, 4], |i| if i % 2 == 0 { 1.0 } else { -1.0 });
        let cfg = XbarConfig::functional(0.02).with_guard(GuardPolicy::standard());
        LinearServeModel::program(&w, &cfg, 9, 6, &mut Rng::from_seed(seed)).unwrap()
    }

    #[test]
    fn linear_model_serves_batches() {
        let mut m = model(3);
        assert_eq!(m.input_shape(), vec![4]);
        assert_eq!(m.output_dim(), 3);
        let x = Tensor::from_fn(&[2, 4], |i| (i as f32 / 4.0 - 1.0).clamp(-1.0, 1.0));
        let (y, stats) = m.forward_batch(&x, &mut Rng::from_seed(9)).unwrap();
        assert_eq!(y.shape(), &[2, 3]);
        assert!(stats.pulses > 0);
        assert!(stats.guard.checks > 0);
    }

    #[test]
    fn upsets_are_injected_and_counted() {
        let mut m = model(5);
        let n = m.inject_upsets(0.5, &mut Rng::from_seed(11)).unwrap();
        assert!(n > 0);
        assert_eq!(m.degraded_layers(), 0);
    }

    #[test]
    fn forward_is_deterministic_across_thread_counts() {
        let x = Tensor::from_fn(&[4, 4], |i| ((i % 5) as f32 / 2.0 - 1.0).clamp(-1.0, 1.0));
        let mut outs = Vec::new();
        for threads in [1usize, 4] {
            let mut m = model(7);
            m.set_max_threads(threads).unwrap();
            let (y, _) = m.forward_batch(&x, &mut Rng::from_seed(13)).unwrap();
            outs.push(y);
        }
        assert_eq!(outs[0].as_slice(), outs[1].as_slice());
    }
}
