//! Serving-loop configuration: queue bounds, batching, deadlines,
//! retries, and health thresholds.

use membit_tensor::TensorError;
use membit_xbar::EnergyModel;

use crate::health::HealthPolicy;
use crate::Result;

/// Serving-level retry policy, layered *above* the engine's guard
/// escalation ladder: a batch whose execution returns an error (not a
/// guard violation — those the ladder already absorbed) is re-executed
/// up to `max_retries` times, each attempt charging an exponentially
/// growing backoff to the virtual clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Re-execution attempts after the first failure.
    pub max_retries: u32,
    /// Virtual-time penalty charged before the first retry (ns).
    pub backoff_ns: u64,
    /// Multiplier applied to the backoff per subsequent retry.
    pub backoff_factor: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 2,
            backoff_ns: 1_000,
            backoff_factor: 2,
        }
    }
}

impl RetryPolicy {
    /// Backoff charged before retry `attempt` (1-based), in ns.
    pub fn backoff_for(&self, attempt: u32) -> u64 {
        let factor = u64::from(self.backoff_factor).max(1);
        self.backoff_ns
            .saturating_mul(factor.saturating_pow(attempt.saturating_sub(1)))
    }
}

/// Configuration of one serving deployment.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Bounded queue capacity; submissions beyond it are rejected with
    /// [`ServeError::QueueFull`](crate::ServeError::QueueFull).
    pub queue_capacity: usize,
    /// Maximum requests packed into one engine batch.
    pub max_batch: usize,
    /// Sample-block granularity of the engine's parallel partitioning
    /// (see `ExecOptions::samples_per_thread`). When more requests wait
    /// than fit a batch, the batch is rounded down to a multiple of this
    /// so full blocks land on worker threads; a final partial batch is
    /// always allowed so no request waits forever.
    pub block_align: usize,
    /// Deadline budget granted to a request on admission (virtual ns).
    pub default_deadline_ns: u64,
    /// Serving-level retry/backoff above the guard ladder.
    pub retry: RetryPolicy,
    /// Health thresholds for degradation and shedding.
    pub health: HealthPolicy,
    /// First-order latency/energy model that drives the virtual clock.
    pub energy: EnergyModel,
    /// Seed of the serving RNG (chaos injections + model noise). With
    /// the request log this fully determines every response bit.
    pub seed: u64,
}

impl ServeConfig {
    /// A small-deployment default: capacity 64, batches of 8 aligned to
    /// 2-sample blocks, 1 ms virtual deadline.
    pub fn standard(seed: u64) -> Self {
        Self {
            queue_capacity: 64,
            max_batch: 8,
            block_align: 2,
            default_deadline_ns: 1_000_000,
            retry: RetryPolicy::default(),
            health: HealthPolicy::standard(),
            energy: EnergyModel::representative(),
            seed,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] (wrapped) for a zero
    /// queue capacity, batch bound, block alignment, or deadline, and
    /// propagates [`HealthPolicy::validate`].
    pub fn validate(&self) -> Result<()> {
        if self.queue_capacity == 0 {
            return Err(TensorError::InvalidArgument("queue_capacity must be ≥ 1".into()).into());
        }
        if self.max_batch == 0 || self.block_align == 0 {
            return Err(TensorError::InvalidArgument(
                "max_batch and block_align must be ≥ 1".into(),
            )
            .into());
        }
        if self.default_deadline_ns == 0 {
            return Err(
                TensorError::InvalidArgument("default_deadline_ns must be ≥ 1".into()).into(),
            );
        }
        self.health.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_validates() {
        assert!(ServeConfig::standard(7).validate().is_ok());
        let mut c = ServeConfig::standard(7);
        c.queue_capacity = 0;
        assert!(c.validate().is_err());
        let mut c = ServeConfig::standard(7);
        c.max_batch = 0;
        assert!(c.validate().is_err());
        let mut c = ServeConfig::standard(7);
        c.default_deadline_ns = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn backoff_grows_exponentially() {
        let r = RetryPolicy {
            max_retries: 3,
            backoff_ns: 100,
            backoff_factor: 2,
        };
        assert_eq!(r.backoff_for(1), 100);
        assert_eq!(r.backoff_for(2), 200);
        assert_eq!(r.backoff_for(3), 400);
        // factor 0 is clamped to 1 instead of zeroing the penalty
        let flat = RetryPolicy {
            backoff_factor: 0,
            ..r
        };
        assert_eq!(flat.backoff_for(3), 100);
    }
}
