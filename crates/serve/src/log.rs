//! The append-only request log and deterministic replay.
//!
//! The serving loop records every event that influences model state or
//! RNG consumption, in execution order: admissions (with the full
//! payload), chaos injections, deadline expiries, and the composition of
//! every executed batch. Together with the serving seed this is a
//! complete causal record — [`replay`] re-executes it against a freshly
//! deployed model and reproduces every response **bitwise**, at any
//! engine thread count, because the engine's noise is keyed per
//! `(pulse, sample, tile)` and the serve RNG is consumed only by
//! forwards and chaos injections, never by queueing or scheduling.

use membit_tensor::{Rng, RngStream, Tensor};

use crate::config::RetryPolicy;
use crate::executor::run_batch;
use crate::model::ServeModel;
use crate::{Result, ServeError};

/// Stream tag separating the serving RNG from training/deploy streams.
const SERVE_STREAM_TAG: u64 = 0x5E12_7E00;

/// The serving RNG for `seed`: live serving and replay both start here.
pub fn serve_rng(seed: u64) -> Rng {
    Rng::from_seed(seed).stream(RngStream::Custom(SERVE_STREAM_TAG))
}

/// One recorded serving event.
#[derive(Debug, Clone, PartialEq)]
pub enum LogEvent {
    /// A request passed admission control.
    Admit {
        /// Request id (dense, in admission order).
        id: u64,
        /// Virtual arrival time (ns).
        arrival_ns: u64,
        /// Deadline budget (ns).
        deadline_ns: u64,
        /// Flattened input sample.
        input: Vec<f32>,
    },
    /// A chaos injection ([`ServeModel::inject_upsets`]) was applied.
    Chaos {
        /// Per-cell upset rate.
        rate: f32,
    },
    /// A request expired before any batch picked it up. Expiry consumes
    /// no RNG; the event documents the typed rejection (no silent drop).
    Expire {
        /// The expired request.
        id: u64,
        /// Virtual time of detection (ns).
        now_ns: u64,
    },
    /// A batch executed with exactly these requests, in this row order.
    Batch {
        /// Member request ids (log-order = row order).
        ids: Vec<u64>,
    },
}

/// Append-only record of one serving session.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RequestLog {
    events: Vec<LogEvent>,
}

impl RequestLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event.
    pub fn push(&mut self, event: LogEvent) {
        self.events.push(event);
    }

    /// All events in execution order.
    pub fn events(&self) -> &[LogEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Re-executes a request log against a freshly deployed `model`,
/// returning `(id, output_row)` for every batched request in execution
/// order. With the same `seed` and `retry` policy the rows are bitwise
/// identical to the live responses, at any engine thread count.
///
/// # Errors
///
/// Returns [`ServeError::BadRequest`] if the log references an id with
/// no recorded admission, and propagates engine errors.
pub fn replay<M: ServeModel>(
    model: &mut M,
    seed: u64,
    retry: &RetryPolicy,
    log: &RequestLog,
) -> Result<Vec<(u64, Vec<f32>)>> {
    let mut rng = serve_rng(seed);
    let shape = model.input_shape();
    let sample_len: usize = shape.iter().product();
    let out_dim = model.output_dim();
    // admitted payloads by id; Vec-indexed because ids are dense
    let mut inputs: Vec<Option<Vec<f32>>> = Vec::new();
    let mut responses = Vec::new();
    for event in log.events() {
        match event {
            LogEvent::Admit { id, input, .. } => {
                let idx = *id as usize;
                if inputs.len() <= idx {
                    inputs.resize(idx + 1, None);
                }
                inputs[idx] = Some(input.clone());
            }
            LogEvent::Chaos { rate } => {
                model.inject_upsets(*rate, &mut rng)?;
            }
            LogEvent::Expire { .. } => {}
            LogEvent::Batch { ids } => {
                let mut flat = Vec::with_capacity(ids.len() * sample_len);
                for id in ids {
                    let input = inputs
                        .get(*id as usize)
                        .and_then(Option::as_ref)
                        .ok_or_else(|| {
                            ServeError::BadRequest(format!("batch references unadmitted id {id}"))
                        })?;
                    flat.extend_from_slice(input);
                }
                let mut batch_shape = vec![ids.len()];
                batch_shape.extend_from_slice(&shape);
                let batch = Tensor::from_vec(flat, &batch_shape)?;
                let (y, _, _) = run_batch(model, retry, &batch, &mut rng)?;
                let rows = y.as_slice();
                for (row, id) in ids.iter().enumerate() {
                    responses.push((*id, rows[row * out_dim..(row + 1) * out_dim].to_vec()));
                }
            }
        }
    }
    Ok(responses)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_is_append_only_and_ordered() {
        let mut log = RequestLog::new();
        assert!(log.is_empty());
        log.push(LogEvent::Admit {
            id: 0,
            arrival_ns: 0,
            deadline_ns: 100,
            input: vec![1.0],
        });
        log.push(LogEvent::Chaos { rate: 0.1 });
        log.push(LogEvent::Batch { ids: vec![0] });
        assert_eq!(log.len(), 3);
        assert!(matches!(log.events()[1], LogEvent::Chaos { .. }));
    }

    #[test]
    fn replay_rejects_unadmitted_ids() {
        use crate::model::LinearServeModel;
        use membit_xbar::XbarConfig;
        let w = Tensor::from_fn(&[2, 3], |i| if i % 2 == 0 { 1.0 } else { -1.0 });
        let mut m =
            LinearServeModel::program(&w, &XbarConfig::ideal(), 9, 4, &mut Rng::from_seed(1))
                .unwrap();
        let mut log = RequestLog::new();
        log.push(LogEvent::Batch { ids: vec![5] });
        let err = replay(&mut m, 7, &RetryPolicy::default(), &log).unwrap_err();
        assert!(matches!(err, ServeError::BadRequest(_)));
    }
}
