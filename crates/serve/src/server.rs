//! The live, concurrent server: a bounded queue in front of a single
//! scheduler thread that owns the [`Executor`].
//!
//! Concurrency model: any number of client threads [`Server::submit`]
//! requests; exactly one scheduler thread admits, batches, and executes
//! them. All model state, RNG, and the request log live behind that
//! single thread, so scheduling races can only change *which requests
//! share a batch* — and batch composition is itself logged, making the
//! log + seed a complete causal record. Replay therefore reproduces the
//! live responses bitwise even though the live run was concurrent (see
//! [`crate::replay`]).
//!
//! Backpressure is typed and synchronous: a full queue or a shedding
//! deployment rejects at [`Server::submit`] with
//! [`ServeError::QueueFull`] / [`ServeError::Shed`]; nothing is ever
//! dropped after admission — every admitted request's [`Handle`]
//! resolves with a response or a typed error, including across
//! [`Server::kill`].

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

use membit_core::TrainError;
use membit_tensor::TensorError;

use crate::config::ServeConfig;
use crate::executor::{admit_check, batch_quota, Executor, Pending, Response, ServeStats};
use crate::health::HealthState;
use crate::log::RequestLog;
use crate::model::ServeModel;
use crate::{Result, ServeError};

/// One-shot response slot a client blocks on.
struct Slot {
    cell: Mutex<Option<Result<Response>>>,
    cv: Condvar,
}

impl Slot {
    fn new() -> Self {
        Self {
            cell: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    fn fill(&self, outcome: Result<Response>) {
        let mut cell = lock_recover(&self.cell);
        *cell = Some(outcome);
        self.cv.notify_all();
    }
}

/// A submitted request's claim ticket.
pub struct Handle {
    id: u64,
    slot: Arc<Slot>,
}

impl Handle {
    /// The request id (dense, in submission order).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Blocks until the request resolves, returning the response or the
    /// typed rejection.
    ///
    /// # Errors
    ///
    /// Returns whatever the serving loop resolved the request with:
    /// [`ServeError::DeadlineExceeded`], [`ServeError::Closed`] (kill),
    /// or [`ServeError::Engine`].
    pub fn wait(self) -> Result<Response> {
        let mut cell = lock_recover(&self.slot.cell);
        loop {
            if let Some(outcome) = cell.take() {
                return outcome;
            }
            cell = match self.slot.cv.wait(cell) {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }
}

enum Work {
    Request(Pending, Arc<Slot>),
    Chaos { rate: f32 },
}

struct QueueState {
    queue: VecDeque<Work>,
    /// Request entries currently queued (chaos markers excluded).
    depth: usize,
    /// High-water mark of `depth`.
    max_depth: usize,
    open: bool,
    killed: bool,
    health: HealthState,
}

struct Shared {
    q: Mutex<QueueState>,
    cv: Condvar,
    /// Scheduler-published virtual clock (ns) for arrival stamping.
    clock_ns: AtomicU64,
    next_id: AtomicU64,
    rejected_queue_full: AtomicU64,
    rejected_shed: AtomicU64,
}

fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Final report of a serving session.
pub struct ServeReport<M> {
    /// The model, with whatever damage/repairs serving left on it.
    pub model: M,
    /// The append-only request log (feed to [`crate::replay`]).
    pub log: RequestLog,
    /// Aggregate counters; `stats.accounted()` holds.
    pub stats: ServeStats,
}

/// A fault-tolerant, deterministic batched inference server.
pub struct Server<M> {
    shared: Arc<Shared>,
    sample_len: usize,
    capacity: usize,
    default_deadline_ns: u64,
    worker: Option<JoinHandle<Executor<M>>>,
}

impl<M: ServeModel + Send + 'static> Server<M> {
    /// Starts serving `model` under `config` on a dedicated scheduler
    /// thread.
    ///
    /// # Errors
    ///
    /// Propagates [`ServeConfig::validate`].
    pub fn start(model: M, config: ServeConfig) -> Result<Self> {
        let executor = Executor::new(model, config)?;
        let sample_len = executor.input_shape().iter().product();
        let capacity = executor.config().queue_capacity;
        let max_batch = executor.config().max_batch;
        let block_align = executor.config().block_align;
        let default_deadline_ns = executor.config().default_deadline_ns;
        let shared = Arc::new(Shared {
            q: Mutex::new(QueueState {
                queue: VecDeque::new(),
                depth: 0,
                max_depth: 0,
                open: true,
                killed: false,
                health: HealthState::Healthy,
            }),
            cv: Condvar::new(),
            clock_ns: AtomicU64::new(0),
            next_id: AtomicU64::new(0),
            rejected_queue_full: AtomicU64::new(0),
            rejected_shed: AtomicU64::new(0),
        });
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::spawn(move || {
            scheduler_loop(executor, &worker_shared, max_batch, block_align)
        });
        Ok(Self {
            shared,
            sample_len,
            capacity,
            default_deadline_ns,
            worker: Some(worker),
        })
    }

    /// Submits one request (flattened sample, optional deadline
    /// override in virtual ns). Non-blocking: admission control answers
    /// immediately.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] for a wrong-sized payload,
    /// [`ServeError::QueueFull`] at capacity, [`ServeError::Shed`] while
    /// the deployment sheds load, [`ServeError::Closed`] after
    /// shutdown/kill.
    pub fn submit(&self, input: Vec<f32>, deadline_ns: Option<u64>) -> Result<Handle> {
        if input.len() != self.sample_len {
            return Err(ServeError::BadRequest(format!(
                "payload has {} values, model wants {}",
                input.len(),
                self.sample_len
            )));
        }
        let mut q = lock_recover(&self.shared.q);
        if !q.open {
            return Err(ServeError::Closed);
        }
        if let Err(e) = admit_check(q.depth, self.capacity, q.health) {
            match &e {
                ServeError::QueueFull { .. } => {
                    self.shared.rejected_queue_full.fetch_add(1, Ordering::Relaxed);
                }
                ServeError::Shed => {
                    self.shared.rejected_shed.fetch_add(1, Ordering::Relaxed);
                }
                _ => {}
            }
            return Err(e);
        }
        let id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
        let pending = Pending {
            id,
            input,
            arrival_ns: self.shared.clock_ns.load(Ordering::Relaxed),
            deadline_ns: deadline_ns.unwrap_or(self.default_deadline_ns),
        };
        let slot = Arc::new(Slot::new());
        let handle = Handle {
            id,
            slot: Arc::clone(&slot),
        };
        q.queue.push_back(Work::Request(pending, slot));
        q.depth += 1;
        q.max_depth = q.max_depth.max(q.depth);
        drop(q);
        self.shared.cv.notify_one();
        Ok(handle)
    }

    /// Enqueues a chaos injection ([`ServeModel::inject_upsets`] at
    /// `rate`) behind the currently queued requests — the mid-serving
    /// `upset_cell` fault hook. Chaos bypasses capacity (it occupies no
    /// request slot) but respects queue order, so live execution and
    /// replay agree on exactly which batches run on damaged arrays.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Closed`] after shutdown/kill.
    pub fn inject_chaos(&self, rate: f32) -> Result<()> {
        let mut q = lock_recover(&self.shared.q);
        if !q.open {
            return Err(ServeError::Closed);
        }
        q.queue.push_back(Work::Chaos { rate });
        drop(q);
        self.shared.cv.notify_one();
        Ok(())
    }

    /// Current health state as last published by the scheduler.
    pub fn health_state(&self) -> HealthState {
        lock_recover(&self.shared.q).health
    }

    /// Last published virtual clock (ns).
    pub fn clock_ns(&self) -> u64 {
        self.shared.clock_ns.load(Ordering::Relaxed)
    }

    /// Graceful shutdown: closes admission, drains every queued request
    /// and chaos event, then returns the final report.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Engine`] if the scheduler thread panicked.
    pub fn shutdown(mut self) -> Result<ServeReport<M>> {
        self.close(false);
        self.join()
    }

    /// Hard stop: closes admission and cancels everything still queued
    /// (owners receive [`ServeError::Closed`]); the batch in flight, if
    /// any, completes and its responses are delivered. Returns the final
    /// report — whose log replays to exactly the responses that were
    /// actually delivered.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Engine`] if the scheduler thread panicked.
    pub fn kill(mut self) -> Result<ServeReport<M>> {
        self.close(true);
        self.join()
    }

    fn close(&self, kill: bool) {
        let mut q = lock_recover(&self.shared.q);
        q.open = false;
        if kill {
            q.killed = true;
        }
        drop(q);
        self.shared.cv.notify_all();
    }

    fn join(&mut self) -> Result<ServeReport<M>> {
        let worker = self.worker.take().ok_or_else(|| {
            ServeError::Engine(TrainError::Tensor(TensorError::InvalidArgument(
                "server already joined".into(),
            )))
        })?;
        let executor = worker.join().map_err(|_| {
            ServeError::Engine(TrainError::Tensor(TensorError::InvalidArgument(
                "scheduler thread panicked".into(),
            )))
        })?;
        let (model, log, mut stats) = executor.into_report();
        stats.rejected_queue_full += self.shared.rejected_queue_full.load(Ordering::Relaxed);
        stats.rejected_shed += self.shared.rejected_shed.load(Ordering::Relaxed);
        Ok(ServeReport { model, log, stats })
    }
}

impl<M> Drop for Server<M> {
    fn drop(&mut self) {
        if self.worker.is_some() {
            // dropped without shutdown(): cancel queued work so no
            // client blocks forever, then detach-join the scheduler
            let mut q = lock_recover(&self.shared.q);
            q.open = false;
            q.killed = true;
            drop(q);
            self.shared.cv.notify_all();
            if let Some(worker) = self.worker.take() {
                let _ = worker.join();
            }
        }
    }
}

/// What the scheduler pulled from the queue in one pass.
enum Pulled {
    /// Serve these in order: chaos injections first, then one batch.
    Work {
        chaos: Vec<f32>,
        batch: Vec<(Pending, Arc<Slot>)>,
    },
    /// Kill: cancel everything still queued, then exit.
    Cancel(Vec<(Pending, Arc<Slot>)>),
    /// Drained and closed: exit.
    Exit,
}

fn pull(shared: &Shared, max_batch: usize, block_align: usize) -> (Pulled, usize) {
    let mut q = lock_recover(&shared.q);
    loop {
        if q.killed {
            let mut cancelled = Vec::new();
            while let Some(work) = q.queue.pop_front() {
                if let Work::Request(p, slot) = work {
                    cancelled.push((p, slot));
                }
            }
            q.depth = 0;
            return (Pulled::Cancel(cancelled), q.max_depth);
        }
        if q.queue.is_empty() {
            if !q.open {
                return (Pulled::Exit, q.max_depth);
            }
            q = match shared.cv.wait(q) {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            continue;
        }
        // pop leading chaos markers, then one aligned batch of requests
        let mut chaos = Vec::new();
        while matches!(q.queue.front(), Some(Work::Chaos { .. })) {
            if let Some(Work::Chaos { rate }) = q.queue.pop_front() {
                chaos.push(rate);
            }
        }
        let run = q
            .queue
            .iter()
            .take_while(|w| matches!(w, Work::Request(..)))
            .count();
        let take = if run == 0 {
            0
        } else {
            batch_quota(run, max_batch, block_align)
        };
        let mut batch = Vec::with_capacity(take);
        for _ in 0..take {
            if let Some(Work::Request(p, slot)) = q.queue.pop_front() {
                batch.push((p, slot));
            }
        }
        q.depth -= batch.len();
        return (Pulled::Work { chaos, batch }, q.max_depth);
    }
}

fn scheduler_loop<M: ServeModel>(
    mut executor: Executor<M>,
    shared: &Shared,
    max_batch: usize,
    block_align: usize,
) -> Executor<M> {
    loop {
        let (pulled, max_depth) = pull(shared, max_batch, block_align);
        executor.note_queue_depth(max_depth);
        match pulled {
            Pulled::Exit => return executor,
            Pulled::Cancel(requests) => {
                let pendings: Vec<Pending> = requests.iter().map(|(p, _)| p.clone()).collect();
                let outcomes = executor.cancel(pendings);
                for ((_, slot), (_, outcome)) in requests.into_iter().zip(outcomes) {
                    slot.fill(outcome);
                }
                return executor;
            }
            Pulled::Work { chaos, batch } => {
                for rate in chaos {
                    // failures are counted by the executor
                    // (stats.chaos_failures) without breaking the loop
                    let _ = executor.apply_chaos(rate);
                }
                if batch.is_empty() {
                    continue;
                }
                let mut slots = Vec::with_capacity(batch.len());
                let mut pendings = Vec::with_capacity(batch.len());
                for (p, slot) in batch {
                    // wrong-sized payloads were rejected at submit; a
                    // register failure here is still surfaced typed
                    match executor.register(&p) {
                        Ok(()) => {
                            slots.push((p.id, slot));
                            pendings.push(p);
                        }
                        Err(e) => slot.fill(Err(e)),
                    }
                }
                let outcomes = executor.serve(pendings);
                for (req, outcome) in outcomes {
                    if let Some(pos) = slots.iter().position(|(id, _)| *id == req.id) {
                        let (_, slot) = slots.swap_remove(pos);
                        slot.fill(outcome);
                    }
                }
                shared
                    .clock_ns
                    .store(executor.clock_ns(), Ordering::Relaxed);
                let state = executor.health_state();
                let mut q = lock_recover(&shared.q);
                q.health = state;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::LinearServeModel;
    use membit_tensor::{Rng, Tensor};
    use membit_xbar::{GuardPolicy, XbarConfig};

    fn model(seed: u64) -> LinearServeModel {
        let w = Tensor::from_fn(&[2, 3], |i| if i % 2 == 0 { 1.0 } else { -1.0 });
        let cfg = XbarConfig::functional(0.02).with_guard(GuardPolicy::standard());
        LinearServeModel::program(&w, &cfg, 9, 4, &mut Rng::from_seed(seed)).unwrap()
    }

    fn payload(i: usize) -> Vec<f32> {
        (0..3)
            .map(|j| (((i * 3 + j) % 5) as f32 / 2.0 - 1.0).clamp(-1.0, 1.0))
            .collect()
    }

    #[test]
    fn serves_and_shuts_down_clean() {
        let server = Server::start(model(1), ServeConfig::standard(1)).unwrap();
        let handles: Vec<Handle> = (0..6)
            .map(|i| server.submit(payload(i), None).unwrap())
            .collect();
        for h in handles {
            let r = h.wait().unwrap();
            assert_eq!(r.output.len(), 2);
        }
        let report = server.shutdown().unwrap();
        assert!(report.stats.accounted());
        assert_eq!(report.stats.completed, 6);
        assert_eq!(report.stats.failed, 0);
    }

    #[test]
    fn wrong_sized_payload_rejected_at_submit() {
        let server = Server::start(model(2), ServeConfig::standard(2)).unwrap();
        assert!(matches!(
            server.submit(vec![0.0; 5], None),
            Err(ServeError::BadRequest(_))
        ));
        let report = server.shutdown().unwrap();
        assert_eq!(report.stats.admitted, 0);
    }

    #[test]
    fn submit_after_shutdown_is_closed() {
        let server = Server::start(model(3), ServeConfig::standard(3)).unwrap();
        server.close(false);
        assert!(matches!(
            server.submit(payload(0), None),
            Err(ServeError::Closed)
        ));
    }

    #[test]
    fn kill_resolves_every_handle() {
        // tiny batches so a backlog survives long enough to be killed
        let mut cfg = ServeConfig::standard(4);
        cfg.max_batch = 1;
        cfg.block_align = 1;
        let server = Server::start(model(4), cfg).unwrap();
        let handles: Vec<Handle> = (0..16)
            .map(|i| server.submit(payload(i), None).unwrap())
            .collect();
        let report = server.kill().unwrap();
        assert!(report.stats.accounted());
        let mut completed = 0u64;
        let mut cancelled = 0u64;
        for h in handles {
            match h.wait() {
                Ok(_) => completed += 1,
                Err(ServeError::Closed) => cancelled += 1,
                Err(e) => panic!("unexpected outcome: {e}"),
            }
        }
        assert_eq!(completed, report.stats.completed);
        assert_eq!(cancelled, report.stats.cancelled);
        assert_eq!(completed + cancelled, 16);
    }

    #[test]
    fn chaos_injection_is_ordered_with_requests() {
        let server = Server::start(model(5), ServeConfig::standard(5)).unwrap();
        let h0 = server.submit(payload(0), None).unwrap();
        server.inject_chaos(0.3).unwrap();
        let h1 = server.submit(payload(1), None).unwrap();
        h0.wait().unwrap();
        h1.wait().unwrap();
        let report = server.shutdown().unwrap();
        assert_eq!(report.stats.chaos_events, 1);
        assert!(report.stats.chaos_upsets > 0);
        assert!(report.stats.accounted());
    }
}
