//! Typed serving errors.
//!
//! Every way a request can fail to produce logits has a variant here —
//! admission control, deadline expiry, load shedding, shutdown, and
//! engine failures all reject *explicitly*. The serving loop never drops
//! a request silently: a submitted request either completes or its owner
//! receives exactly one of these errors, and the proptest suite pins
//! that accounting identity.

use std::fmt;

use membit_core::TrainError;
use membit_tensor::TensorError;

/// Why a request was rejected or failed.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// Admission control: the bounded queue is at capacity. Backpressure
    /// — the client should retry later or slow down.
    QueueFull {
        /// The configured queue capacity the request bounced off.
        capacity: usize,
    },
    /// The request waited past its deadline before a batch picked it up.
    DeadlineExceeded {
        /// Virtual time the request arrived (ns).
        arrival_ns: u64,
        /// Its deadline budget (ns).
        deadline_ns: u64,
        /// Virtual time at which the expiry was detected (ns).
        now_ns: u64,
    },
    /// Health-aware load shedding: guard violation rates or degraded
    /// layers crossed the shedding threshold and admission is closed
    /// until the deployment recovers.
    Shed,
    /// The server is shutting down (or was killed) and will not serve
    /// this request.
    Closed,
    /// The engine failed after exhausting the serving-level retry
    /// budget (which itself sits above the guard escalation ladder).
    Engine(TrainError),
    /// A request payload didn't match the model's input shape.
    BadRequest(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::QueueFull { capacity } => {
                write!(f, "queue full (capacity {capacity})")
            }
            ServeError::DeadlineExceeded {
                arrival_ns,
                deadline_ns,
                now_ns,
            } => write!(
                f,
                "deadline exceeded: arrived at {arrival_ns} ns with {deadline_ns} ns budget, now {now_ns} ns"
            ),
            ServeError::Shed => write!(f, "load shed: deployment health below serving threshold"),
            ServeError::Closed => write!(f, "server closed"),
            ServeError::Engine(e) => write!(f, "engine failure: {e}"),
            ServeError::BadRequest(msg) => write!(f, "bad request: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TrainError> for ServeError {
    fn from(e: TrainError) -> Self {
        ServeError::Engine(e)
    }
}

impl From<TensorError> for ServeError {
    fn from(e: TensorError) -> Self {
        ServeError::Engine(TrainError::Tensor(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure() {
        assert!(ServeError::QueueFull { capacity: 4 }.to_string().contains("capacity 4"));
        let d = ServeError::DeadlineExceeded {
            arrival_ns: 100,
            deadline_ns: 50,
            now_ns: 200,
        };
        assert!(d.to_string().contains("deadline"));
        assert!(ServeError::Shed.to_string().contains("shed"));
        let e: ServeError = TensorError::InvalidArgument("x".into()).into();
        assert!(matches!(e, ServeError::Engine(TrainError::Tensor(_))));
    }
}
