//! The deterministic serving core shared by the threaded [`Server`]
//! (crate::Server) and the discrete-event [`simulate`](crate::simulate)
//! driver.
//!
//! All decisions here are pure functions of `(config, admitted order,
//! batch composition, RNG stream)` — the virtual clock is advanced from
//! the energy model's latency accounting, never from wall time, so a
//! live threaded run and its replay walk identical state.

use membit_tensor::{Rng, Tensor};
use membit_xbar::ExecutionStats;

use crate::config::{RetryPolicy, ServeConfig};
use crate::health::{HealthState, HealthTracker};
use crate::log::{LogEvent, RequestLog};
use crate::model::ServeModel;
use crate::{Result, ServeError};

/// An admitted request waiting for a batch.
#[derive(Debug, Clone, PartialEq)]
pub struct Pending {
    /// Dense id assigned at admission.
    pub id: u64,
    /// Flattened input sample.
    pub input: Vec<f32>,
    /// Virtual arrival time (ns).
    pub arrival_ns: u64,
    /// Deadline budget (ns).
    pub deadline_ns: u64,
}

/// Per-request completion telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Output row of the model.
    pub output: Vec<f32>,
    /// Virtual completion time (ns).
    pub completed_ns: u64,
    /// Queueing + execution latency (ns, virtual).
    pub latency_ns: u64,
    /// Energy attributed to this request: the batch's energy split
    /// evenly over its members (pJ).
    pub energy_pj: f64,
    /// Guard checksum violations observed by the carrying batch.
    pub guard_violations: u64,
    /// Whether the deployment was degraded (any layer on the digital
    /// fallback) when the response was produced.
    pub degraded: bool,
    /// Whether the response was delivered past its deadline (it was
    /// already executing when the deadline lapsed — delivered anyway,
    /// flagged for the client).
    pub late: bool,
}

/// Aggregate serving counters. The accounting identity
/// `admitted == completed + expired + failed + cancelled` holds at
/// shutdown — no request is ever lost or double-served.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ServeStats {
    /// Requests past admission control.
    pub admitted: u64,
    /// Requests rejected with `QueueFull`.
    pub rejected_queue_full: u64,
    /// Requests rejected with `Shed`.
    pub rejected_shed: u64,
    /// Requests that completed with a response.
    pub completed: u64,
    /// Completions delivered past their deadline.
    pub late_completions: u64,
    /// Requests expired before execution (`DeadlineExceeded`).
    pub expired: u64,
    /// Requests failed by engine errors after retries.
    pub failed: u64,
    /// Admitted requests resolved with `Closed` by a kill.
    pub cancelled: u64,
    /// Batches executed.
    pub batches: u64,
    /// Serve-level batch retries (above the guard ladder's own).
    pub retries: u64,
    /// Chaos injections applied.
    pub chaos_events: u64,
    /// Total upset cells injected by chaos.
    pub chaos_upsets: u64,
    /// Chaos injections that errored (counted, never silently dropped).
    pub chaos_failures: u64,
    /// High-water mark of the request queue depth.
    pub max_queue_depth: u64,
    /// Merged hardware event counts across all batches.
    pub exec: ExecutionStats,
}

impl ServeStats {
    /// Whether every admitted request was resolved exactly once.
    pub fn accounted(&self) -> bool {
        self.admitted == self.completed + self.expired + self.failed + self.cancelled
    }
}

/// Admission decision against the bounded queue and health state.
/// Consumes no RNG — admission order alone never perturbs responses.
pub fn admit_check(depth: usize, capacity: usize, state: HealthState) -> Result<()> {
    if state == HealthState::Shedding {
        return Err(ServeError::Shed);
    }
    if depth >= capacity {
        return Err(ServeError::QueueFull { capacity });
    }
    Ok(())
}

/// How many of `waiting` requests the next batch should take: capped at
/// `max_batch`, and — when more work is waiting than fits — rounded down
/// to a multiple of `block_align` so full sample blocks land on worker
/// threads. A final partial batch (everything that's left) is always
/// allowed, so no request can starve.
pub fn batch_quota(waiting: usize, max_batch: usize, block_align: usize) -> usize {
    let n = waiting.min(max_batch);
    if n == waiting {
        return n; // drain: partial block allowed
    }
    let aligned = (n / block_align) * block_align;
    // block_align > max_batch makes alignment impossible; take the cap
    if aligned == 0 {
        n
    } else {
        aligned
    }
}

/// Executes one batch with the serve-level retry policy, returning the
/// outputs, the merged stats of the final attempt chain, and the number
/// of retries taken.
///
/// # Errors
///
/// Returns [`ServeError::Engine`] once the retry budget is exhausted.
pub(crate) fn run_batch<M: ServeModel>(
    model: &mut M,
    retry: &RetryPolicy,
    batch: &Tensor,
    rng: &mut Rng,
) -> Result<(Tensor, ExecutionStats, u32)> {
    let mut attempt = 0u32;
    loop {
        match model.forward_batch(batch, rng) {
            Ok((y, stats)) => return Ok((y, stats, attempt)),
            Err(e) => {
                if attempt >= retry.max_retries {
                    return Err(e);
                }
                attempt += 1;
            }
        }
    }
}

/// The single-owner serving core: model, RNG, log, clock, health, and
/// counters. One `Executor` lives behind the scheduler thread of a
/// [`Server`](crate::Server) or inside a [`simulate`](crate::simulate)
/// loop; it is never shared.
pub struct Executor<M> {
    model: M,
    rng: Rng,
    config: ServeConfig,
    log: RequestLog,
    health: HealthTracker,
    stats: ServeStats,
    clock_ns: u64,
    sample_len: usize,
    input_shape: Vec<usize>,
    out_dim: usize,
}

impl<M: ServeModel> Executor<M> {
    /// Wraps a deployed model for serving under `config`.
    ///
    /// # Errors
    ///
    /// Propagates [`ServeConfig::validate`].
    pub fn new(model: M, config: ServeConfig) -> Result<Self> {
        config.validate()?;
        let input_shape = model.input_shape();
        let sample_len = input_shape.iter().product();
        let out_dim = model.output_dim();
        let rng = crate::log::serve_rng(config.seed);
        Ok(Self {
            model,
            rng,
            config,
            log: RequestLog::new(),
            health: HealthTracker::new(),
            stats: ServeStats::default(),
            clock_ns: 0,
            sample_len,
            input_shape,
            out_dim,
        })
    }

    /// Current virtual time (ns).
    pub fn clock_ns(&self) -> u64 {
        self.clock_ns
    }

    /// Advances the virtual clock to `t_ns` if it lies ahead (idle time
    /// in a discrete-event simulation; the clock never moves backward).
    pub fn advance_clock_to(&mut self, t_ns: u64) {
        self.clock_ns = self.clock_ns.max(t_ns);
    }

    /// Current health state.
    pub fn health_state(&self) -> HealthState {
        self.health.state()
    }

    /// Aggregate counters so far.
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// The append-only log so far.
    pub fn log(&self) -> &RequestLog {
        &self.log
    }

    /// The serving configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Shape of one input sample.
    pub fn input_shape(&self) -> &[usize] {
        &self.input_shape
    }

    /// Validates a payload, assigns the next dense id, records the
    /// admission, and returns the [`Pending`] entry. The caller has
    /// already passed [`admit_check`]; payload validation happens here
    /// so a malformed request is rejected before it can occupy a slot.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadRequest`] on a payload length mismatch.
    pub fn admit(&mut self, input: Vec<f32>, deadline_ns: Option<u64>) -> Result<Pending> {
        let pending = Pending {
            id: self.stats.admitted,
            input,
            arrival_ns: self.clock_ns,
            deadline_ns: deadline_ns.unwrap_or(self.config.default_deadline_ns),
        };
        self.register(&pending)?;
        Ok(pending)
    }

    /// Records an externally built admission (the threaded server
    /// assigns ids and arrival stamps at submit time) in the log, in
    /// scheduling order.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadRequest`] on a payload length mismatch.
    pub fn register(&mut self, pending: &Pending) -> Result<()> {
        if pending.input.len() != self.sample_len {
            return Err(ServeError::BadRequest(format!(
                "payload has {} values, model wants {}",
                pending.input.len(),
                self.sample_len
            )));
        }
        self.stats.admitted += 1;
        self.log.push(LogEvent::Admit {
            id: pending.id,
            arrival_ns: pending.arrival_ns,
            deadline_ns: pending.deadline_ns,
            input: pending.input.clone(),
        });
        Ok(())
    }

    /// Applies one chaos injection, logging it in stream order.
    ///
    /// # Errors
    ///
    /// Propagates injection errors.
    pub fn apply_chaos(&mut self, rate: f32) -> Result<u64> {
        self.log.push(LogEvent::Chaos { rate });
        match self.model.inject_upsets(rate, &mut self.rng) {
            Ok(injected) => {
                self.stats.chaos_events += 1;
                self.stats.chaos_upsets += injected;
                Ok(injected)
            }
            Err(e) => {
                self.stats.chaos_failures += 1;
                Err(e)
            }
        }
    }

    /// Serves one slice of admitted requests: expires the overdue,
    /// batches the rest, executes with retries, advances the virtual
    /// clock, updates health, and returns each request's typed outcome
    /// in input order.
    ///
    /// An engine failure after retries fails the *batch members* (each
    /// owner gets the error) but never the loop itself.
    pub fn serve(&mut self, requests: Vec<Pending>) -> Vec<(Pending, Result<Response>)> {
        let mut outcomes = Vec::with_capacity(requests.len());
        let mut live = Vec::with_capacity(requests.len());
        for req in requests {
            if self.clock_ns > req.arrival_ns.saturating_add(req.deadline_ns) {
                self.log.push(LogEvent::Expire {
                    id: req.id,
                    now_ns: self.clock_ns,
                });
                self.stats.expired += 1;
                let err = ServeError::DeadlineExceeded {
                    arrival_ns: req.arrival_ns,
                    deadline_ns: req.deadline_ns,
                    now_ns: self.clock_ns,
                };
                outcomes.push((req, Err(err)));
            } else {
                live.push(req);
            }
        }
        if live.is_empty() {
            return outcomes;
        }
        let ids: Vec<u64> = live.iter().map(|r| r.id).collect();
        self.log.push(LogEvent::Batch { ids });
        let mut flat = Vec::with_capacity(live.len() * self.sample_len);
        for req in &live {
            flat.extend_from_slice(&req.input);
        }
        let mut batch_shape = vec![live.len()];
        batch_shape.extend_from_slice(&self.input_shape);
        let batch = match Tensor::from_vec(flat, &batch_shape) {
            Ok(b) => b,
            Err(e) => {
                // cannot happen for validated payloads; fail the members
                for req in live {
                    self.stats.failed += 1;
                    outcomes.push((req, Err(ServeError::from(e.clone()))));
                }
                return outcomes;
            }
        };
        let result = run_batch(&mut self.model, &self.config.retry, &batch, &mut self.rng);
        self.stats.batches += 1;
        match result {
            Ok((y, stats, retries)) => {
                self.stats.retries += u64::from(retries);
                self.stats.exec.merge(&stats);
                // clock: modeled batch latency + retry backoff
                let mut dt = self.config.energy.latency_ns(&stats).round() as u64;
                for attempt in 1..=retries {
                    dt = dt.saturating_add(self.config.retry.backoff_for(attempt));
                }
                self.clock_ns = self.clock_ns.saturating_add(dt);
                let degraded = self.model.degraded_layers() > 0;
                self.health
                    .observe(&self.config.health, &stats, self.model.degraded_layers());
                let energy_each = self.config.energy.energy_pj(&stats) / live.len() as f64;
                let rows = y.as_slice();
                for (row, req) in live.into_iter().enumerate() {
                    let late = self.clock_ns > req.arrival_ns.saturating_add(req.deadline_ns);
                    self.stats.completed += 1;
                    self.stats.late_completions += u64::from(late);
                    let response = Response {
                        output: rows[row * self.out_dim..(row + 1) * self.out_dim].to_vec(),
                        completed_ns: self.clock_ns,
                        latency_ns: self.clock_ns.saturating_sub(req.arrival_ns),
                        energy_pj: energy_each,
                        guard_violations: stats.guard.violations,
                        degraded,
                        late,
                    };
                    outcomes.push((req, Ok(response)));
                }
            }
            Err(e) => {
                for req in live {
                    self.stats.failed += 1;
                    outcomes.push((req, Err(e.clone())));
                }
            }
        }
        outcomes
    }

    /// Resolves still-queued requests with [`ServeError::Closed`] (a
    /// kill, not a drain), returning their typed outcomes. The requests
    /// passed admission but were never registered (a registered request
    /// is always served in the same pull), so they count toward
    /// `admitted` here to keep the accounting identity.
    pub fn cancel(&mut self, requests: Vec<Pending>) -> Vec<(Pending, Result<Response>)> {
        requests
            .into_iter()
            .map(|req| {
                self.stats.admitted += 1;
                self.stats.cancelled += 1;
                (req, Err(ServeError::Closed))
            })
            .collect()
    }

    /// Records a queue-depth observation for the high-water mark.
    pub fn note_queue_depth(&mut self, depth: usize) {
        self.stats.max_queue_depth = self.stats.max_queue_depth.max(depth as u64);
    }

    /// Records an admission rejection in the counters.
    pub fn note_rejection(&mut self, err: &ServeError) {
        match err {
            ServeError::QueueFull { .. } => self.stats.rejected_queue_full += 1,
            ServeError::Shed => self.stats.rejected_shed += 1,
            _ => {}
        }
    }

    /// Tears the executor down into its report: the model (for
    /// inspection), the full log, and the final counters.
    pub fn into_report(self) -> (M, RequestLog, ServeStats) {
        (self.model, self.log, self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::LinearServeModel;
    use membit_xbar::{GuardPolicy, XbarConfig};

    fn executor(seed: u64) -> Executor<LinearServeModel> {
        let w = Tensor::from_fn(&[2, 3], |i| if i % 2 == 0 { 1.0 } else { -1.0 });
        let cfg = XbarConfig::functional(0.02).with_guard(GuardPolicy::standard());
        let model =
            LinearServeModel::program(&w, &cfg, 9, 4, &mut Rng::from_seed(seed)).unwrap();
        Executor::new(model, ServeConfig::standard(seed)).unwrap()
    }

    fn payload(i: usize) -> Vec<f32> {
        (0..3)
            .map(|j| (((i * 3 + j) % 5) as f32 / 2.0 - 1.0).clamp(-1.0, 1.0))
            .collect()
    }

    #[test]
    fn admit_check_is_typed() {
        assert!(admit_check(0, 2, HealthState::Healthy).is_ok());
        assert!(matches!(
            admit_check(2, 2, HealthState::Healthy),
            Err(ServeError::QueueFull { capacity: 2 })
        ));
        assert!(matches!(
            admit_check(0, 2, HealthState::Shedding),
            Err(ServeError::Shed)
        ));
    }

    #[test]
    fn batch_quota_aligns_only_under_surplus() {
        // draining: partial batches always allowed
        assert_eq!(batch_quota(3, 8, 2), 3);
        // surplus: rounded down to full blocks
        assert_eq!(batch_quota(9, 8, 2), 8);
        assert_eq!(batch_quota(7, 6, 4), 4);
        // alignment larger than the cap still yields progress
        assert_eq!(batch_quota(10, 3, 4), 3);
    }

    #[test]
    fn serve_completes_and_accounts() {
        let mut ex = executor(1);
        let a = ex.admit(payload(0), None).unwrap();
        let b = ex.admit(payload(1), None).unwrap();
        let outcomes = ex.serve(vec![a, b]);
        assert_eq!(outcomes.len(), 2);
        for (_, o) in &outcomes {
            let r = o.as_ref().unwrap();
            assert_eq!(r.output.len(), 2);
            assert!(r.latency_ns > 0);
        }
        assert!(ex.clock_ns() > 0);
        assert!(ex.stats().accounted());
        assert_eq!(ex.stats().completed, 2);
        assert_eq!(ex.log().len(), 3); // 2 admits + 1 batch
    }

    #[test]
    fn overdue_requests_expire_typed() {
        let mut ex = executor(2);
        // admitted at clock 0 with a 1 ns budget
        let a = ex.admit(payload(0), Some(1)).unwrap();
        // force the clock past the deadline by serving another batch first
        let b = ex.admit(payload(1), None).unwrap();
        ex.serve(vec![b]);
        let outcomes = ex.serve(vec![a]);
        assert!(matches!(
            outcomes[0].1,
            Err(ServeError::DeadlineExceeded { .. })
        ));
        assert!(ex.stats().accounted());
        assert_eq!(ex.stats().expired, 1);
    }

    #[test]
    fn bad_payload_is_rejected_before_queueing() {
        let mut ex = executor(3);
        assert!(matches!(
            ex.admit(vec![1.0, 2.0], None),
            Err(ServeError::BadRequest(_))
        ));
    }

    #[test]
    fn chaos_is_logged_in_order() {
        let mut ex = executor(4);
        let a = ex.admit(payload(0), None).unwrap();
        ex.apply_chaos(0.25).unwrap();
        ex.serve(vec![a]);
        let kinds: Vec<_> = ex
            .log()
            .events()
            .iter()
            .map(|e| match e {
                LogEvent::Admit { .. } => "admit",
                LogEvent::Chaos { .. } => "chaos",
                LogEvent::Expire { .. } => "expire",
                LogEvent::Batch { .. } => "batch",
            })
            .collect();
        assert_eq!(kinds, vec!["admit", "chaos", "batch"]);
        assert_eq!(ex.stats().chaos_events, 1);
    }
}
