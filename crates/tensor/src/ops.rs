//! Elementwise arithmetic with NumPy-style broadcasting.
//!
//! Fast paths cover the patterns the workspace actually hits in inner loops
//! (same shape, scalar operands, trailing-suffix broadcast such as a `[C]`
//! bias against `[N, C]`, and per-channel broadcast of `[C]` against
//! `[N, C, H, W]`); everything else falls back to a generic strided walk.

use crate::{Result, Tensor, TensorError};

/// Computes the NumPy broadcast of two shapes.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if the shapes are not
/// broadcast-compatible.
pub(crate) fn broadcast_shape(op: &'static str, a: &[usize], b: &[usize]) -> Result<Vec<usize>> {
    let rank = a.len().max(b.len());
    let mut out = vec![0usize; rank];
    for i in 0..rank {
        let da = if i < rank - a.len() { 1 } else { a[i - (rank - a.len())] };
        let db = if i < rank - b.len() { 1 } else { b[i - (rank - b.len())] };
        out[i] = if da == db || db == 1 {
            da
        } else if da == 1 {
            db
        } else {
            return Err(TensorError::ShapeMismatch {
                op,
                lhs: a.to_vec(),
                rhs: b.to_vec(),
            });
        };
    }
    Ok(out)
}

/// Row-major strides for `shape`, with stride 0 on broadcast (size-1) axes
/// relative to `out_shape`.
fn broadcast_strides(shape: &[usize], out_shape: &[usize]) -> Vec<usize> {
    let rank = out_shape.len();
    let offset = rank - shape.len();
    let mut strides = vec![0usize; rank];
    let mut acc = 1usize;
    for i in (0..shape.len()).rev() {
        strides[offset + i] = if shape[i] == 1 { 0 } else { acc };
        acc *= shape[i];
    }
    strides
}

fn binary(op: &'static str, a: &Tensor, b: &Tensor, f: impl Fn(f32, f32) -> f32) -> Result<Tensor> {
    // Fast path: identical shapes.
    if a.shape() == b.shape() {
        return a.zip_map(b, f);
    }
    // Fast path: scalar rhs or lhs.
    if b.len() == 1 {
        let s = b.at(0);
        return Ok(a.map(|x| f(x, s)));
    }
    if a.len() == 1 {
        let s = a.at(0);
        return Ok(b.map(|x| f(s, x)));
    }
    // Fast path: rhs is a trailing suffix of lhs (e.g. [N, C] ∘ [C]).
    if a.rank() >= b.rank() && a.shape()[a.rank() - b.rank()..] == *b.shape() {
        let inner = b.len();
        let mut out = Vec::with_capacity(a.len());
        let bs = b.as_slice();
        for chunk in a.as_slice().chunks_exact(inner) {
            out.extend(chunk.iter().zip(bs).map(|(&x, &y)| f(x, y)));
        }
        return Tensor::from_vec(out, a.shape());
    }
    // Generic strided broadcast walk.
    let out_shape = broadcast_shape(op, a.shape(), b.shape())?;
    let sa = broadcast_strides(a.shape(), &out_shape);
    let sb = broadcast_strides(b.shape(), &out_shape);
    let volume: usize = out_shape.iter().product();
    let mut idx = vec![0usize; out_shape.len()];
    let mut oa = 0usize;
    let mut ob = 0usize;
    let mut out = Vec::with_capacity(volume);
    let (asl, bsl) = (a.as_slice(), b.as_slice());
    for _ in 0..volume {
        out.push(f(asl[oa], bsl[ob]));
        // increment multi-index
        for ax in (0..out_shape.len()).rev() {
            idx[ax] += 1;
            oa += sa[ax];
            ob += sb[ax];
            if idx[ax] < out_shape[ax] {
                break;
            }
            idx[ax] = 0;
            oa -= sa[ax] * out_shape[ax];
            ob -= sb[ax] * out_shape[ax];
        }
    }
    Tensor::from_vec(out, &out_shape)
}

impl Tensor {
    /// Broadcasting elementwise addition.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes are incompatible.
    pub fn add(&self, other: &Tensor) -> Result<Tensor> {
        binary("add", self, other, |a, b| a + b)
    }

    /// Broadcasting elementwise subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes are incompatible.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor> {
        binary("sub", self, other, |a, b| a - b)
    }

    /// Broadcasting elementwise multiplication.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes are incompatible.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor> {
        binary("mul", self, other, |a, b| a * b)
    }

    /// Broadcasting elementwise division.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes are incompatible.
    pub fn div(&self, other: &Tensor) -> Result<Tensor> {
        binary("div", self, other, |a, b| a / b)
    }

    /// Adds a scalar to every element.
    pub fn add_scalar(&self, s: f32) -> Tensor {
        self.map(|x| x + s)
    }

    /// Multiplies every element by a scalar.
    pub fn mul_scalar(&self, s: f32) -> Tensor {
        self.map(|x| x * s)
    }

    /// Elementwise negation.
    pub fn neg(&self) -> Tensor {
        self.map(|x| -x)
    }

    /// Elementwise absolute value.
    pub fn abs(&self) -> Tensor {
        self.map(f32::abs)
    }

    /// Elementwise square.
    pub fn square(&self) -> Tensor {
        self.map(|x| x * x)
    }

    /// Elementwise square root.
    pub fn sqrt(&self) -> Tensor {
        self.map(f32::sqrt)
    }

    /// Elementwise hyperbolic tangent.
    pub fn tanh(&self) -> Tensor {
        self.map(f32::tanh)
    }

    /// Elementwise exponential.
    pub fn exp(&self) -> Tensor {
        self.map(f32::exp)
    }

    /// Elementwise natural logarithm.
    pub fn ln(&self) -> Tensor {
        self.map(f32::ln)
    }

    /// Clamps every element into `[lo, hi]`.
    pub fn clamp(&self, lo: f32, hi: f32) -> Tensor {
        self.map(|x| x.clamp(lo, hi))
    }

    /// Elementwise sign (`-1`, `0`, or `+1`).
    pub fn signum(&self) -> Tensor {
        self.map(|x| {
            if x > 0.0 {
                1.0
            } else if x < 0.0 {
                -1.0
            } else {
                0.0
            }
        })
    }

    /// Applies `f(x, scale[c])` over a `[N, C, ...]` tensor where `c` is the
    /// channel (axis 1) index. This is the NCHW per-channel pattern batch
    /// normalization uses; it is distinct from NumPy broadcasting, which
    /// would align a `[C]` operand with the *last* axis.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `per_channel` is not a
    /// `[C]` vector matching axis 1.
    pub fn channel_map(
        &self,
        per_channel: &Tensor,
        f: impl Fn(f32, f32) -> f32,
    ) -> Result<Tensor> {
        if self.rank() < 2 || per_channel.shape() != [self.shape()[1]] {
            return Err(TensorError::ShapeMismatch {
                op: "channel_map",
                lhs: self.shape().to_vec(),
                rhs: per_channel.shape().to_vec(),
            });
        }
        let n = self.shape()[0];
        let c = self.shape()[1];
        let inner: usize = self.shape()[2..].iter().product();
        let mut out = Vec::with_capacity(self.len());
        let (asl, bsl) = (self.as_slice(), per_channel.as_slice());
        for ni in 0..n {
            for (ci, &y) in bsl.iter().enumerate().take(c) {
                let base = (ni * c + ci) * inner;
                out.extend(asl[base..base + inner].iter().map(|&x| f(x, y)));
            }
        }
        Tensor::from_vec(out, self.shape())
    }

    /// Per-channel (axis 1) addition of a `[C]` vector. See
    /// [`channel_map`](Self::channel_map).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] on a channel-count mismatch.
    pub fn add_channels(&self, bias: &Tensor) -> Result<Tensor> {
        self.channel_map(bias, |x, y| x + y)
    }

    /// Per-channel (axis 1) multiplication by a `[C]` vector. See
    /// [`channel_map`](Self::channel_map).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] on a channel-count mismatch.
    pub fn mul_channels(&self, scale: &Tensor) -> Result<Tensor> {
        self.channel_map(scale, |x, y| x * y)
    }

    /// In-place `self += alpha * other` for same-shaped tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ exactly.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) -> Result<()> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "axpy",
                lhs: self.shape().to_vec(),
                rhs: other.shape().to_vec(),
            });
        }
        for (a, &b) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *a += alpha * b;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], shape: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), shape).unwrap()
    }

    #[test]
    fn same_shape_add() {
        let a = t(&[1.0, 2.0], &[2]);
        let b = t(&[3.0, 4.0], &[2]);
        assert_eq!(a.add(&b).unwrap().as_slice(), &[4.0, 6.0]);
    }

    #[test]
    fn scalar_broadcast_both_sides() {
        let a = t(&[1.0, 2.0], &[2]);
        let s = Tensor::scalar(10.0);
        assert_eq!(a.add(&s).unwrap().as_slice(), &[11.0, 12.0]);
        assert_eq!(s.sub(&a).unwrap().as_slice(), &[9.0, 8.0]);
    }

    #[test]
    fn suffix_broadcast_bias() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let bias = t(&[10.0, 20.0, 30.0], &[3]);
        let r = a.add(&bias).unwrap();
        assert_eq!(r.as_slice(), &[11.0, 22.0, 33.0, 14.0, 25.0, 36.0]);
        assert_eq!(r.shape(), &[2, 3]);
    }

    #[test]
    fn channel_ops_follow_axis1() {
        // [1, 2, 2, 2] scaled per channel by [2]
        let a = Tensor::ones(&[1, 2, 2, 2]);
        let g = t(&[2.0, 3.0], &[2]);
        let r = a.mul_channels(&g).unwrap();
        assert_eq!(r.as_slice(), &[2.0, 2.0, 2.0, 2.0, 3.0, 3.0, 3.0, 3.0]);
        let b = a.add_channels(&g).unwrap();
        assert_eq!(b.as_slice(), &[3.0, 3.0, 3.0, 3.0, 4.0, 4.0, 4.0, 4.0]);
        assert!(a.mul_channels(&Tensor::zeros(&[3])).is_err());
    }

    #[test]
    fn numpy_trailing_broadcast_differs_from_channel_ops() {
        // NumPy semantics: a [2] operand aligns with the LAST axis of
        // [1, 2, 2, 2], not the channel axis.
        let a = Tensor::ones(&[1, 2, 2, 2]);
        let g = t(&[2.0, 3.0], &[2]);
        let r = a.mul(&g).unwrap();
        assert_eq!(r.as_slice(), &[2.0, 3.0, 2.0, 3.0, 2.0, 3.0, 2.0, 3.0]);
    }

    #[test]
    fn generic_broadcast_column_vs_row() {
        // [2,1] + [1,3] -> [2,3]
        let a = t(&[1.0, 2.0], &[2, 1]);
        let b = t(&[10.0, 20.0, 30.0], &[1, 3]);
        let r = a.add(&b).unwrap();
        assert_eq!(r.shape(), &[2, 3]);
        assert_eq!(r.as_slice(), &[11.0, 21.0, 31.0, 12.0, 22.0, 32.0]);
    }

    #[test]
    fn incompatible_shapes_error() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 2]);
        assert!(matches!(
            a.add(&b),
            Err(TensorError::ShapeMismatch { op: "add", .. })
        ));
    }

    #[test]
    fn unary_ops() {
        let a = t(&[-2.0, 0.0, 3.0], &[3]);
        assert_eq!(a.neg().as_slice(), &[2.0, -0.0, -3.0]);
        assert_eq!(a.abs().as_slice(), &[2.0, 0.0, 3.0]);
        assert_eq!(a.square().as_slice(), &[4.0, 0.0, 9.0]);
        assert_eq!(a.signum().as_slice(), &[-1.0, 0.0, 1.0]);
        assert_eq!(a.clamp(-1.0, 1.0).as_slice(), &[-1.0, 0.0, 1.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = t(&[1.0, 1.0], &[2]);
        let b = t(&[2.0, 4.0], &[2]);
        a.axpy(0.5, &b).unwrap();
        assert_eq!(a.as_slice(), &[2.0, 3.0]);
        assert!(a.axpy(1.0, &Tensor::zeros(&[3])).is_err());
    }

    #[test]
    fn broadcast_shape_rules() {
        assert_eq!(
            broadcast_shape("t", &[2, 1, 3], &[4, 1]).unwrap(),
            vec![2, 4, 3]
        );
        assert!(broadcast_shape("t", &[2, 3], &[4]).is_err());
    }
}
