use std::error::Error;
use std::fmt;

/// Error type for tensor construction and shape-sensitive operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TensorError {
    /// The provided buffer length does not match the product of the shape.
    LengthMismatch {
        /// Number of elements implied by the requested shape.
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// Two operands have incompatible shapes for the attempted operation.
    ShapeMismatch {
        /// Name of the operation that failed.
        op: &'static str,
        /// Shape of the left-hand operand.
        lhs: Vec<usize>,
        /// Shape of the right-hand operand.
        rhs: Vec<usize>,
    },
    /// An axis index was out of range for the tensor's rank.
    AxisOutOfRange {
        /// The offending axis.
        axis: usize,
        /// The tensor's rank.
        rank: usize,
    },
    /// The operation requires a tensor of a specific rank.
    RankMismatch {
        /// Name of the operation that failed.
        op: &'static str,
        /// Required rank.
        expected: usize,
        /// Provided rank.
        actual: usize,
    },
    /// A parameter was invalid (zero stride, empty kernel, ...).
    InvalidArgument(String),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, actual } => write!(
                f,
                "buffer length {actual} does not match shape volume {expected}"
            ),
            TensorError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "shape mismatch in `{op}`: lhs {lhs:?} vs rhs {rhs:?}")
            }
            TensorError::AxisOutOfRange { axis, rank } => {
                write!(f, "axis {axis} out of range for rank {rank}")
            }
            TensorError::RankMismatch {
                op,
                expected,
                actual,
            } => write!(f, "`{op}` requires rank {expected}, got rank {actual}"),
            TensorError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs = [
            TensorError::LengthMismatch {
                expected: 4,
                actual: 3,
            },
            TensorError::ShapeMismatch {
                op: "add",
                lhs: vec![2, 2],
                rhs: vec![3],
            },
            TensorError::AxisOutOfRange { axis: 5, rank: 2 },
            TensorError::RankMismatch {
                op: "matmul",
                expected: 2,
                actual: 1,
            },
            TensorError::InvalidArgument("stride must be nonzero".into()),
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase() || s.starts_with('`'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
