//! Convolution lowering: `im2col` / `col2im` and layout shuffles.
//!
//! `membit` lowers 2-D convolution to matrix multiplication: the input
//! `[N, C, H, W]` is unrolled into a patch matrix `[N·OH·OW, C·KH·KW]`
//! (`im2col`), multiplied against the transposed kernel, and the result is
//! reshaped from NHWC row order back to NCHW. `col2im` is the adjoint
//! scatter-add used by the backward pass.

use crate::{Result, Tensor, TensorError};

/// Static geometry of a 2-D convolution (NCHW, square behaviour per axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dGeometry {
    /// Input channel count.
    pub in_channels: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Kernel height.
    pub kernel_h: usize,
    /// Kernel width.
    pub kernel_w: usize,
    /// Stride along both axes.
    pub stride: usize,
    /// Zero padding along both axes.
    pub padding: usize,
}

impl Conv2dGeometry {
    /// Creates a geometry, validating kernel/stride against the padded input.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] for a zero stride, an empty
    /// kernel, or a kernel larger than the padded input.
    pub fn new(
        in_channels: usize,
        in_h: usize,
        in_w: usize,
        kernel_h: usize,
        kernel_w: usize,
        stride: usize,
        padding: usize,
    ) -> Result<Self> {
        if stride == 0 {
            return Err(TensorError::InvalidArgument("stride must be nonzero".into()));
        }
        if kernel_h == 0 || kernel_w == 0 {
            return Err(TensorError::InvalidArgument("kernel must be nonempty".into()));
        }
        if kernel_h > in_h + 2 * padding || kernel_w > in_w + 2 * padding {
            return Err(TensorError::InvalidArgument(format!(
                "kernel {kernel_h}x{kernel_w} larger than padded input {}x{}",
                in_h + 2 * padding,
                in_w + 2 * padding
            )));
        }
        Ok(Self {
            in_channels,
            in_h,
            in_w,
            kernel_h,
            kernel_w,
            stride,
            padding,
        })
    }

    /// Output height.
    pub fn out_h(&self) -> usize {
        (self.in_h + 2 * self.padding - self.kernel_h) / self.stride + 1
    }

    /// Output width.
    pub fn out_w(&self) -> usize {
        (self.in_w + 2 * self.padding - self.kernel_w) / self.stride + 1
    }

    /// Number of columns of the patch matrix (`C·KH·KW`).
    pub fn patch_len(&self) -> usize {
        self.in_channels * self.kernel_h * self.kernel_w
    }
}

/// Unrolls `input` (`[N, C, H, W]`) into the patch matrix
/// `[N·OH·OW, C·KH·KW]` described by `geom`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-rank-4 input and
/// [`TensorError::ShapeMismatch`] when the input disagrees with `geom`.
pub fn im2col(input: &Tensor, geom: &Conv2dGeometry) -> Result<Tensor> {
    let mut out = Vec::new();
    im2col_into(input, geom, &mut out)?;
    let rows = out.len() / geom.patch_len();
    Tensor::from_vec(out, &[rows, geom.patch_len()])
}

/// [`im2col`] into a caller-provided buffer, reusing its allocation.
///
/// `out` is cleared and resized to `N·OH·OW · C·KH·KW` (zero-filled so
/// padding positions read 0), then populated; its spare capacity is kept,
/// so feeding the same buffer to repeated calls amortizes the allocation —
/// the autograd tape does exactly this across `conv2d` forwards.
///
/// # Errors
///
/// Same contract as [`im2col`].
pub fn im2col_into(input: &Tensor, geom: &Conv2dGeometry, out: &mut Vec<f32>) -> Result<()> {
    if input.rank() != 4 {
        return Err(TensorError::RankMismatch {
            op: "im2col",
            expected: 4,
            actual: input.rank(),
        });
    }
    let [n, c, h, w] = [
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    ];
    if c != geom.in_channels || h != geom.in_h || w != geom.in_w {
        return Err(TensorError::ShapeMismatch {
            op: "im2col",
            lhs: input.shape().to_vec(),
            rhs: vec![n, geom.in_channels, geom.in_h, geom.in_w],
        });
    }
    let (oh, ow) = (geom.out_h(), geom.out_w());
    let patch = geom.patch_len();
    out.clear();
    out.resize(n * oh * ow * patch, 0.0);
    let src = input.as_slice();
    let pad = geom.padding as isize;
    for ni in 0..n {
        for oy in 0..oh {
            for ox in 0..ow {
                let row_base = ((ni * oh + oy) * ow + ox) * patch;
                let iy0 = (oy * geom.stride) as isize - pad;
                let ix0 = (ox * geom.stride) as isize - pad;
                let mut col = 0usize;
                for ci in 0..c {
                    let chan_base = (ni * c + ci) * h * w;
                    for ky in 0..geom.kernel_h {
                        let iy = iy0 + ky as isize;
                        if iy < 0 || iy >= h as isize {
                            col += geom.kernel_w;
                            continue;
                        }
                        let row_off = chan_base + iy as usize * w;
                        for kx in 0..geom.kernel_w {
                            let ix = ix0 + kx as isize;
                            if ix >= 0 && ix < w as isize {
                                out[row_base + col] = src[row_off + ix as usize];
                            }
                            col += 1;
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

/// Adjoint of [`im2col`]: scatter-adds the patch-matrix gradient
/// (`[N·OH·OW, C·KH·KW]`) back into an input-shaped tensor
/// (`[N, C, H, W]`).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `cols` does not match the
/// geometry for a batch of `n` images.
pub fn col2im(cols: &Tensor, n: usize, geom: &Conv2dGeometry) -> Result<Tensor> {
    let (oh, ow) = (geom.out_h(), geom.out_w());
    let patch = geom.patch_len();
    if cols.shape() != [n * oh * ow, patch] {
        return Err(TensorError::ShapeMismatch {
            op: "col2im",
            lhs: cols.shape().to_vec(),
            rhs: vec![n * oh * ow, patch],
        });
    }
    let (c, h, w) = (geom.in_channels, geom.in_h, geom.in_w);
    let mut out = vec![0.0f32; n * c * h * w];
    let src = cols.as_slice();
    let pad = geom.padding as isize;
    for ni in 0..n {
        for oy in 0..oh {
            for ox in 0..ow {
                let row_base = ((ni * oh + oy) * ow + ox) * patch;
                let iy0 = (oy * geom.stride) as isize - pad;
                let ix0 = (ox * geom.stride) as isize - pad;
                let mut col = 0usize;
                for ci in 0..c {
                    let chan_base = (ni * c + ci) * h * w;
                    for ky in 0..geom.kernel_h {
                        let iy = iy0 + ky as isize;
                        if iy < 0 || iy >= h as isize {
                            col += geom.kernel_w;
                            continue;
                        }
                        let row_off = chan_base + iy as usize * w;
                        for kx in 0..geom.kernel_w {
                            let ix = ix0 + kx as isize;
                            if ix >= 0 && ix < w as isize {
                                out[row_off + ix as usize] += src[row_base + col];
                            }
                            col += 1;
                        }
                    }
                }
            }
        }
    }
    Tensor::from_vec(out, &[n, c, h, w])
}

impl Tensor {
    /// Reorders a `[N, H, W, C]`-interpreted buffer into `[N, C, H, W]`.
    ///
    /// The receiver's shape must be `[n, h, w, c]`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-rank-4 tensors.
    pub fn nhwc_to_nchw(&self) -> Result<Tensor> {
        if self.rank() != 4 {
            return Err(TensorError::RankMismatch {
                op: "nhwc_to_nchw",
                expected: 4,
                actual: self.rank(),
            });
        }
        let [n, h, w, c] = [
            self.shape()[0],
            self.shape()[1],
            self.shape()[2],
            self.shape()[3],
        ];
        let src = self.as_slice();
        let mut out = vec![0.0f32; src.len()];
        for ni in 0..n {
            for yi in 0..h {
                for xi in 0..w {
                    let s = ((ni * h + yi) * w + xi) * c;
                    for ci in 0..c {
                        out[((ni * c + ci) * h + yi) * w + xi] = src[s + ci];
                    }
                }
            }
        }
        Tensor::from_vec(out, &[n, c, h, w])
    }

    /// Reorders a `[N, C, H, W]`-interpreted buffer into `[N, H, W, C]`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-rank-4 tensors.
    pub fn nchw_to_nhwc(&self) -> Result<Tensor> {
        if self.rank() != 4 {
            return Err(TensorError::RankMismatch {
                op: "nchw_to_nhwc",
                expected: 4,
                actual: self.rank(),
            });
        }
        let [n, c, h, w] = [
            self.shape()[0],
            self.shape()[1],
            self.shape()[2],
            self.shape()[3],
        ];
        let src = self.as_slice();
        let mut out = vec![0.0f32; src.len()];
        for ni in 0..n {
            for ci in 0..c {
                for yi in 0..h {
                    for xi in 0..w {
                        out[((ni * h + yi) * w + xi) * c + ci] =
                            src[((ni * c + ci) * h + yi) * w + xi];
                    }
                }
            }
        }
        Tensor::from_vec(out, &[n, h, w, c])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_output_sizes() {
        let g = Conv2dGeometry::new(3, 8, 8, 3, 3, 1, 1).unwrap();
        assert_eq!((g.out_h(), g.out_w()), (8, 8));
        let g2 = Conv2dGeometry::new(3, 8, 8, 2, 2, 2, 0).unwrap();
        assert_eq!((g2.out_h(), g2.out_w()), (4, 4));
        assert_eq!(g.patch_len(), 27);
    }

    #[test]
    fn geometry_rejects_bad_params() {
        assert!(Conv2dGeometry::new(1, 4, 4, 3, 3, 0, 0).is_err());
        assert!(Conv2dGeometry::new(1, 4, 4, 0, 3, 1, 0).is_err());
        assert!(Conv2dGeometry::new(1, 2, 2, 5, 5, 1, 1).is_err());
    }

    #[test]
    fn im2col_identity_kernel() {
        // 1x1 kernel, stride 1: patch matrix is just a layout shuffle.
        let x = Tensor::from_fn(&[1, 2, 2, 2], |i| i as f32);
        let g = Conv2dGeometry::new(2, 2, 2, 1, 1, 1, 0).unwrap();
        let cols = im2col(&x, &g).unwrap();
        assert_eq!(cols.shape(), &[4, 2]);
        // row (y=0,x=0) gathers channel values x[0,:,0,0] = [0, 4]
        assert_eq!(cols.row(0), vec![0.0, 4.0]);
        assert_eq!(cols.row(3), vec![3.0, 7.0]);
    }

    #[test]
    fn im2col_padding_zero_fills() {
        let x = Tensor::ones(&[1, 1, 2, 2]);
        let g = Conv2dGeometry::new(1, 2, 2, 3, 3, 1, 1).unwrap();
        let cols = im2col(&x, &g).unwrap();
        assert_eq!(cols.shape(), &[4, 9]);
        // top-left patch: only bottom-right 2x2 of the kernel window overlaps.
        assert_eq!(
            cols.row(0),
            vec![0.0, 0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0]
        );
    }

    #[test]
    fn im2col_into_reuses_dirty_buffers() {
        let x = Tensor::from_fn(&[2, 2, 4, 4], |i| ((i * 3 % 17) as f32) - 8.0);
        let g = Conv2dGeometry::new(2, 4, 4, 3, 3, 1, 1).unwrap();
        let fresh = im2col(&x, &g).unwrap();
        // a buffer full of garbage (wrong size, nonzero) must yield the
        // same patch matrix — including the zero padding positions
        let mut buf = vec![f32::NAN; 7];
        im2col_into(&x, &g, &mut buf).unwrap();
        assert_eq!(buf, fresh.as_slice());
        let cap = buf.capacity();
        im2col_into(&x, &g, &mut buf).unwrap();
        assert_eq!(buf.capacity(), cap, "repeat call must not reallocate");
        assert_eq!(buf, fresh.as_slice());
        // errors propagate without touching validity guarantees
        assert!(im2col_into(&Tensor::zeros(&[4]), &g, &mut buf).is_err());
    }

    #[test]
    fn conv_via_matmul_matches_direct() {
        // direct convolution reference
        let n = 2;
        let (c, h, w) = (3, 5, 5);
        let (oc, kh, kw) = (4, 3, 3);
        let x = Tensor::from_fn(&[n, c, h, w], |i| ((i * 7 % 13) as f32) - 6.0);
        let wt = Tensor::from_fn(&[oc, c, kh, kw], |i| ((i * 5 % 11) as f32) - 5.0);
        let g = Conv2dGeometry::new(c, h, w, kh, kw, 1, 1).unwrap();
        let (oh, ow) = (g.out_h(), g.out_w());

        // lowered path
        let cols = im2col(&x, &g).unwrap();
        let wmat = wt.reshape(&[oc, c * kh * kw]).unwrap();
        let out_rows = cols.matmul(&wmat.transpose().unwrap()).unwrap();
        let lowered = out_rows
            .reshape(&[n, oh, ow, oc])
            .unwrap()
            .nhwc_to_nchw()
            .unwrap();

        // direct path
        let mut direct = Tensor::zeros(&[n, oc, oh, ow]);
        for ni in 0..n {
            for oci in 0..oc {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = 0.0;
                        for ci in 0..c {
                            for ky in 0..kh {
                                for kx in 0..kw {
                                    let iy = oy as isize + ky as isize - 1;
                                    let ix = ox as isize + kx as isize - 1;
                                    if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize {
                                        acc += x.get(&[ni, ci, iy as usize, ix as usize])
                                            * wt.get(&[oci, ci, ky, kx]);
                                    }
                                }
                            }
                        }
                        direct.set(&[ni, oci, oy, ox], acc);
                    }
                }
            }
        }
        assert!(lowered.allclose(&direct, 1e-3));
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining
        // property of the adjoint, which is exactly what backprop needs.
        let g = Conv2dGeometry::new(2, 4, 4, 3, 3, 1, 1).unwrap();
        let x = Tensor::from_fn(&[2, 2, 4, 4], |i| ((i * 3 % 17) as f32) - 8.0);
        let cols = im2col(&x, &g).unwrap();
        let y = Tensor::from_fn(cols.shape(), |i| ((i * 11 % 23) as f32) - 11.0);
        let back = col2im(&y, 2, &g).unwrap();
        let lhs: f32 = cols
            .as_slice()
            .iter()
            .zip(y.as_slice())
            .map(|(&a, &b)| a * b)
            .sum();
        let rhs: f32 = x
            .as_slice()
            .iter()
            .zip(back.as_slice())
            .map(|(&a, &b)| a * b)
            .sum();
        assert!((lhs - rhs).abs() < 1e-2 * lhs.abs().max(1.0));
    }

    #[test]
    fn layout_shuffles_roundtrip() {
        let x = Tensor::from_fn(&[2, 3, 4, 5], |i| i as f32);
        let roundtrip = x.nchw_to_nhwc().unwrap().nhwc_to_nchw().unwrap();
        assert_eq!(roundtrip, x);
    }
}
