//! Deterministic random number generation.
//!
//! Every experiment in the workspace takes a single `u64` seed; purposes
//! (weight init, data generation, crossbar noise, device variation) each get
//! an independent substream derived with [`Rng::stream`], so adding noise
//! samples in one place never perturbs the data another component sees.

use crate::Tensor;

/// Named substreams derived from a root seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RngStream {
    /// Weight and parameter initialization.
    Init,
    /// Dataset generation, shuffling and augmentation.
    Data,
    /// Functional crossbar noise (the paper's `N(0, σ²)`).
    Noise,
    /// Device-to-device variation in the device-level simulator.
    Device,
    /// Anything else; the payload separates custom streams.
    Custom(u64),
}

impl RngStream {
    fn tag(self) -> u64 {
        match self {
            RngStream::Init => 0x1157_0001,
            RngStream::Data => 0xDA7A_0002,
            RngStream::Noise => 0x2015_0003,
            RngStream::Device => 0xDE1C_0004,
            RngStream::Custom(v) => 0xC057_0005 ^ v.rotate_left(17),
        }
    }
}

/// A seeded random number generator with Gaussian sampling.
///
/// The core generator is xoshiro256++ seeded through splitmix64 — both
/// implemented in-crate so the workspace has no external RNG dependency
/// and results are bit-reproducible across platforms. Gaussian values
/// come from the Box–Muller transform so the workspace does not need
/// `rand_distr`.
///
/// ```
/// use membit_tensor::{Rng, RngStream};
/// let mut a = Rng::from_seed(42).stream(RngStream::Noise);
/// let mut b = Rng::from_seed(42).stream(RngStream::Noise);
/// assert_eq!(a.normal(0.0, 1.0), b.normal(0.0, 1.0));
/// ```
#[derive(Debug, Clone)]
pub struct Rng {
    state: [u64; 4],
    seed: u64,
    cached_normal: Option<f32>,
}

/// The splitmix64 finalizer: a full-avalanche mix of one 64-bit word.
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn splitmix64(z: &mut u64) -> u64 {
    *z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    mix64(*z)
}

impl Rng {
    /// Creates a generator from a root seed.
    pub fn from_seed(seed: u64) -> Self {
        let mut z = seed;
        let state = [
            splitmix64(&mut z),
            splitmix64(&mut z),
            splitmix64(&mut z),
            splitmix64(&mut z),
        ];
        Self {
            state,
            seed,
            cached_normal: None,
        }
    }

    /// The next raw 64-bit output (xoshiro256++).
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform sample in `[0, 1)` with 24 bits of precision.
    fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Derives an independent generator for a named purpose.
    ///
    /// Streams are a pure function of `(root seed, purpose)`, so the same
    /// pair always yields the same sequence regardless of draw order
    /// elsewhere.
    pub fn stream(&self, purpose: RngStream) -> Rng {
        // splitmix64-style mix of the root seed with the purpose tag
        Rng::from_seed(mix64(
            self.seed ^ purpose.tag().wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ))
    }

    /// Derives an independent generator from this generator's root seed
    /// and a sequence of counter keys — counter-based substream
    /// derivation in the Philox/PCG spirit.
    ///
    /// The result is a pure function of `(seed, keys)`: it does not
    /// consume state from `self`, and the same `(seed, keys)` pair always
    /// yields the same sequence regardless of what has been drawn
    /// elsewhere or on which thread the derivation happens. The parallel
    /// crossbar engine keys its noise streams by
    /// `(nonce, pulse, sample, row_tile, col_tile)` so every noise draw
    /// is bitwise identical for any thread count and schedule.
    ///
    /// Derivations chain: `rng.substream(&[a]).substream(&[b])` is a
    /// well-defined stream distinct from `rng.substream(&[a, b])`.
    pub fn substream(&self, keys: &[u64]) -> Rng {
        let mut z = self.seed;
        for (i, &k) in keys.iter().enumerate() {
            // mix each key with its position so [a, b] and [b, a] (and
            // [x] vs [0, x]) land on unrelated streams
            z = mix64(z ^ mix64(k ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)));
        }
        Rng::from_seed(z)
    }

    /// Draws a 64-bit nonce, advancing this generator.
    ///
    /// Callers that fan work out over [`substream`](Self::substream)
    /// draw one nonce per top-level operation and include it in every
    /// derivation key, so repeated operations on the same generator see
    /// fresh (but still reproducible) noise.
    pub fn next_nonce(&mut self) -> u64 {
        self.next_u64()
    }

    /// The root seed this generator was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Uniform sample in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.next_f32()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is meaningless");
        // widening-multiply range reduction (Lemire): unbiased enough for
        // simulation purposes and branch-free
        ((u128::from(self.next_u64()) * n as u128) >> 64) as usize
    }

    /// Bernoulli draw with probability `p` of `true`.
    pub fn coin(&mut self, p: f32) -> bool {
        self.next_f32() < p
    }

    /// One fresh Box–Muller pair: the first sample already scaled to
    /// `(mean, std)`, the second as the raw unit spare `r·sinθ` (scaled at
    /// use time, exactly like [`normal`](Self::normal)'s cache).
    #[inline]
    fn normal_fresh_pair(&mut self, mean: f32, std: f32) -> (f32, f32) {
        // Draw u1 in (0, 1] to avoid ln(0).
        let u1: f32 = 1.0 - self.next_f32();
        let u2: f32 = self.next_f32();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        (mean + std * r * theta.cos(), r * theta.sin())
    }

    /// Gaussian sample via Box–Muller.
    pub fn normal(&mut self, mean: f32, std: f32) -> f32 {
        if let Some(z) = self.cached_normal.take() {
            return mean + std * z;
        }
        let (value, spare) = self.normal_fresh_pair(mean, std);
        self.cached_normal = Some(spare);
        value
    }

    /// Fills `out` with i.i.d. `N(mean, std)` samples, consuming both
    /// Box–Muller outputs per uniform pair directly instead of routing the
    /// spare through the per-call cache.
    ///
    /// Draw-for-draw bit-compatible with `out.len()` sequential
    /// [`normal`](Self::normal) calls: any pre-existing cached spare is
    /// consumed first and a trailing odd sample leaves its spare cached,
    /// so mixing `normal_fill` with `normal` never shifts the stream.
    pub fn normal_fill(&mut self, mean: f32, std: f32, out: &mut [f32]) {
        let mut iter = out.iter_mut();
        if self.cached_normal.is_some() {
            match iter.next() {
                Some(o) => *o = self.normal(mean, std),
                None => return,
            }
        }
        while let Some(a) = iter.next() {
            let (value, spare) = self.normal_fresh_pair(mean, std);
            *a = value;
            match iter.next() {
                Some(b) => *b = mean + std * spare,
                None => self.cached_normal = Some(spare),
            }
        }
    }

    /// Adds i.i.d. `N(0, std)` noise to every element of `out` — the
    /// accumulate form of [`normal_fill`](Self::normal_fill), with the
    /// same bit-compatibility guarantee.
    pub fn normal_accum(&mut self, std: f32, out: &mut [f32]) {
        let mut iter = out.iter_mut();
        if self.cached_normal.is_some() {
            match iter.next() {
                Some(o) => *o += self.normal(0.0, std),
                None => return,
            }
        }
        while let Some(a) = iter.next() {
            let (value, spare) = self.normal_fresh_pair(0.0, std);
            *a += value;
            match iter.next() {
                Some(b) => *b += 0.0 + std * spare,
                None => self.cached_normal = Some(spare),
            }
        }
    }

    /// Adds `N(0, factor·√vars[j])` noise to `out[j]` for every element
    /// with `vars[j] > 0`, skipping (and drawing nothing for) the rest —
    /// the per-column aggregated-variance pattern of the crossbar
    /// cycle-to-cycle read noise.
    ///
    /// Bit-compatible with the equivalent gated sequence of
    /// [`normal`](Self::normal) calls; the Box–Muller spare is kept in a
    /// local between gated draws and written back to the cache at the
    /// end.
    pub fn normal_accum_gated(&mut self, factor: f32, vars: &[f32], out: &mut [f32]) {
        let mut spare = self.cached_normal.take();
        for (o, &v) in out.iter_mut().zip(vars) {
            if v <= 0.0 {
                continue;
            }
            let std = factor * v.sqrt();
            match spare.take() {
                Some(z) => *o += 0.0 + std * z,
                None => {
                    let (value, z) = self.normal_fresh_pair(0.0, std);
                    *o += value;
                    spare = Some(z);
                }
            }
        }
        self.cached_normal = spare;
    }

    /// Tensor of i.i.d. Gaussian samples.
    pub fn normal_tensor(&mut self, shape: &[usize], mean: f32, std: f32) -> Tensor {
        Tensor::from_fn(shape, |_| self.normal(mean, std))
    }

    /// Tensor of i.i.d. uniform samples in `[lo, hi)`.
    pub fn uniform_tensor(&mut self, shape: &[usize], lo: f32, hi: f32) -> Tensor {
        Tensor::from_fn(shape, |_| self.uniform(lo, hi))
    }

    /// Kaiming/He-style fan-in scaled init used for conv/linear weights.
    pub fn kaiming_tensor(&mut self, shape: &[usize], fan_in: usize) -> Tensor {
        let std = (2.0 / fan_in.max(1) as f32).sqrt();
        self.normal_tensor(shape, 0.0, std)
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i + 1);
            items.swap(i, j);
        }
    }

    /// Serializes the complete generator state (xoshiro words, root seed,
    /// Box–Muller cache) into a fixed-size little-endian byte string, so a
    /// training checkpoint can freeze a stream mid-sequence and
    /// [`from_state_bytes`](Self::from_state_bytes) can resume it
    /// bit-exactly.
    pub fn state_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(Self::STATE_BYTES);
        for w in self.state {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out.extend_from_slice(&self.seed.to_le_bytes());
        match self.cached_normal {
            Some(z) => {
                out.push(1);
                out.extend_from_slice(&z.to_le_bytes());
            }
            None => {
                out.push(0);
                out.extend_from_slice(&0f32.to_le_bytes());
            }
        }
        out
    }

    /// Length of a [`state_bytes`](Self::state_bytes) serialization.
    pub const STATE_BYTES: usize = 4 * 8 + 8 + 1 + 4;

    /// Reconstructs a generator frozen by [`state_bytes`](Self::state_bytes).
    ///
    /// Returns `None` if `bytes` has the wrong length or a corrupt
    /// cache flag.
    pub fn from_state_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != Self::STATE_BYTES {
            return None;
        }
        let word = |i: usize| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&bytes[i * 8..(i + 1) * 8]);
            u64::from_le_bytes(b)
        };
        let state = [word(0), word(1), word(2), word(3)];
        let seed = word(4);
        let cached_normal = match bytes[40] {
            0 => None,
            1 => {
                let mut b = [0u8; 4];
                b.copy_from_slice(&bytes[41..45]);
                Some(f32::from_le_bytes(b))
            }
            _ => return None,
        };
        Some(Self {
            state,
            seed,
            cached_normal,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = Rng::from_seed(7);
        let mut b = Rng::from_seed(7);
        for _ in 0..100 {
            assert_eq!(a.normal(0.0, 1.0), b.normal(0.0, 1.0));
            assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
        }
    }

    #[test]
    fn streams_are_independent_and_reproducible() {
        let root = Rng::from_seed(99);
        let mut n1 = root.stream(RngStream::Noise);
        let mut n2 = root.stream(RngStream::Noise);
        let mut d = root.stream(RngStream::Data);
        let x1 = n1.normal(0.0, 1.0);
        assert_eq!(x1, n2.normal(0.0, 1.0));
        assert_ne!(x1, d.normal(0.0, 1.0));
    }

    #[test]
    fn substreams_are_pure_and_key_sensitive() {
        let mut root = Rng::from_seed(123);
        let a1 = root.substream(&[1, 2, 3]).normal(0.0, 1.0);
        // consuming state from the root must not perturb derivations
        root.normal(0.0, 1.0);
        let a2 = root.substream(&[1, 2, 3]).normal(0.0, 1.0);
        assert_eq!(a1, a2);
        // every key position matters
        for keys in [
            &[9, 2, 3][..],
            &[1, 9, 3][..],
            &[1, 2, 9][..],
            &[2, 1, 3][..],
            &[1, 2][..],
            &[0, 1, 2, 3][..],
        ] {
            assert_ne!(a1, root.substream(keys).normal(0.0, 1.0), "keys {keys:?}");
        }
        // chained derivation is distinct from the flat key list
        let chained = root.substream(&[1]).substream(&[2, 3]).normal(0.0, 1.0);
        assert_ne!(a1, chained);
    }

    #[test]
    fn nonce_advances_the_stream() {
        let mut a = Rng::from_seed(5);
        let mut b = Rng::from_seed(5);
        assert_eq!(a.next_nonce(), b.next_nonce());
        assert_ne!(a.next_nonce(), Rng::from_seed(5).next_nonce());
    }

    #[test]
    fn normal_moments_are_sane() {
        let mut rng = Rng::from_seed(3);
        let t = rng.normal_tensor(&[50_000], 2.0, 3.0);
        assert!((t.mean() - 2.0).abs() < 0.05, "mean was {}", t.mean());
        assert!((t.std() - 3.0).abs() < 0.05, "std was {}", t.std());
    }

    #[test]
    fn normal_fill_matches_sequential_normals_bitwise() {
        for len in [0usize, 1, 2, 5, 8, 33] {
            for warm in [false, true] {
                let mut seq = Rng::from_seed(77).stream(RngStream::Noise);
                let mut fill = Rng::from_seed(77).stream(RngStream::Noise);
                if warm {
                    // odd draw leaves a hot Box–Muller cache in both
                    seq.normal(0.0, 1.0);
                    fill.normal(0.0, 1.0);
                }
                let expect: Vec<f32> = (0..len).map(|_| seq.normal(0.25, 1.75)).collect();
                let mut got = vec![0.0f32; len];
                fill.normal_fill(0.25, 1.75, &mut got);
                assert_eq!(expect, got, "len {len} warm {warm}");
                // streams stay aligned afterwards
                assert_eq!(seq.normal(0.0, 1.0), fill.normal(0.0, 1.0));
            }
        }
    }

    #[test]
    fn normal_accum_matches_sequential_adds_bitwise() {
        for len in [1usize, 4, 7] {
            let mut seq = Rng::from_seed(31);
            let mut acc = Rng::from_seed(31);
            let base: Vec<f32> = (0..len).map(|i| i as f32 - 2.0).collect();
            let mut expect = base.clone();
            for o in expect.iter_mut() {
                *o += seq.normal(0.0, 0.6);
            }
            let mut got = base;
            acc.normal_accum(0.6, &mut got);
            assert_eq!(expect, got, "len {len}");
            assert_eq!(seq.normal(0.0, 1.0), acc.normal(0.0, 1.0));
        }
    }

    #[test]
    fn normal_accum_gated_matches_gated_sequential_draws() {
        let vars = [0.5f32, 0.0, 2.0, -1.0, 0.25, 3.0, 0.0, 1.0, 4.0];
        let mut seq = Rng::from_seed(63);
        let mut acc = Rng::from_seed(63);
        // warm the cache so the gated path must consume it first
        seq.normal(0.0, 1.0);
        acc.normal(0.0, 1.0);
        let factor = 0.3f32;
        let mut expect = vec![1.0f32; vars.len()];
        for (o, &v) in expect.iter_mut().zip(&vars) {
            if v > 0.0 {
                *o += seq.normal(0.0, factor * v.sqrt());
            }
        }
        let mut got = vec![1.0f32; vars.len()];
        acc.normal_accum_gated(factor, &vars, &mut got);
        assert_eq!(expect, got);
        // the trailing spare must land back in the cache identically
        assert_eq!(seq.normal(0.0, 1.0), acc.normal(0.0, 1.0));
        assert_eq!(seq.next_u64(), acc.next_u64());
    }

    #[test]
    fn uniform_range_respected() {
        let mut rng = Rng::from_seed(5);
        for _ in 0..1000 {
            let v = rng.uniform(-2.0, 5.0);
            assert!((-2.0..5.0).contains(&v));
            let i = rng.below(10);
            assert!(i < 10);
        }
    }

    #[test]
    fn coin_probability_rough() {
        let mut rng = Rng::from_seed(11);
        let heads = (0..10_000).filter(|_| rng.coin(0.25)).count();
        assert!((2000..3000).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng::from_seed(1);
        let mut v: Vec<usize> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>()); // astronomically unlikely
    }

    #[test]
    fn state_roundtrip_resumes_mid_sequence() {
        let mut rng = Rng::from_seed(21).stream(RngStream::Noise);
        // advance an odd number of normals so the Box–Muller cache is hot
        for _ in 0..7 {
            rng.normal(0.0, 1.0);
        }
        let frozen = rng.state_bytes();
        assert_eq!(frozen.len(), Rng::STATE_BYTES);
        let mut resumed = Rng::from_state_bytes(&frozen).unwrap();
        for _ in 0..64 {
            assert_eq!(rng.normal(0.0, 1.0), resumed.normal(0.0, 1.0));
            assert_eq!(rng.next_u64(), resumed.next_u64());
        }
        assert_eq!(rng.seed(), resumed.seed());
    }

    #[test]
    fn state_bytes_rejects_garbage() {
        assert!(Rng::from_state_bytes(&[]).is_none());
        assert!(Rng::from_state_bytes(&[0u8; 13]).is_none());
        let mut bad = Rng::from_seed(0).state_bytes();
        bad[40] = 7; // invalid cache flag
        assert!(Rng::from_state_bytes(&bad).is_none());
    }

    #[test]
    fn kaiming_scale_tracks_fan_in() {
        let mut rng = Rng::from_seed(13);
        let t = rng.kaiming_tensor(&[10_000], 50);
        let expect = (2.0f32 / 50.0).sqrt();
        assert!((t.std() - expect).abs() < 0.01);
    }
}
