//! Scoped-thread fan-out helpers.
//!
//! The workspace parallelizes its hot loops (blocked matmul, the crossbar
//! pulse pipeline) with `std::thread::scope` over contiguous chunks of a
//! mutable output buffer: no `unsafe`, no global thread pool, and — when
//! every worker's result is a pure function of its chunk — bitwise
//! determinism for any thread count.

/// Number of worker threads for `items` units of work: at most
/// `max_threads`, at least 1, and never so many that a worker gets fewer
/// than `min_items_per_thread` items.
pub fn plan_threads(items: usize, max_threads: usize, min_items_per_thread: usize) -> usize {
    max_threads
        .min(items / min_items_per_thread.max(1))
        .max(1)
}

/// Splits `data` into contiguous chunks of at most `chunk_len` elements
/// and runs `f(start_index, chunk)` for each, on scoped worker threads
/// when there is more than one chunk. Results are returned in chunk
/// order.
///
/// With a single chunk (or an empty `data`) the closure runs inline on
/// the calling thread, so `chunk_len >= data.len()` is the zero-overhead
/// serial path.
///
/// # Panics
///
/// Propagates worker panics.
pub fn scoped_chunks<T, R, F>(data: &mut [T], chunk_len: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut [T]) -> R + Sync,
{
    let chunk_len = chunk_len.max(1);
    if data.len() <= chunk_len {
        return vec![f(0, data)];
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = data
            .chunks_mut(chunk_len)
            .enumerate()
            .map(|(i, chunk)| {
                let f = &f;
                scope.spawn(move || f(i * chunk_len, chunk))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("scoped_chunks worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_threads_bounds() {
        assert_eq!(plan_threads(0, 8, 4), 1);
        assert_eq!(plan_threads(3, 8, 4), 1);
        assert_eq!(plan_threads(100, 8, 4), 8);
        assert_eq!(plan_threads(12, 8, 4), 3);
        assert_eq!(plan_threads(12, 8, 0), 8); // min clamped to 1
    }

    #[test]
    fn chunks_cover_data_in_order() {
        let mut data: Vec<u32> = vec![0; 10];
        let starts = scoped_chunks(&mut data, 3, |start, chunk| {
            for (i, v) in chunk.iter_mut().enumerate() {
                *v = (start + i) as u32;
            }
            start
        });
        assert_eq!(starts, vec![0, 3, 6, 9]);
        assert_eq!(data, (0..10).collect::<Vec<u32>>());
    }

    #[test]
    fn single_chunk_runs_inline() {
        let mut data = vec![1.0f32; 4];
        let r = scoped_chunks(&mut data, 100, |start, chunk| (start, chunk.len()));
        assert_eq!(r, vec![(0, 4)]);
        let r = scoped_chunks(&mut Vec::<f32>::new(), 4, |start, chunk| {
            (start, chunk.len())
        });
        assert_eq!(r, vec![(0, 0)]);
    }

    #[test]
    fn results_identical_for_any_chunking() {
        // NB: the fill must not call a libm transcendental (`sin` etc.):
        // in `--release` the compiler auto-vectorizes those per chunk
        // length and the vector/scalar paths round 1 ULP apart, which is
        // exactly the cross-chunk divergence this test exists to forbid.
        // Integer-derived values are bit-identical in every build mode.
        let fill = |g: usize| -> f32 {
            let h = (g as u32).wrapping_mul(2_654_435_761);
            (h >> 16) as f32 / 65_536.0 - 0.5
        };
        let compute = |chunk_len: usize| -> (Vec<f32>, f64) {
            let mut data = vec![0.0f32; 37];
            let partials = scoped_chunks(&mut data, chunk_len, |start, chunk| {
                let mut sum = 0.0f64;
                for (i, v) in chunk.iter_mut().enumerate() {
                    *v = fill(start + i);
                    sum += f64::from(*v);
                }
                sum
            });
            (data, partials.iter().sum())
        };
        let (d1, s1) = compute(37);
        for chunk in [1, 2, 5, 36] {
            let (d, s) = compute(chunk);
            assert_eq!(d1, d);
            assert!((s1 - s).abs() < 1e-9);
        }
    }
}
