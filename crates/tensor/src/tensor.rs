use std::fmt;

use crate::{Result, TensorError};

/// A dense, contiguous, row-major `f32` tensor.
///
/// All tensors in the `membit` workspace are contiguous; `reshape` is an
/// O(1) metadata change and `transpose` materializes a new buffer. This
/// keeps downstream consumers (the autodiff tape, the crossbar pulse
/// pipeline) free of stride bookkeeping.
///
/// ```
/// use membit_tensor::Tensor;
/// let t = Tensor::zeros(&[2, 3]);
/// assert_eq!(t.shape(), &[2, 3]);
/// assert_eq!(t.len(), 6);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Vec<usize>,
}

impl Tensor {
    /// Creates a tensor from a buffer and a shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` differs from
    /// the product of `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Result<Self> {
        let volume: usize = shape.iter().product();
        if data.len() != volume {
            return Err(TensorError::LengthMismatch {
                expected: volume,
                actual: data.len(),
            });
        }
        Ok(Self {
            data,
            shape: shape.to_vec(),
        })
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        Self {
            data: vec![value; shape.iter().product()],
            shape: shape.to_vec(),
        }
    }

    /// Creates a tensor of zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        Self::full(shape, 0.0)
    }

    /// Creates a tensor of ones.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// Creates a rank-0 (well, `[1]`-shaped) scalar tensor.
    pub fn scalar(value: f32) -> Self {
        Self {
            data: vec![value],
            shape: vec![1],
        }
    }

    /// Creates an `n`×`n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Creates a tensor by evaluating `f` at each flat index.
    pub fn from_fn(shape: &[usize], mut f: impl FnMut(usize) -> f32) -> Self {
        let volume: usize = shape.iter().product();
        Self {
            data: (0..volume).map(&mut f).collect(),
            shape: shape.to_vec(),
        }
    }

    /// Creates a 1-D tensor holding `start, start+step, ...` with `n` items.
    pub fn arange(start: f32, step: f32, n: usize) -> Self {
        Self::from_fn(&[n], |i| start + step * i as f32)
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// The tensor's rank (number of axes).
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrows the underlying buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrows the underlying buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns the single element of a one-element tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor has more than one element.
    pub fn item(&self) -> f32 {
        assert_eq!(
            self.data.len(),
            1,
            "item() requires a one-element tensor, shape was {:?}",
            self.shape
        );
        self.data[0]
    }

    /// Flat-index accessor.
    pub fn at(&self, flat: usize) -> f32 {
        self.data[flat]
    }

    /// Converts a multi-index to a flat offset.
    ///
    /// # Panics
    ///
    /// Panics if `idx.len() != rank` or any coordinate is out of bounds.
    pub fn offset(&self, idx: &[usize]) -> usize {
        assert_eq!(idx.len(), self.shape.len(), "index rank mismatch");
        let mut off = 0;
        for (i, (&ix, &dim)) in idx.iter().zip(&self.shape).enumerate() {
            assert!(ix < dim, "index {ix} out of bounds for axis {i} (dim {dim})");
            off = off * dim + ix;
        }
        off
    }

    /// Multi-index read.
    pub fn get(&self, idx: &[usize]) -> f32 {
        self.data[self.offset(idx)]
    }

    /// Multi-index write.
    pub fn set(&mut self, idx: &[usize], value: f32) {
        let off = self.offset(idx);
        self.data[off] = value;
    }

    /// Reinterprets the tensor with a new shape of equal volume.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the volumes differ.
    pub fn reshape(&self, shape: &[usize]) -> Result<Self> {
        let volume: usize = shape.iter().product();
        if volume != self.data.len() {
            return Err(TensorError::LengthMismatch {
                expected: volume,
                actual: self.data.len(),
            });
        }
        Ok(Self {
            data: self.data.clone(),
            shape: shape.to_vec(),
        })
    }

    /// Like [`reshape`](Self::reshape) but consumes the tensor (no copy).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the volumes differ.
    pub fn into_reshaped(mut self, shape: &[usize]) -> Result<Self> {
        let volume: usize = shape.iter().product();
        if volume != self.data.len() {
            return Err(TensorError::LengthMismatch {
                expected: volume,
                actual: self.data.len(),
            });
        }
        self.shape = shape.to_vec();
        Ok(self)
    }

    /// Materialized 2-D transpose.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] unless the tensor is rank 2.
    pub fn transpose(&self) -> Result<Self> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "transpose",
                expected: 2,
                actual: self.rank(),
            });
        }
        let (r, c) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0; self.data.len()];
        for i in 0..r {
            for j in 0..c {
                out[j * r + i] = self.data[i * c + j];
            }
        }
        Ok(Self {
            data: out,
            shape: vec![c, r],
        })
    }

    /// Returns a copy of row `i` of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or `i` is out of bounds.
    pub fn row(&self, i: usize) -> Vec<f32> {
        assert_eq!(self.rank(), 2, "row() requires a matrix");
        let c = self.shape[1];
        self.data[i * c..(i + 1) * c].to_vec()
    }

    /// Concatenates tensors along axis 0. All shapes must agree on the
    /// remaining axes.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] for an empty input list
    /// and [`TensorError::ShapeMismatch`] for inconsistent tail shapes.
    pub fn concat0(parts: &[Tensor]) -> Result<Tensor> {
        let Some(first) = parts.first() else {
            return Err(TensorError::InvalidArgument(
                "concat0 needs at least one tensor".into(),
            ));
        };
        let tail = &first.shape()[1..];
        let mut rows = 0usize;
        for p in parts {
            if p.rank() != first.rank() || &p.shape()[1..] != tail {
                return Err(TensorError::ShapeMismatch {
                    op: "concat0",
                    lhs: first.shape().to_vec(),
                    rhs: p.shape().to_vec(),
                });
            }
            rows += p.shape()[0];
        }
        let mut data = Vec::with_capacity(rows * tail.iter().product::<usize>());
        for p in parts {
            data.extend_from_slice(p.as_slice());
        }
        let mut shape = first.shape().to_vec();
        shape[0] = rows;
        Tensor::from_vec(data, &shape)
    }

    /// Splits the tensor along axis 0 into chunks of at most `chunk`
    /// leading entries (the final chunk may be smaller).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] for `chunk == 0` or a
    /// rank-0-like (empty-shape) tensor.
    pub fn split0(&self, chunk: usize) -> Result<Vec<Tensor>> {
        if chunk == 0 || self.shape.is_empty() {
            return Err(TensorError::InvalidArgument(
                "split0 needs chunk > 0 and rank ≥ 1".into(),
            ));
        }
        let n = self.shape[0];
        let per: usize = self.shape[1..].iter().product();
        let mut out = Vec::with_capacity(n.div_ceil(chunk.max(1)));
        let mut start = 0usize;
        while start < n {
            let end = (start + chunk).min(n);
            let mut shape = self.shape.clone();
            shape[0] = end - start;
            out.push(Tensor::from_vec(
                self.data[start * per..end * per].to_vec(),
                &shape,
            )?);
            start = end;
        }
        Ok(out)
    }

    /// Applies `f` elementwise, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Self {
            data: self.data.iter().map(|&x| f(x)).collect(),
            shape: self.shape.clone(),
        }
    }

    /// Applies `f` elementwise in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Combines two same-shaped tensors elementwise.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn zip_map(&self, other: &Self, f: impl Fn(f32, f32) -> f32) -> Result<Self> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                op: "zip_map",
                lhs: self.shape.clone(),
                rhs: other.shape.clone(),
            });
        }
        Ok(Self {
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
            shape: self.shape.clone(),
        })
    }

    /// `true` if every pairwise difference is within `tol` (and shapes match).
    pub fn allclose(&self, other: &Self, tol: f32) -> bool {
        self.shape == other.shape
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(&a, &b)| (a - b).abs() <= tol || (a.is_nan() && b.is_nan()))
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const PREVIEW: usize = 8;
        write!(f, "Tensor{:?} [", self.shape)?;
        for (i, v) in self.data.iter().take(PREVIEW).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        if self.data.len() > PREVIEW {
            write!(f, ", … {} more", self.data.len() - PREVIEW)?;
        }
        write!(f, "]")
    }
}

impl From<Vec<f32>> for Tensor {
    /// Wraps a buffer as a 1-D tensor.
    fn from(data: Vec<f32>) -> Self {
        let n = data.len();
        Self {
            data,
            shape: vec![n],
        }
    }
}

impl FromIterator<f32> for Tensor {
    fn from_iter<I: IntoIterator<Item = f32>>(iter: I) -> Self {
        Self::from(iter.into_iter().collect::<Vec<f32>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_checks_volume() {
        assert!(Tensor::from_vec(vec![1.0; 6], &[2, 3]).is_ok());
        assert!(matches!(
            Tensor::from_vec(vec![1.0; 5], &[2, 3]),
            Err(TensorError::LengthMismatch {
                expected: 6,
                actual: 5
            })
        ));
    }

    #[test]
    fn multi_index_roundtrip() {
        let mut t = Tensor::zeros(&[2, 3, 4]);
        t.set(&[1, 2, 3], 7.0);
        assert_eq!(t.get(&[1, 2, 3]), 7.0);
        assert_eq!(t.offset(&[1, 2, 3]), 12 + 2 * 4 + 3);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_index_panics() {
        let t = Tensor::zeros(&[2, 2]);
        t.get(&[0, 2]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::arange(0.0, 1.0, 6);
        let r = t.reshape(&[2, 3]).unwrap();
        assert_eq!(r.shape(), &[2, 3]);
        assert_eq!(r.as_slice(), t.as_slice());
        assert!(t.reshape(&[4, 2]).is_err());
    }

    #[test]
    fn transpose_matrix() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let tt = t.transpose().unwrap();
        assert_eq!(tt.shape(), &[3, 2]);
        assert_eq!(tt.as_slice(), &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
        // transposing twice is the identity
        assert_eq!(tt.transpose().unwrap(), t);
    }

    #[test]
    fn eye_is_identity_under_matmul() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let i = Tensor::eye(2);
        assert_eq!(t.matmul(&i).unwrap(), t);
    }

    #[test]
    fn map_and_zip_map() {
        let a = Tensor::from_vec(vec![1.0, -2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 4.0], &[2]).unwrap();
        assert_eq!(a.map(f32::abs).as_slice(), &[1.0, 2.0]);
        assert_eq!(a.zip_map(&b, |x, y| x * y).unwrap().as_slice(), &[3.0, -8.0]);
        assert!(a.zip_map(&Tensor::zeros(&[3]), |x, _| x).is_err());
    }

    #[test]
    fn allclose_tolerates_small_differences() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![1.0 + 1e-7, 2.0], &[2]).unwrap();
        assert!(a.allclose(&b, 1e-6));
        assert!(!a.allclose(&b, 1e-9));
        assert!(!a.allclose(&Tensor::zeros(&[3]), 1.0));
    }

    #[test]
    fn debug_preview_is_nonempty() {
        let t = Tensor::arange(0.0, 1.0, 20);
        let s = format!("{t:?}");
        assert!(s.contains("Tensor[20]"));
        assert!(s.contains("more"));
    }

    #[test]
    fn item_and_scalar() {
        assert_eq!(Tensor::scalar(3.5).item(), 3.5);
    }

    #[test]
    fn concat0_then_split0_roundtrip() {
        let a = Tensor::from_fn(&[2, 3], |i| i as f32);
        let b = Tensor::from_fn(&[1, 3], |i| 100.0 + i as f32);
        let c = Tensor::concat0(&[a.clone(), b.clone()]).unwrap();
        assert_eq!(c.shape(), &[3, 3]);
        assert_eq!(c.row(2), vec![100.0, 101.0, 102.0]);
        let parts = c.split0(2).unwrap();
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0], a);
        assert_eq!(parts[1].shape(), &[1, 3]);
        assert_eq!(parts[1], b);
    }

    #[test]
    fn concat0_validates() {
        assert!(Tensor::concat0(&[]).is_err());
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 4]);
        assert!(Tensor::concat0(&[a.clone(), b]).is_err());
        assert!(a.split0(0).is_err());
    }

    #[test]
    fn split0_chunk_larger_than_len() {
        let a = Tensor::from_fn(&[3], |i| i as f32);
        let parts = a.split0(10).unwrap();
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0], a);
    }

    #[test]
    fn collect_from_iterator() {
        let t: Tensor = (0..4).map(|i| i as f32).collect();
        assert_eq!(t.shape(), &[4]);
    }
}
