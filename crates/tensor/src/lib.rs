//! # membit-tensor
//!
//! Dense, contiguous, row-major `f32` tensors plus the numeric kernels the
//! rest of the `membit` workspace is built on: broadcast elementwise
//! arithmetic, a blocked (optionally multi-threaded) matrix multiply,
//! `im2col`/`col2im` for convolution lowering, axis reductions, and seeded
//! random number generation with an in-crate Gaussian sampler.
//!
//! The design goal is a *small, predictable* substrate for the autodiff and
//! crossbar-simulation crates rather than a general ndarray replacement:
//! tensors are always contiguous, which keeps the autodiff tape and the
//! crossbar pulse pipelines simple and cache friendly.
//!
//! ```
//! use membit_tensor::Tensor;
//!
//! # fn main() -> Result<(), membit_tensor::TensorError> {
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b)?;
//! assert_eq!(c.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod conv;
mod error;
mod matmul;
mod ops;
pub mod parallel;
mod reduce;
mod rng;
mod tensor;

pub use conv::{col2im, im2col, im2col_into, Conv2dGeometry};
pub use error::TensorError;
pub use matmul::{matmul_into, MatmulOptions};
pub use rng::{Rng, RngStream};
pub use tensor::Tensor;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, TensorError>;
