//! Reductions: full-tensor and single-axis sums, means, extrema, and the
//! per-channel statistics batch normalization needs.

use crate::{Result, Tensor, TensorError};

impl Tensor {
    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.as_slice().iter().sum()
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f32
        }
    }

    /// Maximum element (−∞ for an empty tensor).
    pub fn max(&self) -> f32 {
        self.as_slice().iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (+∞ for an empty tensor).
    pub fn min(&self) -> f32 {
        self.as_slice().iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Population variance of all elements.
    pub fn variance(&self) -> f32 {
        if self.is_empty() {
            return 0.0;
        }
        let m = self.mean();
        self.as_slice().iter().map(|&x| (x - m) * (x - m)).sum::<f32>() / self.len() as f32
    }

    /// Standard deviation of all elements.
    pub fn std(&self) -> f32 {
        self.variance().sqrt()
    }

    /// Sums out one axis, returning a tensor of rank `rank - 1`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::AxisOutOfRange`] for an invalid axis.
    pub fn sum_axis(&self, axis: usize) -> Result<Tensor> {
        if axis >= self.rank() {
            return Err(TensorError::AxisOutOfRange {
                axis,
                rank: self.rank(),
            });
        }
        let outer: usize = self.shape()[..axis].iter().product();
        let mid = self.shape()[axis];
        let inner: usize = self.shape()[axis + 1..].iter().product();
        let mut out = vec![0.0f32; outer * inner];
        let src = self.as_slice();
        for o in 0..outer {
            for m in 0..mid {
                let base = (o * mid + m) * inner;
                let obase = o * inner;
                for i in 0..inner {
                    out[obase + i] += src[base + i];
                }
            }
        }
        let mut shape: Vec<usize> = self.shape().to_vec();
        shape.remove(axis);
        if shape.is_empty() {
            shape.push(1);
        }
        Tensor::from_vec(out, &shape)
    }

    /// Mean along one axis.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::AxisOutOfRange`] for an invalid axis.
    pub fn mean_axis(&self, axis: usize) -> Result<Tensor> {
        let n = self.shape().get(axis).copied().unwrap_or(0).max(1) as f32;
        Ok(self.sum_axis(axis)?.mul_scalar(1.0 / n))
    }

    /// Per-channel sum of a `[N, C, ...]` tensor: sums over every axis
    /// except axis 1, returning `[C]`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for tensors of rank < 2.
    pub fn sum_channels(&self) -> Result<Tensor> {
        if self.rank() < 2 {
            return Err(TensorError::RankMismatch {
                op: "sum_channels",
                expected: 2,
                actual: self.rank(),
            });
        }
        let n = self.shape()[0];
        let c = self.shape()[1];
        let inner: usize = self.shape()[2..].iter().product();
        let mut out = vec![0.0f32; c];
        let src = self.as_slice();
        for ni in 0..n {
            for (ci, o) in out.iter_mut().enumerate() {
                let base = (ni * c + ci) * inner;
                *o += src[base..base + inner].iter().sum::<f32>();
            }
        }
        Tensor::from_vec(out, &[c])
    }

    /// Per-channel mean of a `[N, C, ...]` tensor, returning `[C]`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for tensors of rank < 2.
    pub fn mean_channels(&self) -> Result<Tensor> {
        let c = if self.rank() >= 2 { self.shape()[1] } else { 0 };
        let denom = (self.len() / c.max(1)).max(1) as f32;
        Ok(self.sum_channels()?.mul_scalar(1.0 / denom))
    }

    /// Per-channel population variance of a `[N, C, ...]` tensor,
    /// returning `[C]`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for tensors of rank < 2.
    pub fn var_channels(&self) -> Result<Tensor> {
        let mean = self.mean_channels()?;
        let n = self.shape()[0];
        let c = self.shape()[1];
        let inner: usize = self.shape()[2..].iter().product();
        let mut out = vec![0.0f32; c];
        let src = self.as_slice();
        for ni in 0..n {
            for (ci, o) in out.iter_mut().enumerate() {
                let base = (ni * c + ci) * inner;
                let m = mean.at(ci);
                *o += src[base..base + inner]
                    .iter()
                    .map(|&x| (x - m) * (x - m))
                    .sum::<f32>();
            }
        }
        let denom = (n * inner) as f32;
        Tensor::from_vec(out.into_iter().map(|v| v / denom).collect(), &[c])
    }

    /// Index of the maximum element in each row of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices.
    pub fn argmax_rows(&self) -> Result<Vec<usize>> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "argmax_rows",
                expected: 2,
                actual: self.rank(),
            });
        }
        let cols = self.shape()[1];
        Ok(self
            .as_slice()
            .chunks_exact(cols)
            .map(|row| {
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect())
    }

    /// Dot product with a same-shaped tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn dot(&self, other: &Tensor) -> Result<f32> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "dot",
                lhs: self.shape().to_vec(),
                rhs: other.shape().to_vec(),
            });
        }
        Ok(self
            .as_slice()
            .iter()
            .zip(other.as_slice())
            .map(|(&a, &b)| a * b)
            .sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_reductions() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        assert_eq!(t.sum(), 10.0);
        assert_eq!(t.mean(), 2.5);
        assert_eq!(t.max(), 4.0);
        assert_eq!(t.min(), 1.0);
        assert!((t.variance() - 1.25).abs() < 1e-6);
    }

    #[test]
    fn empty_tensor_reductions() {
        let t = Tensor::zeros(&[0]);
        assert_eq!(t.sum(), 0.0);
        assert_eq!(t.mean(), 0.0);
        assert_eq!(t.variance(), 0.0);
    }

    #[test]
    fn sum_axis_each_axis() {
        let t = Tensor::from_fn(&[2, 3], |i| i as f32); // [[0,1,2],[3,4,5]]
        assert_eq!(t.sum_axis(0).unwrap().as_slice(), &[3.0, 5.0, 7.0]);
        assert_eq!(t.sum_axis(1).unwrap().as_slice(), &[3.0, 12.0]);
        assert!(t.sum_axis(2).is_err());
    }

    #[test]
    fn sum_axis_reduces_to_scalar_shape() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        let s = t.sum_axis(0).unwrap();
        assert_eq!(s.shape(), &[1]);
        assert_eq!(s.item(), 6.0);
    }

    #[test]
    fn channel_statistics() {
        // two channels: channel 0 constant 1, channel 1 values {0, 2}
        let t = Tensor::from_vec(vec![1.0, 1.0, 0.0, 2.0, 1.0, 1.0, 0.0, 2.0], &[2, 2, 2])
            .unwrap();
        assert_eq!(t.mean_channels().unwrap().as_slice(), &[1.0, 1.0]);
        assert_eq!(t.var_channels().unwrap().as_slice(), &[0.0, 1.0]);
        assert_eq!(t.sum_channels().unwrap().as_slice(), &[4.0, 4.0]);
    }

    #[test]
    fn argmax_rows_basic() {
        let t = Tensor::from_vec(vec![0.1, 0.9, 0.5, 0.2, 0.3, 0.1], &[2, 3]).unwrap();
        assert_eq!(t.argmax_rows().unwrap(), vec![1, 1]);
        assert!(Tensor::zeros(&[3]).argmax_rows().is_err());
    }

    #[test]
    fn dot_product() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        let b = Tensor::from_vec(vec![4.0, 5.0, 6.0], &[3]).unwrap();
        assert_eq!(a.dot(&b).unwrap(), 32.0);
        assert!(a.dot(&Tensor::zeros(&[2])).is_err());
    }

    #[test]
    fn mean_axis_divides_by_axis_len() {
        let t = Tensor::from_fn(&[4, 2], |i| i as f32);
        let m = t.mean_axis(0).unwrap();
        assert_eq!(m.as_slice(), &[3.0, 4.0]);
    }
}
