//! Blocked, optionally multi-threaded matrix multiplication.
//!
//! The kernel uses the cache-friendly `i-k-j` loop order on row-major data
//! and parallelizes over row blocks with scoped threads, so no `unsafe` and
//! no global thread pool are required.

use crate::parallel::{plan_threads, scoped_chunks};
use crate::{Result, Tensor, TensorError};

/// Tuning knobs for [`matmul_into`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatmulOptions {
    /// Upper bound on worker threads (1 = single-threaded).
    pub max_threads: usize,
    /// Minimum number of left-hand rows per spawned thread; small products
    /// stay single-threaded to avoid spawn overhead.
    pub rows_per_thread: usize,
}

impl Default for MatmulOptions {
    fn default() -> Self {
        Self {
            max_threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            rows_per_thread: 16,
        }
    }
}

impl MatmulOptions {
    /// Options forcing single-threaded execution.
    pub fn serial() -> Self {
        Self {
            max_threads: 1,
            rows_per_thread: usize::MAX,
        }
    }
}

/// Computes `out = a · b` for row-major buffers.
///
/// `a` is `m×k`, `b` is `k×n`, `out` is `m×n`. `out` is fully overwritten.
fn kernel(out: &mut [f32], a: &[f32], b: &[f32], k: usize, n: usize) {
    for (arow, orow) in a.chunks_exact(k).zip(out.chunks_exact_mut(n)) {
        orow.fill(0.0);
        for (kk, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &b[kk * n..kk * n + n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
}

/// Multiplies `a` (`m×k`) by `b` (`k×n`) into a preallocated `out` (`m×n`).
///
/// Exposed separately from [`Tensor::matmul`] so hot loops (the autodiff
/// backward pass, the crossbar pulse pipeline) can reuse buffers.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] unless all tensors are rank 2, and
/// [`TensorError::ShapeMismatch`] if the inner or output dimensions
/// disagree.
pub fn matmul_into(out: &mut Tensor, a: &Tensor, b: &Tensor, opts: MatmulOptions) -> Result<()> {
    for (t, name) in [(a, "matmul lhs"), (b, "matmul rhs"), (&*out, "matmul out")] {
        if t.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: name,
                expected: 2,
                actual: t.rank(),
            });
        }
    }
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            lhs: a.shape().to_vec(),
            rhs: b.shape().to_vec(),
        });
    }
    if out.shape() != [m, n] {
        return Err(TensorError::ShapeMismatch {
            op: "matmul out",
            lhs: out.shape().to_vec(),
            rhs: vec![m, n],
        });
    }

    let threads = plan_threads(m, opts.max_threads, opts.rows_per_thread);
    if threads == 1 || n == 0 {
        kernel(out.as_mut_slice(), a.as_slice(), b.as_slice(), k, n);
        return Ok(());
    }

    let rows_per = m.div_ceil(threads);
    let (asl, bsl) = (a.as_slice(), b.as_slice());
    scoped_chunks(out.as_mut_slice(), rows_per * n, |start, oblock| {
        let r0 = start / n;
        let rows = oblock.len() / n;
        kernel(oblock, &asl[r0 * k..(r0 + rows) * k], bsl, k, n);
    });
    Ok(())
}

impl Tensor {
    /// Matrix product of two rank-2 tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices and
    /// [`TensorError::ShapeMismatch`] when inner dimensions disagree.
    ///
    /// ```
    /// use membit_tensor::Tensor;
    /// # fn main() -> Result<(), membit_tensor::TensorError> {
    /// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
    /// let b = Tensor::from_vec(vec![0.0, 1.0, 1.0, 0.0], &[2, 2])?;
    /// assert_eq!(a.matmul(&b)?.as_slice(), &[2.0, 1.0, 4.0, 3.0]);
    /// # Ok(())
    /// # }
    /// ```
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor> {
        self.matmul_with(other, MatmulOptions::default())
    }

    /// Matrix product with explicit threading options.
    ///
    /// # Errors
    ///
    /// Same as [`matmul`](Self::matmul).
    pub fn matmul_with(&self, other: &Tensor, opts: MatmulOptions) -> Result<Tensor> {
        if self.rank() != 2 || other.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "matmul",
                expected: 2,
                actual: if self.rank() != 2 {
                    self.rank()
                } else {
                    other.rank()
                },
            });
        }
        let mut out = Tensor::zeros(&[self.shape()[0], other.shape()[1]]);
        matmul_into(&mut out, self, other, opts)?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.shape()[0], a.shape()[1]);
        let n = b.shape()[1];
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for kk in 0..k {
                    acc += a.at(i * k + kk) * b.at(kk * n + j);
                }
                out.set(&[i, j], acc);
            }
        }
        out
    }

    #[test]
    fn matches_naive_small() {
        let a = Tensor::from_fn(&[3, 4], |i| (i as f32) * 0.5 - 2.0);
        let b = Tensor::from_fn(&[4, 5], |i| ((i * 7 % 11) as f32) - 5.0);
        let got = a.matmul(&b).unwrap();
        assert!(got.allclose(&naive(&a, &b), 1e-5));
    }

    #[test]
    fn parallel_matches_serial() {
        let a = Tensor::from_fn(&[97, 33], |i| ((i * 31 % 17) as f32) - 8.0);
        let b = Tensor::from_fn(&[33, 29], |i| ((i * 13 % 7) as f32) - 3.0);
        let serial = a.matmul_with(&b, MatmulOptions::serial()).unwrap();
        let parallel = a
            .matmul_with(
                &b,
                MatmulOptions {
                    max_threads: 4,
                    rows_per_thread: 8,
                },
            )
            .unwrap();
        assert!(serial.allclose(&parallel, 1e-4));
    }

    #[test]
    fn inner_dim_mismatch_errors() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn rank_errors() {
        let a = Tensor::zeros(&[6]);
        let b = Tensor::zeros(&[6, 1]);
        assert!(a.matmul(&b).is_err());
        assert!(b.matmul(&a).is_err());
    }

    #[test]
    fn matmul_into_validates_out_shape() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[3, 4]);
        let mut bad = Tensor::zeros(&[2, 5]);
        assert!(matmul_into(&mut bad, &a, &b, MatmulOptions::serial()).is_err());
    }

    #[test]
    fn identity_and_zero() {
        let a = Tensor::from_fn(&[5, 5], |i| i as f32);
        assert!(a.matmul(&Tensor::eye(5)).unwrap().allclose(&a, 0.0));
        let z = Tensor::zeros(&[5, 5]);
        assert!(a.matmul(&z).unwrap().allclose(&z, 0.0));
    }
}
