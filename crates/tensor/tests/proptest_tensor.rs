//! Property-based tests for the tensor substrate: algebraic identities of
//! the elementwise ops, matmul linearity, layout round-trips, reduction
//! consistency, and RNG determinism.

use membit_tensor::{im2col, col2im, Conv2dGeometry, MatmulOptions, Rng, RngStream, Tensor};
use proptest::prelude::*;

/// A small shape: rank 1–3, dims 1–6.
fn shape_strategy() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..6, 1..4)
}

/// A tensor of the given shape with bounded values.
fn tensor_of(shape: Vec<usize>) -> impl Strategy<Value = Tensor> {
    let volume: usize = shape.iter().product();
    prop::collection::vec(-100.0f32..100.0, volume)
        .prop_map(move |data| Tensor::from_vec(data, &shape).expect("volume matches"))
}

fn tensor_strategy() -> impl Strategy<Value = Tensor> {
    shape_strategy().prop_flat_map(tensor_of)
}

fn matrix_strategy(r: std::ops::Range<usize>) -> impl Strategy<Value = Tensor> {
    (r.clone(), r)
        .prop_flat_map(|(m, n)| tensor_of(vec![m, n]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn add_commutes(t in tensor_strategy()) {
        let other = t.map(|v| v * 0.5 - 1.0);
        let ab = t.add(&other).unwrap();
        let ba = other.add(&t).unwrap();
        prop_assert!(ab.allclose(&ba, 1e-6));
    }

    #[test]
    fn add_neg_is_sub(t in tensor_strategy()) {
        let other = t.map(|v| v.sin() * 3.0);
        let direct = t.sub(&other).unwrap();
        let via_neg = t.add(&other.neg()).unwrap();
        prop_assert!(direct.allclose(&via_neg, 1e-5));
    }

    #[test]
    fn mul_by_one_is_identity(t in tensor_strategy()) {
        let ones = Tensor::ones(t.shape());
        prop_assert!(t.mul(&ones).unwrap().allclose(&t, 0.0));
        prop_assert!(t.mul_scalar(1.0).allclose(&t, 0.0));
    }

    #[test]
    fn reshape_roundtrip_preserves_data(t in tensor_strategy()) {
        let flat = t.reshape(&[t.len()]).unwrap();
        let back = flat.reshape(t.shape()).unwrap();
        prop_assert_eq!(back, t);
    }

    #[test]
    fn double_transpose_is_identity(m in matrix_strategy(1..8)) {
        prop_assert_eq!(m.transpose().unwrap().transpose().unwrap(), m);
    }

    #[test]
    fn matmul_distributes_over_addition(
        a in matrix_strategy(1..6),
        seed in 0u64..1000,
    ) {
        let (rows, cols) = (a.shape()[0], a.shape()[1]);
        let mut rng = Rng::from_seed(seed);
        let b = rng.uniform_tensor(&[cols, 3], -5.0, 5.0);
        let c = rng.uniform_tensor(&[cols, 3], -5.0, 5.0);
        let lhs = a.matmul(&b.add(&c).unwrap()).unwrap();
        let rhs = a.matmul(&b).unwrap().add(&a.matmul(&c).unwrap()).unwrap();
        let _ = rows;
        prop_assert!(lhs.allclose(&rhs, 1e-2));
    }

    #[test]
    fn matmul_scalar_pullout(m in matrix_strategy(1..6), k in -4.0f32..4.0) {
        let other = m.transpose().unwrap();
        let lhs = m.mul_scalar(k).matmul(&other).unwrap();
        let rhs = m.matmul(&other).unwrap().mul_scalar(k);
        prop_assert!(lhs.allclose(&rhs, 1e-1 + 1e-3 * rhs.abs().max()));
    }

    #[test]
    fn parallel_matmul_matches_serial(seed in 0u64..500) {
        let mut rng = Rng::from_seed(seed);
        let a = rng.uniform_tensor(&[37, 19], -2.0, 2.0);
        let b = rng.uniform_tensor(&[19, 23], -2.0, 2.0);
        let serial = a.matmul_with(&b, MatmulOptions::serial()).unwrap();
        let parallel = a
            .matmul_with(&b, MatmulOptions { max_threads: 4, rows_per_thread: 4 })
            .unwrap();
        prop_assert!(serial.allclose(&parallel, 1e-4));
    }

    #[test]
    fn sum_axis_agrees_with_total(t in tensor_strategy()) {
        let total: f32 = t.sum();
        let mut reduced = t.clone();
        while reduced.rank() > 1 || reduced.len() > 1 {
            reduced = reduced.sum_axis(0).unwrap();
            if reduced.rank() == 1 && reduced.len() == 1 {
                break;
            }
            if reduced.rank() == 1 {
                reduced = reduced.sum_axis(0).unwrap();
                break;
            }
        }
        prop_assert!((reduced.item() - total).abs() <= 1e-3 * total.abs().max(1.0) * t.len() as f32);
    }

    #[test]
    fn channel_stats_shift_invariance(seed in 0u64..500, shift in -10.0f32..10.0) {
        let mut rng = Rng::from_seed(seed);
        let t = rng.uniform_tensor(&[3, 4, 5], -5.0, 5.0);
        let shifted = t.add_scalar(shift);
        let var_a = t.var_channels().unwrap();
        let var_b = shifted.var_channels().unwrap();
        prop_assert!(var_a.allclose(&var_b, 1e-2));
        let mean_diff = shifted
            .mean_channels()
            .unwrap()
            .sub(&t.mean_channels().unwrap())
            .unwrap();
        for &d in mean_diff.as_slice() {
            prop_assert!((d - shift).abs() < 1e-3);
        }
    }

    #[test]
    fn nchw_nhwc_roundtrip(seed in 0u64..500) {
        let mut rng = Rng::from_seed(seed);
        let t = rng.uniform_tensor(&[2, 3, 4, 5], -1.0, 1.0);
        prop_assert_eq!(t.nchw_to_nhwc().unwrap().nhwc_to_nchw().unwrap(), t);
    }

    #[test]
    fn im2col_col2im_adjointness(seed in 0u64..200) {
        // ⟨im2col(x), y⟩ = ⟨x, col2im(y)⟩
        let mut rng = Rng::from_seed(seed);
        let geom = Conv2dGeometry::new(2, 5, 5, 3, 3, 1, 1).unwrap();
        let x = rng.uniform_tensor(&[1, 2, 5, 5], -2.0, 2.0);
        let cols = im2col(&x, &geom).unwrap();
        let y = rng.uniform_tensor(cols.shape(), -2.0, 2.0);
        let back = col2im(&y, 1, &geom).unwrap();
        let lhs = cols.dot(&y).unwrap();
        let rhs = x.dot(&back).unwrap();
        prop_assert!((lhs - rhs).abs() < 1e-2 * lhs.abs().max(1.0));
    }

    #[test]
    fn rng_streams_reproducible(seed in 0u64..10_000) {
        let a = Rng::from_seed(seed).stream(RngStream::Noise).normal_tensor(&[16], 0.0, 1.0);
        let b = Rng::from_seed(seed).stream(RngStream::Noise).normal_tensor(&[16], 0.0, 1.0);
        prop_assert_eq!(a.clone(), b);
        let c = Rng::from_seed(seed ^ 1).stream(RngStream::Noise).normal_tensor(&[16], 0.0, 1.0);
        prop_assert_ne!(a, c);
    }

    #[test]
    fn clamp_bounds_hold(t in tensor_strategy(), lo in -5.0f32..0.0, width in 0.1f32..5.0) {
        let hi = lo + width;
        let clamped = t.clamp(lo, hi);
        prop_assert!(clamped.min() >= lo - 1e-6);
        prop_assert!(clamped.max() <= hi + 1e-6);
    }

    #[test]
    fn signum_matches_definition(t in tensor_strategy()) {
        for (i, &v) in t.as_slice().iter().enumerate() {
            let s = t.signum().at(i);
            if v > 0.0 { prop_assert_eq!(s, 1.0); }
            else if v < 0.0 { prop_assert_eq!(s, -1.0); }
            else { prop_assert_eq!(s, 0.0); }
        }
    }
}
