//! Shapes: a structurally different procedural task (geometric figures on
//! noisy backgrounds) used for robustness and transfer checks.

use membit_tensor::{Rng, RngStream, Tensor, TensorError};

use crate::dataset::Dataset;
use crate::Result;

/// Generation parameters for [`shapes`].
#[derive(Debug, Clone, PartialEq)]
pub struct ShapesConfig {
    /// Training samples per class.
    pub train_per_class: usize,
    /// Test samples per class.
    pub test_per_class: usize,
    /// Image height/width (square).
    pub size: usize,
    /// Std-dev of background noise.
    pub noise: f32,
}

impl ShapesConfig {
    /// Default: 16×16 images, 200 train / 50 test per class.
    pub fn default_experiment() -> Self {
        Self {
            train_per_class: 200,
            test_per_class: 50,
            size: 16,
            noise: 0.3,
        }
    }

    /// Miniature configuration for unit tests.
    pub fn tiny() -> Self {
        Self {
            train_per_class: 10,
            test_per_class: 4,
            size: 8,
            noise: 0.2,
        }
    }
}

/// The four shape classes.
const NUM_CLASSES: usize = 4;

fn draw_shape(class: usize, size: usize, rng: &mut Rng) -> Vec<f32> {
    let s = size as f32;
    let cx = rng.uniform(0.35 * s, 0.65 * s);
    let cy = rng.uniform(0.35 * s, 0.65 * s);
    let r = rng.uniform(0.2 * s, 0.35 * s);
    let mut img = vec![-1.0f32; size * size];
    for y in 0..size {
        for x in 0..size {
            let (fx, fy) = (x as f32 - cx, y as f32 - cy);
            let inside = match class {
                // circle
                0 => fx * fx + fy * fy <= r * r,
                // square
                1 => fx.abs() <= r * 0.9 && fy.abs() <= r * 0.9,
                // cross
                2 => fx.abs() <= r * 0.35 || fy.abs() <= r * 0.35,
                // triangle (upward)
                _ => fy <= r * 0.8 && fy >= -r * 0.8 && fx.abs() <= (fy + r) * 0.5,
            };
            if inside {
                img[y * size + x] = 1.0;
            }
        }
    }
    img
}

fn build_split(cfg: &ShapesConfig, per_class: usize, rng: &mut Rng) -> Result<Dataset> {
    let n = NUM_CLASSES * per_class;
    let mut data = Vec::with_capacity(n * cfg.size * cfg.size);
    let mut labels = Vec::with_capacity(n);
    for class in 0..NUM_CLASSES {
        for _ in 0..per_class {
            let img = draw_shape(class, cfg.size, rng);
            data.extend(img.iter().map(|&v| {
                (v + if cfg.noise > 0.0 {
                    rng.normal(0.0, cfg.noise)
                } else {
                    0.0
                })
                .clamp(-1.0, 1.0)
            }));
            labels.push(class);
        }
    }
    let images = Tensor::from_vec(data, &[n, 1, cfg.size, cfg.size])?;
    Ok(Dataset::new(images, labels, NUM_CLASSES)?.shuffled(rng))
}

/// Generates `(train, test)` splits of the 4-class Shapes task.
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] for a degenerate size.
pub fn shapes(cfg: &ShapesConfig, seed: u64) -> Result<(Dataset, Dataset)> {
    if cfg.size < 4 {
        return Err(TensorError::InvalidArgument(
            "shapes images must be at least 4×4".into(),
        ));
    }
    if cfg.noise < 0.0 {
        return Err(TensorError::InvalidArgument(
            "noise must be non-negative".into(),
        ));
    }
    let root = Rng::from_seed(seed).stream(RngStream::Data);
    let mut train_rng = root.stream(RngStream::Custom(10));
    let mut test_rng = root.stream(RngStream::Custom(11));
    Ok((
        build_split(cfg, cfg.train_per_class, &mut train_rng)?,
        build_split(cfg, cfg.test_per_class, &mut test_rng)?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_shapes() {
        let (train, test) = shapes(&ShapesConfig::tiny(), 0).unwrap();
        assert_eq!(train.len(), 40);
        assert_eq!(test.len(), 16);
        assert_eq!(train.num_classes(), 4);
        assert_eq!(train.sample_shape(), &[1, 8, 8]);
    }

    #[test]
    fn deterministic() {
        let (a, _) = shapes(&ShapesConfig::tiny(), 3).unwrap();
        let (b, _) = shapes(&ShapesConfig::tiny(), 3).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn classes_have_different_mass() {
        // crosses and circles cover different pixel fractions — sanity
        // check that classes are visually distinct
        let mut rng = Rng::from_seed(1);
        let circle = draw_shape(0, 16, &mut rng);
        let cross = draw_shape(2, 16, &mut rng);
        let mass = |img: &[f32]| img.iter().filter(|&&v| v > 0.0).count();
        assert!(mass(&circle) > 10);
        assert!(mass(&cross) > 10);
    }

    #[test]
    fn degenerate_configs_rejected() {
        let mut cfg = ShapesConfig::tiny();
        cfg.size = 2;
        assert!(shapes(&cfg, 0).is_err());
        let mut cfg2 = ShapesConfig::tiny();
        cfg2.noise = -0.5;
        assert!(shapes(&cfg2, 0).is_err());
    }

    #[test]
    fn values_bounded() {
        let (train, _) = shapes(&ShapesConfig::tiny(), 2).unwrap();
        assert!(train.images().max() <= 1.0);
        assert!(train.images().min() >= -1.0);
    }
}
