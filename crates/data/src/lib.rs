//! # membit-data
//!
//! Procedural image-classification datasets for the `membit` workspace.
//!
//! The GBO paper evaluates on CIFAR-10, which is unavailable offline; per
//! the reproduction plan (DESIGN.md §2) we substitute **SynthCIFAR** — a
//! seeded, procedurally generated 10-class dataset of small RGB images
//! built from class-conditional smooth prototypes plus per-sample
//! deformation and pixel noise. It exercises exactly the same model code
//! path (3-channel NCHW input, 10-way softmax) with controllable
//! difficulty, and a secondary **Shapes** dataset provides a structurally
//! different task for robustness checks.
//!
//! ```
//! use membit_data::{synth_cifar, SynthCifarConfig};
//!
//! # fn main() -> Result<(), membit_tensor::TensorError> {
//! let (train, test) = synth_cifar(&SynthCifarConfig::tiny(), 42)?;
//! assert_eq!(train.num_classes(), 10);
//! let (images, labels) = train.batch(0, 8)?;
//! assert_eq!(images.shape()[0], labels.len());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cifar;
mod dataset;
mod shapes;
mod synth;

pub use cifar::load_cifar10;
pub use dataset::Dataset;
pub use shapes::{shapes, ShapesConfig};
pub use synth::{synth_cifar, SynthCifarConfig};

/// Convenience alias matching [`membit_tensor::Result`].
pub type Result<T> = std::result::Result<T, membit_tensor::TensorError>;
