//! Labeled image collections with batching and shuffling.

use membit_tensor::{Rng, Tensor, TensorError};

use crate::Result;

/// An in-memory labeled dataset of `[N, C, H, W]` images.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    images: Tensor,
    labels: Vec<usize>,
    num_classes: usize,
}

impl Dataset {
    /// Bundles images with labels.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if the label count doesn't
    /// match the image count, a label is out of range, images are not
    /// rank 4, or any pixel is NaN/±Inf (corrupted inputs poison the loss
    /// many batches later — reject them at the door instead).
    pub fn new(images: Tensor, labels: Vec<usize>, num_classes: usize) -> Result<Self> {
        if images.rank() != 4 {
            return Err(TensorError::RankMismatch {
                op: "dataset images",
                expected: 4,
                actual: images.rank(),
            });
        }
        if images.shape()[0] != labels.len() {
            return Err(TensorError::InvalidArgument(format!(
                "{} images but {} labels",
                images.shape()[0],
                labels.len()
            )));
        }
        if let Some(&bad) = labels.iter().find(|&&y| y >= num_classes) {
            return Err(TensorError::InvalidArgument(format!(
                "label {bad} out of range for {num_classes} classes"
            )));
        }
        if let Some(pos) = images.as_slice().iter().position(|v| !v.is_finite()) {
            let per = images.len() / labels.len().max(1);
            return Err(TensorError::InvalidArgument(format!(
                "non-finite pixel at flat index {pos} (sample {})",
                pos / per.max(1)
            )));
        }
        Ok(Self {
            images,
            labels,
            num_classes,
        })
    }

    /// Number of samples.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` if the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Shape of one sample `[C, H, W]`.
    pub fn sample_shape(&self) -> &[usize] {
        &self.images.shape()[1..]
    }

    /// All images (`[N, C, H, W]`).
    pub fn images(&self) -> &Tensor {
        &self.images
    }

    /// All labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Extracts the batch starting at `start` with up to `size` samples
    /// (truncated at the end of the dataset).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if `start` is past the end
    /// or `size` is zero.
    pub fn batch(&self, start: usize, size: usize) -> Result<(Tensor, Vec<usize>)> {
        if start >= self.len() || size == 0 {
            return Err(TensorError::InvalidArgument(format!(
                "invalid batch start {start} (len {}) or size {size}",
                self.len()
            )));
        }
        let end = (start + size).min(self.len());
        let per = self.images.len() / self.len();
        let data = self.images.as_slice()[start * per..end * per].to_vec();
        let mut shape = self.images.shape().to_vec();
        shape[0] = end - start;
        Ok((
            Tensor::from_vec(data, &shape)?,
            self.labels[start..end].to_vec(),
        ))
    }

    /// Iterates over batches of `size` in order.
    pub fn batches(&self, size: usize) -> impl Iterator<Item = (Tensor, Vec<usize>)> + '_ {
        let n = self.len();
        (0..n)
            .step_by(size.max(1))
            .map(move |start| self.batch(start, size).expect("in-range batch"))
    }

    /// Returns a copy with samples permuted by `rng` (for epoch
    /// shuffling).
    pub fn shuffled(&self, rng: &mut Rng) -> Dataset {
        let n = self.len();
        let mut order: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut order);
        let per = self.images.len() / n.max(1);
        let src = self.images.as_slice();
        let mut data = Vec::with_capacity(self.images.len());
        let mut labels = Vec::with_capacity(n);
        for &i in &order {
            data.extend_from_slice(&src[i * per..(i + 1) * per]);
            labels.push(self.labels[i]);
        }
        Dataset {
            images: Tensor::from_vec(data, self.images.shape()).expect("same volume"),
            labels,
            num_classes: self.num_classes,
        }
    }

    /// Per-class sample counts.
    pub fn class_histogram(&self) -> Vec<usize> {
        let mut h = vec![0usize; self.num_classes];
        for &y in &self.labels {
            h[y] += 1;
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make(n: usize) -> Dataset {
        let images = Tensor::from_fn(&[n, 1, 2, 2], |i| i as f32);
        let labels = (0..n).map(|i| i % 3).collect();
        Dataset::new(images, labels, 3).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(Dataset::new(Tensor::zeros(&[2, 3]), vec![0, 0], 1).is_err());
        assert!(Dataset::new(Tensor::zeros(&[2, 1, 2, 2]), vec![0], 1).is_err());
        assert!(Dataset::new(Tensor::zeros(&[2, 1, 2, 2]), vec![0, 5], 3).is_err());
    }

    #[test]
    fn non_finite_pixels_rejected() {
        for poison in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
            let mut data = vec![0.0f32; 8];
            data[6] = poison;
            let images = Tensor::from_vec(data, &[2, 1, 2, 2]).unwrap();
            let err = Dataset::new(images, vec![0, 1], 2).unwrap_err();
            let msg = err.to_string();
            assert!(msg.contains("non-finite"), "{msg}");
            assert!(msg.contains("sample 1"), "{msg}");
        }
    }

    #[test]
    fn batch_extracts_contiguous_samples() {
        let d = make(10);
        let (imgs, labels) = d.batch(2, 3).unwrap();
        assert_eq!(imgs.shape(), &[3, 1, 2, 2]);
        assert_eq!(labels, vec![2, 0, 1]);
        assert_eq!(imgs.at(0), 8.0); // sample 2 starts at flat 2·4
    }

    #[test]
    fn final_batch_truncates() {
        let d = make(10);
        let (imgs, labels) = d.batch(8, 4).unwrap();
        assert_eq!(imgs.shape()[0], 2);
        assert_eq!(labels.len(), 2);
    }

    #[test]
    fn batch_bounds_checked() {
        let d = make(4);
        assert!(d.batch(4, 1).is_err());
        assert!(d.batch(0, 0).is_err());
    }

    #[test]
    fn batches_cover_everything_once() {
        let d = make(10);
        let total: usize = d.batches(3).map(|(_, l)| l.len()).sum();
        assert_eq!(total, 10);
        assert_eq!(d.batches(3).count(), 4);
    }

    #[test]
    fn shuffled_is_permutation() {
        let d = make(20);
        let mut rng = Rng::from_seed(0);
        let s = d.shuffled(&mut rng);
        assert_eq!(s.len(), 20);
        assert_eq!(s.class_histogram(), d.class_histogram());
        assert_ne!(s.labels(), d.labels()); // overwhelmingly likely
        // image/label pairing preserved: sample with first pixel 4k has label k%3
        for i in 0..20 {
            let first_pixel = s.images().at(i * 4);
            let orig_index = (first_pixel / 4.0) as usize;
            assert_eq!(s.labels()[i], orig_index % 3);
        }
    }

    #[test]
    fn histogram_counts() {
        let d = make(9);
        assert_eq!(d.class_histogram(), vec![3, 3, 3]);
        assert_eq!(d.sample_shape(), &[1, 2, 2]);
    }
}
