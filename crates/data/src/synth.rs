//! SynthCIFAR: the procedural CIFAR-10 stand-in.
//!
//! Each class owns a smooth random prototype image (a sum of random 2-D
//! cosine waves per channel). A sample is its class prototype after a
//! random circular shift, optional horizontal flip, contrast jitter and
//! i.i.d. pixel noise — difficult enough that a VGG9-BWNN lands in the
//! low-90 % range, mirroring the paper's clean CIFAR-10 accuracy, while
//! generating in milliseconds with full determinism.

use membit_tensor::{Rng, RngStream, Tensor, TensorError};

use crate::dataset::Dataset;
use crate::Result;

/// Generation parameters for [`synth_cifar`].
#[derive(Debug, Clone, PartialEq)]
pub struct SynthCifarConfig {
    /// Number of classes.
    pub num_classes: usize,
    /// Training samples per class.
    pub train_per_class: usize,
    /// Test samples per class.
    pub test_per_class: usize,
    /// Image channels.
    pub channels: usize,
    /// Image height.
    pub height: usize,
    /// Image width.
    pub width: usize,
    /// Number of cosine waves per channel in each prototype.
    pub waves: usize,
    /// Std-dev of additive pixel noise.
    pub pixel_noise: f32,
    /// Maximum circular shift (pixels) in each axis.
    pub max_shift: usize,
    /// Whether to apply random horizontal flips.
    pub flip: bool,
    /// Multiplicative contrast jitter half-range (0.2 ⇒ ×[0.8, 1.2]).
    pub contrast_jitter: f32,
}

impl SynthCifarConfig {
    /// Default experiment configuration: 10 classes of 3×16×16 images,
    /// 400 train / 100 test per class.
    pub fn default_experiment() -> Self {
        Self {
            num_classes: 10,
            train_per_class: 400,
            test_per_class: 100,
            channels: 3,
            height: 16,
            width: 16,
            waves: 4,
            pixel_noise: 0.35,
            max_shift: 2,
            flip: false,
            contrast_jitter: 0.2,
        }
    }

    /// A miniature configuration for unit tests (4 classes, 8×8, tens of
    /// samples).
    pub fn tiny() -> Self {
        Self {
            num_classes: 10,
            train_per_class: 12,
            test_per_class: 4,
            channels: 3,
            height: 8,
            width: 8,
            waves: 3,
            pixel_noise: 0.25,
            max_shift: 1,
            flip: false,
            contrast_jitter: 0.1,
        }
    }

    fn validate(&self) -> Result<()> {
        if self.num_classes == 0
            || self.channels == 0
            || self.height == 0
            || self.width == 0
            || self.waves == 0
        {
            return Err(TensorError::InvalidArgument(
                "all SynthCifar dimensions must be nonzero".into(),
            ));
        }
        if self.pixel_noise < 0.0 || self.contrast_jitter < 0.0 {
            return Err(TensorError::InvalidArgument(
                "noise parameters must be non-negative".into(),
            ));
        }
        Ok(())
    }

    fn pixels(&self) -> usize {
        self.channels * self.height * self.width
    }
}

/// One smooth prototype image in `[-1, 1]`.
fn prototype(cfg: &SynthCifarConfig, rng: &mut Rng) -> Vec<f32> {
    let (c, h, w) = (cfg.channels, cfg.height, cfg.width);
    let mut img = vec![0.0f32; cfg.pixels()];
    for ci in 0..c {
        for _ in 0..cfg.waves {
            let fy = rng.uniform(0.5, 3.0);
            let fx = rng.uniform(0.5, 3.0);
            let phase = rng.uniform(0.0, std::f32::consts::TAU);
            let amp = rng.uniform(0.4, 1.0);
            for y in 0..h {
                for x in 0..w {
                    let arg = std::f32::consts::TAU
                        * (fy * y as f32 / h as f32 + fx * x as f32 / w as f32)
                        + phase;
                    img[(ci * h + y) * w + x] += amp * arg.cos();
                }
            }
        }
    }
    // normalize each image to roughly unit range
    let max_abs = img.iter().fold(0.0f32, |m, &v| m.max(v.abs())).max(1e-6);
    for v in &mut img {
        *v /= max_abs;
    }
    img
}

/// Renders one sample from its class prototype.
fn sample(cfg: &SynthCifarConfig, proto: &[f32], rng: &mut Rng) -> Vec<f32> {
    let (c, h, w) = (cfg.channels, cfg.height, cfg.width);
    let dy = if cfg.max_shift > 0 {
        rng.below(2 * cfg.max_shift + 1) as isize - cfg.max_shift as isize
    } else {
        0
    };
    let dx = if cfg.max_shift > 0 {
        rng.below(2 * cfg.max_shift + 1) as isize - cfg.max_shift as isize
    } else {
        0
    };
    let flip = cfg.flip && rng.coin(0.5);
    let contrast = 1.0 + rng.uniform(-cfg.contrast_jitter, cfg.contrast_jitter);
    let mut out = vec![0.0f32; cfg.pixels()];
    for ci in 0..c {
        for y in 0..h {
            for x in 0..w {
                let sy = (y as isize - dy).rem_euclid(h as isize) as usize;
                let mut sx = (x as isize - dx).rem_euclid(w as isize) as usize;
                if flip {
                    sx = w - 1 - sx;
                }
                let v = proto[(ci * h + sy) * w + sx] * contrast
                    + if cfg.pixel_noise > 0.0 {
                        rng.normal(0.0, cfg.pixel_noise)
                    } else {
                        0.0
                    };
                out[(ci * h + y) * w + x] = v.clamp(-1.0, 1.0);
            }
        }
    }
    out
}

fn build_split(
    cfg: &SynthCifarConfig,
    protos: &[Vec<f32>],
    per_class: usize,
    rng: &mut Rng,
) -> Result<Dataset> {
    let n = cfg.num_classes * per_class;
    let mut data = Vec::with_capacity(n * cfg.pixels());
    let mut labels = Vec::with_capacity(n);
    for (class, proto) in protos.iter().enumerate().take(cfg.num_classes) {
        for _ in 0..per_class {
            data.extend(sample(cfg, proto, rng));
            labels.push(class);
        }
    }
    let images = Tensor::from_vec(data, &[n, cfg.channels, cfg.height, cfg.width])?;
    let mut dataset = Dataset::new(images, labels, cfg.num_classes)?;
    dataset = dataset.shuffled(rng);
    Ok(dataset)
}

/// Generates `(train, test)` splits deterministically from `seed`.
///
/// Both splits share class prototypes but draw disjoint sample noise, so
/// generalization is meaningful.
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] for degenerate configurations.
pub fn synth_cifar(cfg: &SynthCifarConfig, seed: u64) -> Result<(Dataset, Dataset)> {
    cfg.validate()?;
    let root = Rng::from_seed(seed).stream(RngStream::Data);
    let mut proto_rng = root.stream(RngStream::Custom(1));
    let protos: Vec<Vec<f32>> = (0..cfg.num_classes)
        .map(|_| prototype(cfg, &mut proto_rng))
        .collect();
    let mut train_rng = root.stream(RngStream::Custom(2));
    let mut test_rng = root.stream(RngStream::Custom(3));
    let train = build_split(cfg, &protos, cfg.train_per_class, &mut train_rng)?;
    let test = build_split(cfg, &protos, cfg.test_per_class, &mut test_rng)?;
    Ok((train, test))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_counts() {
        let cfg = SynthCifarConfig::tiny();
        let (train, test) = synth_cifar(&cfg, 1).unwrap();
        assert_eq!(train.len(), 120);
        assert_eq!(test.len(), 40);
        assert_eq!(train.sample_shape(), &[3, 8, 8]);
        assert_eq!(train.class_histogram(), vec![12; 10]);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = SynthCifarConfig::tiny();
        let (a, _) = synth_cifar(&cfg, 7).unwrap();
        let (b, _) = synth_cifar(&cfg, 7).unwrap();
        assert_eq!(a, b);
        let (c, _) = synth_cifar(&cfg, 8).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn pixel_range_is_bounded() {
        let (train, _) = synth_cifar(&SynthCifarConfig::tiny(), 3).unwrap();
        assert!(train.images().max() <= 1.0);
        assert!(train.images().min() >= -1.0);
    }

    #[test]
    fn classes_are_separable_by_prototype_correlation() {
        // nearest-prototype classifier on clean prototypes should beat
        // chance by a wide margin — the task is learnable.
        let cfg = SynthCifarConfig::tiny();
        let (train, test) = synth_cifar(&cfg, 5).unwrap();
        // estimate per-class mean from train as a stand-in prototype
        let per = test.sample_shape().iter().product::<usize>();
        let mut means = vec![vec![0.0f32; per]; cfg.num_classes];
        let mut counts = vec![0usize; cfg.num_classes];
        for i in 0..train.len() {
            let y = train.labels()[i];
            counts[y] += 1;
            for (j, m) in means[y].iter_mut().enumerate() {
                *m += train.images().at(i * per + j);
            }
        }
        for (m, &c) in means.iter_mut().zip(&counts) {
            for v in m.iter_mut() {
                *v /= c as f32;
            }
        }
        let mut correct = 0;
        for i in 0..test.len() {
            let img: Vec<f32> = (0..per).map(|j| test.images().at(i * per + j)).collect();
            let best = (0..cfg.num_classes)
                .max_by(|&a, &b| {
                    let da: f32 = means[a].iter().zip(&img).map(|(m, v)| m * v).sum();
                    let db: f32 = means[b].iter().zip(&img).map(|(m, v)| m * v).sum();
                    da.partial_cmp(&db).unwrap()
                })
                .unwrap();
            if best == test.labels()[i] {
                correct += 1;
            }
        }
        let acc = correct as f32 / test.len() as f32;
        assert!(acc > 0.45, "nearest-mean accuracy only {acc}");
    }

    #[test]
    fn validation_rejects_degenerate() {
        let mut cfg = SynthCifarConfig::tiny();
        cfg.num_classes = 0;
        assert!(synth_cifar(&cfg, 0).is_err());
        let mut cfg2 = SynthCifarConfig::tiny();
        cfg2.pixel_noise = -1.0;
        assert!(synth_cifar(&cfg2, 0).is_err());
    }

    #[test]
    fn train_and_test_differ() {
        let (train, test) = synth_cifar(&SynthCifarConfig::tiny(), 9).unwrap();
        // same prototypes but different noise draws
        assert_ne!(train.images().as_slice()[..64], test.images().as_slice()[..64]);
    }
}
