//! Loader for the real CIFAR-10 **binary** format.
//!
//! This offline reproduction evaluates on procedural
//! [SynthCIFAR](crate::synth_cifar), but users with the actual dataset
//! (<https://www.cs.toronto.edu/~kriz/cifar.html>, "binary version") can
//! point [`load_cifar10`] at the extracted `cifar-10-batches-bin`
//! directory and run every experiment on the paper's original benchmark.
//!
//! Format (per the dataset card): each of `data_batch_{1..5}.bin` and
//! `test_batch.bin` holds 10 000 records of 3 073 bytes — one label byte
//! followed by a 3×32×32 image in CHW order, red plane first. Pixels are
//! rescaled from `[0, 255]` to the `[-1, 1]` range the BWNN expects.

use std::fs::File;
use std::io::{self, BufReader, Read};
use std::path::Path;

use membit_tensor::Tensor;

use crate::dataset::Dataset;

const RECORD_BYTES: usize = 1 + 3 * 32 * 32;
const IMAGE_PIXELS: usize = 3 * 32 * 32;

/// Reads one CIFAR-10 binary batch file into pixel/label buffers.
///
/// # Errors
///
/// Returns [`io::ErrorKind::InvalidData`] if the file length is not a
/// multiple of the record size or a label byte exceeds 9.
pub fn read_cifar_batch(path: impl AsRef<Path>) -> io::Result<(Vec<f32>, Vec<usize>)> {
    let mut reader = BufReader::new(File::open(&path)?);
    let mut raw = Vec::new();
    reader.read_to_end(&mut raw)?;
    if raw.is_empty() || raw.len() % RECORD_BYTES != 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "{}: length {} is not a multiple of the {RECORD_BYTES}-byte record",
                path.as_ref().display(),
                raw.len()
            ),
        ));
    }
    let records = raw.len() / RECORD_BYTES;
    let mut pixels = Vec::with_capacity(records * IMAGE_PIXELS);
    let mut labels = Vec::with_capacity(records);
    for rec in raw.chunks_exact(RECORD_BYTES) {
        let label = rec[0] as usize;
        if label > 9 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("label byte {label} out of range for CIFAR-10"),
            ));
        }
        labels.push(label);
        pixels.extend(rec[1..].iter().map(|&b| b as f32 / 127.5 - 1.0));
    }
    Ok((pixels, labels))
}

/// Loads the full CIFAR-10 train/test split from an extracted
/// `cifar-10-batches-bin` directory.
///
/// # Errors
///
/// Returns I/O errors for missing/malformed batch files.
pub fn load_cifar10(dir: impl AsRef<Path>) -> io::Result<(Dataset, Dataset)> {
    let dir = dir.as_ref();
    let mut train_pixels = Vec::new();
    let mut train_labels = Vec::new();
    for i in 1..=5 {
        let (p, l) = read_cifar_batch(dir.join(format!("data_batch_{i}.bin")))?;
        train_pixels.extend(p);
        train_labels.extend(l);
    }
    let (test_pixels, test_labels) = read_cifar_batch(dir.join("test_batch.bin"))?;
    let to_dataset = |pixels: Vec<f32>, labels: Vec<usize>| -> io::Result<Dataset> {
        let n = labels.len();
        let images = Tensor::from_vec(pixels, &[n, 3, 32, 32])
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        Dataset::new(images, labels, 10)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    };
    Ok((
        to_dataset(train_pixels, train_labels)?,
        to_dataset(test_pixels, test_labels)?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("membit-cifar-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Writes `n` synthetic records in the official binary layout.
    fn write_batch(path: &Path, n: usize, label_of: impl Fn(usize) -> u8) {
        let mut bytes = Vec::with_capacity(n * RECORD_BYTES);
        for i in 0..n {
            bytes.push(label_of(i));
            for p in 0..IMAGE_PIXELS {
                bytes.push(((i * 37 + p * 11) % 256) as u8);
            }
        }
        std::fs::write(path, bytes).unwrap();
    }

    #[test]
    fn reads_well_formed_batch() {
        let dir = temp_dir("ok");
        let path = dir.join("batch.bin");
        write_batch(&path, 3, |i| (i % 10) as u8);
        let (pixels, labels) = read_cifar_batch(&path).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(labels, vec![0, 1, 2]);
        assert_eq!(pixels.len(), 3 * IMAGE_PIXELS);
        assert!(pixels.iter().all(|&v| (-1.0..=1.0).contains(&v)));
        // byte 0 maps to −1, byte 255 maps to +1
        assert!((pixels[0] - (0.0 / 127.5 - 1.0)).abs() < 1e-6);
    }

    #[test]
    fn rejects_truncated_batch() {
        let dir = temp_dir("trunc");
        let path = dir.join("batch.bin");
        std::fs::write(&path, vec![0u8; RECORD_BYTES + 5]).unwrap();
        let err = read_cifar_batch(&path).unwrap_err();
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_bad_label() {
        let dir = temp_dir("label");
        let path = dir.join("batch.bin");
        write_batch(&path, 1, |_| 17);
        let err = read_cifar_batch(&path).unwrap_err();
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn loads_full_directory_layout() {
        let dir = temp_dir("full");
        for i in 1..=5 {
            write_batch(&dir.join(format!("data_batch_{i}.bin")), 4, |j| (j % 10) as u8);
        }
        write_batch(&dir.join("test_batch.bin"), 2, |j| (j % 10) as u8);
        let (train, test) = load_cifar10(&dir).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(train.len(), 20);
        assert_eq!(test.len(), 2);
        assert_eq!(train.sample_shape(), &[3, 32, 32]);
        assert_eq!(train.num_classes(), 10);
    }

    #[test]
    fn missing_files_error() {
        let dir = temp_dir("missing");
        let err = load_cifar10(&dir).unwrap_err();
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }
}
