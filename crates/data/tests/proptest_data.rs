//! Property-based tests for the dataset crate: determinism, bounds,
//! label/batch invariants, and shuffle preservation.

use membit_data::{shapes, synth_cifar, Dataset, ShapesConfig, SynthCifarConfig};
use membit_tensor::{Rng, Tensor};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn synth_cifar_deterministic_and_bounded(seed in 0u64..1000) {
        let cfg = SynthCifarConfig::tiny();
        let (a_train, a_test) = synth_cifar(&cfg, seed).unwrap();
        let (b_train, b_test) = synth_cifar(&cfg, seed).unwrap();
        prop_assert_eq!(&a_train, &b_train);
        prop_assert_eq!(&a_test, &b_test);
        prop_assert!(a_train.images().max() <= 1.0);
        prop_assert!(a_train.images().min() >= -1.0);
    }

    #[test]
    fn class_histogram_balanced(seed in 0u64..200, per_class in 2usize..10) {
        let mut cfg = SynthCifarConfig::tiny();
        cfg.train_per_class = per_class;
        let (train, _) = synth_cifar(&cfg, seed).unwrap();
        prop_assert_eq!(train.class_histogram(), vec![per_class; cfg.num_classes]);
    }

    #[test]
    fn batches_partition_dataset(seed in 0u64..200, batch in 1usize..30) {
        let (train, _) = synth_cifar(&SynthCifarConfig::tiny(), seed).unwrap();
        let mut total = 0usize;
        let mut seen_labels = Vec::new();
        for (images, labels) in train.batches(batch) {
            prop_assert_eq!(images.shape()[0], labels.len());
            prop_assert!(labels.len() <= batch);
            total += labels.len();
            seen_labels.extend(labels);
        }
        prop_assert_eq!(total, train.len());
        let mut sorted_seen = seen_labels;
        sorted_seen.sort_unstable();
        let mut sorted_orig = train.labels().to_vec();
        sorted_orig.sort_unstable();
        prop_assert_eq!(sorted_seen, sorted_orig);
    }

    #[test]
    fn shuffle_preserves_multiset(seed in 0u64..500, shuffle_seed in 0u64..500) {
        let (train, _) = synth_cifar(&SynthCifarConfig::tiny(), seed).unwrap();
        let mut rng = Rng::from_seed(shuffle_seed);
        let shuffled = train.shuffled(&mut rng);
        prop_assert_eq!(shuffled.len(), train.len());
        prop_assert_eq!(shuffled.class_histogram(), train.class_histogram());
        // total pixel mass preserved
        prop_assert!((shuffled.images().sum() - train.images().sum()).abs() < 1e-1);
    }

    #[test]
    fn shapes_deterministic_and_balanced(seed in 0u64..500) {
        let cfg = ShapesConfig::tiny();
        let (a, _) = shapes(&cfg, seed).unwrap();
        let (b, _) = shapes(&cfg, seed).unwrap();
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.class_histogram(), vec![cfg.train_per_class; 4]);
    }

    #[test]
    fn dataset_rejects_inconsistent_labels(n in 1usize..6, k in 1usize..4) {
        let images = Tensor::zeros(&[n, 1, 2, 2]);
        // a label equal to num_classes is out of range
        let mut labels = vec![0usize; n];
        labels[n - 1] = k;
        prop_assert!(Dataset::new(images, labels, k).is_err());
    }

    #[test]
    fn train_test_disjoint_noise(seed in 0u64..200) {
        let (train, test) = synth_cifar(&SynthCifarConfig::tiny(), seed).unwrap();
        // identical prototypes, different draws: first images differ
        let a = &train.images().as_slice()[..32];
        let b = &test.images().as_slice()[..32];
        prop_assert_ne!(a, b);
    }
}
