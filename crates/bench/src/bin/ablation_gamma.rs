//! Ablation A: sweep of the latency/accuracy trade-off weight γ (Eq. 6).
//!
//! The paper states that different γ produce different latency budgets
//! ("we can obtain different bit encoding solution based on trade-off
//! parameter γ"); this sweep makes the trade-off curve explicit and is
//! how the γ defaults of `table1`/`table2` were picked.

use std::error::Error;

use membit_bench::{gbo_epochs, results_dir, Cli};
use membit_core::{write_csv, GboConfig};

fn main() -> Result<(), Box<dyn Error>> {
    let cli = Cli::parse();
    let sigma = cli.f32_opt("--sigma").unwrap_or(15.0);
    let mut exp = membit_bench::setup_experiment(&cli)?;

    let gammas = [0.0f32, 1e-4, 2e-4, 5e-4, 1e-3, 2e-3, 5e-3, 1e-2];
    println!("γ sweep at σ = {sigma}");
    println!(
        "{:>9} {:>10} {:<26} {:>8}",
        "γ", "avg pulses", "# pulses per layer", "Acc %"
    );
    let mut rows = Vec::new();
    let mut prev_pulses = f32::INFINITY;
    let mut monotone = true;
    for &gamma in &gammas {
        let mut cfg = GboConfig::paper(gamma, cli.seed);
        cfg.epochs = gbo_epochs(cli.scale);
        let result = exp.run_gbo(sigma, cfg)?;
        let acc = exp.eval_pla(sigma, &result.selected_pulses)?;
        println!(
            "{:>9} {:>10.2} {:<26} {:>8.2}",
            gamma,
            result.avg_pulses(),
            format!("{:?}", result.selected_pulses),
            acc
        );
        if result.avg_pulses() > prev_pulses + 2.0 {
            monotone = false;
        }
        prev_pulses = result.avg_pulses();
        rows.push(vec![
            format!("{gamma}"),
            format!("{:.2}", result.avg_pulses()),
            format!("{:?}", result.selected_pulses),
            format!("{acc:.2}"),
        ]);
    }
    println!();
    println!("larger γ buys shorter codes (roughly monotone): {monotone}");

    let path = results_dir().join("ablation_gamma.csv");
    write_csv(
        &path,
        &["gamma", "avg_pulses", "pulses", "accuracy_pct"],
        &rows,
    )?;
    println!("# wrote {}", path.display());
    Ok(())
}
