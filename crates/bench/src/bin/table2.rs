//! Table II: synergy between GBO and noise-aware weight training (NIA).
//!
//! Rows: Baseline, NIA, GBO, NIA + GBO, NIA + PLA — accuracy and average
//! pulse count per σ ∈ {10, 15, 20}.

use std::error::Error;

use membit_bench::{gbo_epochs, nia_epochs, results_dir, Cli};
use membit_core::{write_csv, GboConfig, NiaConfig, Table2Row};

/// Paper Table II reference cells `(acc %, avg pulses)` per σ column.
const PAPER: &[(&str, [(f32, f32); 3])] = &[
    ("Baseline", [(83.94, 8.0), (62.27, 8.0), (31.46, 8.0)]),
    ("NIA", [(88.35, 8.0), (84.84, 8.0), (78.78, 8.0)]),
    ("GBO", [(86.36, 9.71), (76.35, 10.21), (46.33, 10.28)]),
    ("NIA + GBO", [(88.93, 9.71), (86.45, 10.24), (81.33, 10.28)]),
    ("NIA + PLA", [(88.91, 10.0), (85.17, 10.0), (80.29, 10.0)]),
];

fn paper_cell(method: &str, col: usize) -> (f32, f32) {
    PAPER
        .iter()
        .find(|(m, _)| *m == method)
        .map(|(_, cells)| cells[col])
        .unwrap_or((f32::NAN, f32::NAN))
}

/// Runs a small γ grid and returns the GBO result nearest the paper's
/// Table II latency budget (≈ 10 average pulses). Solutions below the
/// 8-pulse baseline budget are penalized: the paper's Table II GBO rows
/// all sit at 9.7–10.3 average pulses, and (especially after NIA, whose
/// weights adapted to the p = 8 noise level) sub-baseline layers trade
/// away far more accuracy than the regularizer saves.
fn gbo_near_ten(
    exp: &mut membit_core::Experiment,
    sigma: f32,
    gammas: &[f32],
    epochs: usize,
    seed: u64,
) -> Result<membit_core::GboResult, Box<dyn Error>> {
    let score = |r: &membit_core::GboResult| {
        let d = (r.avg_pulses() - 10.0).abs();
        if r.avg_pulses() < 9.0 {
            d + 100.0
        } else {
            d
        }
    };
    let mut best: Option<membit_core::GboResult> = None;
    for &gamma in gammas {
        let mut cfg = GboConfig::paper(gamma, seed);
        cfg.epochs = epochs;
        let result = exp.run_gbo(sigma, cfg)?;
        let better = match &best {
            Some(b) => score(&result) < score(b),
            None => true,
        };
        if better {
            best = Some(result);
        }
    }
    best.ok_or_else(|| "empty γ grid".into())
}

fn main() -> Result<(), Box<dyn Error>> {
    let cli = Cli::parse();
    let gammas: Vec<f32> = match cli.f32_opt("--gamma") {
        Some(g) => vec![g],
        None => vec![2e-3, 8e-4, 3e-4, 1e-4],
    };
    let sigmas = [10.0f32, 15.0, 20.0];
    let exp = membit_bench::setup_experiment(&cli)?;
    let layers = 7usize;

    let mut rows: Vec<Table2Row> = vec![
        Table2Row { method: "Baseline".into(), cells: Vec::new() },
        Table2Row { method: "NIA".into(), cells: Vec::new() },
        Table2Row { method: "GBO".into(), cells: Vec::new() },
        Table2Row { method: "NIA + GBO".into(), cells: Vec::new() },
        Table2Row { method: "NIA + PLA".into(), cells: Vec::new() },
    ];

    for &sigma in &sigmas {
        println!("# σ = {sigma}");
        // Baseline and plain GBO run on the clean-pretrained weights.
        let mut base = exp.fork();
        let acc_baseline = base.eval_pla(sigma, &[8; 7])?;
        rows[0].cells.push((acc_baseline, 8.0));

        let gbo = gbo_near_ten(&mut base, sigma, &gammas, gbo_epochs(cli.scale), cli.seed)?;
        println!("#   GBO pulses: {:?}", gbo.selected_pulses);
        let acc_gbo = base.eval_pla(sigma, &gbo.selected_pulses)?;
        rows[2].cells.push((acc_gbo, gbo.avg_pulses()));

        // NIA variants fine-tune a fork of the weights at this σ.
        let mut nia = exp.fork();
        nia.run_nia(sigma, &NiaConfig::new(nia_epochs(cli.scale), cli.seed))?;
        let acc_nia = nia.eval_pla(sigma, &[8; 7])?;
        rows[1].cells.push((acc_nia, 8.0));

        // NIA + GBO: search the encoding on the NIA-adapted weights.
        let nia_gbo = gbo_near_ten(&mut nia, sigma, &gammas, gbo_epochs(cli.scale), cli.seed)?;
        println!("#   NIA+GBO pulses: {:?}", nia_gbo.selected_pulses);
        let acc_nia_gbo = nia.eval_pla(sigma, &nia_gbo.selected_pulses)?;
        rows[3].cells.push((acc_nia_gbo, nia_gbo.avg_pulses()));

        // NIA + PLA: uniform 10 pulses on the NIA weights.
        let acc_nia_pla = nia.eval_pla(sigma, &vec![10; layers])?;
        rows[4].cells.push((acc_nia_pla, 10.0));
    }

    println!();
    println!(
        "{:<12} | {:^21} | {:^21} | {:^21}",
        "Method", "σ = 10", "σ = 15", "σ = 20"
    );
    println!("{:<12} | {:^21} | {:^21} | {:^21}", "", "ours (paper)", "ours (paper)", "ours (paper)");
    let mut csv_rows = Vec::new();
    for row in &rows {
        let mut cells = Vec::new();
        for (col, &(acc, pulses)) in row.cells.iter().enumerate() {
            let (p_acc, p_pulses) = paper_cell(&row.method, col);
            cells.push(format!(
                "{acc:.1}/{pulses:.1} ({p_acc:.1}/{p_pulses:.1})"
            ));
        }
        println!(
            "{:<12} | {:>21} | {:>21} | {:>21}",
            row.method, cells[0], cells[1], cells[2]
        );
        let mut csv = vec![row.method.clone()];
        for &(acc, pulses) in &row.cells {
            csv.push(format!("{acc:.2}"));
            csv.push(format!("{pulses:.2}"));
        }
        csv_rows.push(csv);
    }

    println!();
    println!("Shape checks:");
    for (col, &sigma) in sigmas.iter().enumerate() {
        let nia_gbo = rows[3].cells[col].0;
        let nia = rows[1].cells[col].0;
        let gbo = rows[2].cells[col].0;
        let baseline = rows[0].cells[col].0;
        println!(
            "  σ={sigma}: NIA+GBO ({nia_gbo:.1}) ≥ max(NIA {nia:.1}, GBO {gbo:.1}) − 1: {}",
            nia_gbo + 1.0 >= nia.max(gbo)
        );
        println!(
            "  σ={sigma}: every method beats Baseline ({baseline:.1}): {}",
            [nia, gbo, nia_gbo].iter().all(|&a| a + 1.0 >= baseline)
        );
    }

    let path = results_dir().join("table2.csv");
    write_csv(
        &path,
        &[
            "method",
            "acc_s10",
            "pulses_s10",
            "acc_s15",
            "pulses_s15",
            "acc_s20",
            "pulses_s20",
        ],
        &csv_rows,
    )?;
    println!("# wrote {}", path.display());
    Ok(())
}
