//! Table I: Baseline vs PLA vs GBO on SynthCIFAR + VGG9-BWNN at
//! σ ∈ {10, 15, 20}.
//!
//! Per σ it prints the paper's reference accuracy next to ours. Two GBO
//! rows per σ use two γ values (CLI `--gamma-low` / `--gamma-high`,
//! targeting ≈ PLA₁₀- and ≈ PLA₁₄-level latency like the paper).

use std::error::Error;

use membit_bench::{gbo_epochs, results_dir, Cli};
use membit_core::{write_csv, GboConfig, Table1Row};

/// Paper Table I reference accuracies, keyed by (σ, method).
const PAPER: &[(u32, &str, f32)] = &[
    (10, "Baseline", 83.94),
    (10, "PLA_10", 85.38),
    (10, "PLA_12", 85.58),
    (10, "PLA_14", 86.24),
    (10, "PLA_16", 88.27),
    (10, "GBO_lo", 86.36),
    (10, "GBO_hi", 88.27),
    (15, "Baseline", 62.27),
    (15, "PLA_10", 71.09),
    (15, "PLA_12", 74.61),
    (15, "PLA_14", 77.53),
    (15, "PLA_16", 82.95),
    (15, "GBO_lo", 76.35),
    (15, "GBO_hi", 82.73),
    (20, "Baseline", 31.46),
    (20, "PLA_10", 42.94),
    (20, "PLA_12", 51.89),
    (20, "PLA_14", 58.80),
    (20, "PLA_16", 67.49),
    (20, "GBO_lo", 46.33),
    (20, "GBO_hi", 71.53),
];

fn paper_acc(sigma: f32, method: &str) -> f32 {
    PAPER
        .iter()
        .find(|(s, m, _)| *s == sigma as u32 && *m == method)
        .map(|(_, _, a)| *a)
        .unwrap_or(f32::NAN)
}

fn main() -> Result<(), Box<dyn Error>> {
    let cli = Cli::parse();
    // Like the paper, the two GBO rows per σ are the solutions whose
    // latency lands nearest PLA₁₀ and PLA₁₄; γ is swept per σ because the
    // CE-gradient magnitude (and hence the γ that balances Eq. 6) grows
    // with the noise level.
    let gamma_grid: Vec<f32> = match cli.f32_opt("--gamma") {
        Some(g) => vec![g],
        None => vec![5e-3, 2e-3, 8e-4, 3e-4, 1e-4],
    };
    let mut exp = membit_bench::setup_experiment(&cli)?;
    let layers = 7usize;

    let clean = exp.eval_clean()?;
    println!("clean (no crossbar noise): {clean:.2}%   [paper: 90.80%]");
    println!();
    println!(
        "{:<14} {:>5} {:<26} {:>9} {:>8} {:>9}",
        "Method", "σ", "# pulses per layer", "avg", "Acc %", "paper %"
    );

    let mut rows: Vec<Table1Row> = Vec::new();
    for sigma in [10.0f32, 15.0, 20.0] {
        // Baseline + uniform PLA rows
        for (label, q) in [
            ("Baseline", 8usize),
            ("PLA_10", 10),
            ("PLA_12", 12),
            ("PLA_14", 14),
            ("PLA_16", 16),
        ] {
            let pulses = vec![q; layers];
            let acc = exp.eval_pla(sigma, &pulses)?;
            let row = Table1Row {
                method: label.to_string(),
                sigma,
                pulses,
                avg_pulses: q as f32,
                accuracy: acc,
            };
            println!(
                "{:<14} {:>5} {:<26} {:>9.2} {:>8.2} {:>9.2}",
                row.method,
                sigma,
                row.pulses_string(),
                row.avg_pulses,
                acc,
                paper_acc(sigma, label)
            );
            rows.push(row);
        }
        // GBO rows: sweep γ, keep the solutions nearest the PLA₁₀ and
        // PLA₁₄ latency budgets (the paper's "GBO (~PLA_n)" rows).
        let mut candidates = Vec::new();
        for &gamma in &gamma_grid {
            let mut cfg = GboConfig::paper(gamma, cli.seed);
            cfg.epochs = gbo_epochs(cli.scale);
            let result = exp.run_gbo(sigma, cfg)?;
            candidates.push((gamma, result));
        }
        for (label, target) in [("GBO_lo", 10.0f32), ("GBO_hi", 14.0)] {
            let (gamma, result) = candidates
                .iter()
                .min_by(|a, b| {
                    let da = (a.1.avg_pulses() - target).abs();
                    let db = (b.1.avg_pulses() - target).abs();
                    da.total_cmp(&db)
                })
                .ok_or("empty γ grid")?;
            let acc = exp.eval_pla(sigma, &result.selected_pulses)?;
            let row = Table1Row {
                method: format!("{label} (γ={gamma})"),
                sigma,
                pulses: result.selected_pulses.clone(),
                avg_pulses: result.avg_pulses(),
                accuracy: acc,
            };
            println!(
                "{:<14} {:>5} {:<26} {:>9.2} {:>8.2} {:>9.2}",
                label,
                sigma,
                row.pulses_string(),
                row.avg_pulses,
                acc,
                paper_acc(sigma, label)
            );
            rows.push(row);
        }
        println!();
    }

    // qualitative shape checks mirroring the paper's observations
    let acc_of = |sigma: f32, m: &str| {
        rows.iter()
            .find(|r| r.sigma == sigma && r.method.starts_with(m))
            .map(|r| r.accuracy)
            .unwrap_or(f32::NAN)
    };
    println!("Shape checks:");
    for sigma in [10.0f32, 15.0, 20.0] {
        let monotone = acc_of(sigma, "Baseline") <= acc_of(sigma, "PLA_16") + 1.0;
        println!(
            "  σ={sigma}: accuracy rises with pulses (Baseline {:.1} → PLA_16 {:.1}): {monotone}",
            acc_of(sigma, "Baseline"),
            acc_of(sigma, "PLA_16")
        );
    }

    let csv_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.method.clone(),
                format!("{}", r.sigma),
                r.pulses_string(),
                format!("{:.2}", r.avg_pulses),
                format!("{:.2}", r.accuracy),
            ]
        })
        .collect();
    let path = results_dir().join("table1.csv");
    write_csv(
        &path,
        &["method", "sigma", "pulses", "avg_pulses", "accuracy_pct"],
        &csv_rows,
    )?;
    println!("# wrote {}", path.display());
    Ok(())
}
