//! Ablation G (extension beyond the paper): checksum-guarded execution.
//!
//! Two sections:
//!
//! 1. **Fault recovery** — deploys the same trained network three ways
//!    (`clean`: no faults; `unguarded`: 1% transient stuck-at faults
//!    injected mid-inference; `guarded`: the same faults under the ABFT
//!    checksum guard with its retry → refresh → remap → fallback ladder)
//!    and measures how much of the fault-induced accuracy gap the guard
//!    recovers. Also checks the false-positive escalation rate of the
//!    guarded arm at fault rate 0.
//! 2. **Overhead sweep** — times guarded vs plain execution on a
//!    standalone engine across a σ sweep (median-of-N), asserts bitwise
//!    determinism of the guarded path and the analytic overhead bounds
//!    (exactly one checksum conversion per readout, one extra column of
//!    cell reads per tile per pulse), and records the retry rate. On a
//!    single-core host the assertions are about determinism and bounded
//!    overhead, never speedup.
//!
//! Writes `ablation_guard.csv` (accuracy rows) and `BENCH_guard.json`
//! (overhead numbers) under the results directory.
//!
//! Options (besides the shared bench flags): `--smoke` — tiny subset +
//! one timing repeat for CI.

use std::error::Error;
use std::io::Write as _;
use std::time::Instant;

use membit_bench::{results_dir, Cli};
use membit_core::{write_csv, DeploymentPolicy, DeviceEvalConfig, DeviceVgg, GuardAblationRow};
use membit_data::Dataset;
use membit_encoding::{BitEncoder, Thermometer};
use membit_tensor::{Rng, RngStream, Tensor};
use membit_xbar::{CrossbarLinear, ExecOptions, GuardPolicy, XbarConfig};

/// Transient per-cell stuck-at rate injected mid-inference.
const FAULT_RATE: f32 = 0.01;
/// Functional noise level of the deployment in the recovery section.
const SIGMA: f32 = 0.1;

fn random_pm1(shape: &[usize], seed: u64) -> Tensor {
    let mut rng = Rng::from_seed(seed);
    Tensor::from_fn(shape, |_| if rng.coin(0.5) { 1.0 } else { -1.0 })
}

fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    let n = samples.len();
    if n == 0 {
        return f64::NAN;
    }
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        0.5 * (samples[n / 2 - 1] + samples[n / 2])
    }
}

fn main() -> Result<(), Box<dyn Error>> {
    let cli = Cli::parse();
    let smoke = cli.rest.iter().any(|a| a == "--smoke");
    let exp = membit_bench::setup_experiment(&cli)?;
    let (vgg, params) = exp.model();

    let subset = match (smoke, cli.scale) {
        (true, _) => 40,
        (false, membit_bench::Scale::Quick) => 100,
        (false, membit_bench::Scale::Full) => 200,
    };
    let batch = 20usize;
    let test = exp.test_set();
    let n = subset.min(test.len());
    let (images, _) = test.batch(0, n)?;
    let subset_set = Dataset::new(
        Tensor::from_vec(images.as_slice().to_vec(), images.shape())?,
        test.labels()[..n].to_vec(),
        test.num_classes(),
    )?;
    let (warm_images, _) = subset_set.batch(0, batch.min(n))?;

    // ------------------------------------------------------------------
    // Section 1: fault recovery
    // ------------------------------------------------------------------
    println!(
        "guarded-execution ablation ({n} images, σ = {SIGMA}, {:.1}% transient stuck cells \
         injected mid-inference)",
        FAULT_RATE * 100.0
    );
    println!(
        "{:>10} | {:>7} | {:>8} {:>6} {:>6} {:>8} {:>6} {:>5} {:>8}",
        "mode", "acc %", "checks", "viol", "retry", "refresh", "remap", "fall", "degraded"
    );

    // one evaluation arm: deploy, run one warm batch, inject `rate`
    // faults mid-inference, evaluate the subset
    let arm = |label: &str, rate: f32, guard: Option<GuardPolicy>| -> Result<GuardAblationRow, Box<dyn Error>> {
        let mut xbar = XbarConfig::functional(SIGMA);
        if let Some(policy) = guard {
            xbar = xbar.with_guard(policy);
        }
        // the guard never consumes programming RNG (arming is a pure
        // snapshot), so every arm deploys bitwise-identical hardware and
        // injects the identical fault set from the same seeded stream
        let mut rng = Rng::from_seed(cli.seed).stream(RngStream::Device);
        let mut device = DeviceVgg::deploy(
            vgg,
            params,
            &DeviceEvalConfig {
                xbar,
                pulses: vec![8; 7],
                act_levels: 9,
                policy: DeploymentPolicy::default(),
            },
            &mut rng,
        )?;
        device.forward(&warm_images, &mut rng)?; // mid-inference context
        if rate > 0.0 {
            device.inject_faults(rate, &mut rng)?;
        }
        let (acc, stats) = device.evaluate(&subset_set, batch, &mut rng)?;
        let row = GuardAblationRow::from_stats(label, rate, SIGMA, acc * 100.0, &stats.guard);
        println!(
            "{:>10} | {:>7.2} | {:>8} {:>6} {:>6} {:>8} {:>6} {:>5} {:>8}",
            row.mode,
            row.accuracy,
            row.checks,
            row.violations,
            row.retries,
            row.tile_refreshes,
            row.tile_remaps,
            row.fallbacks,
            row.degraded_layers
        );
        Ok(row)
    };

    let clean = arm("clean", 0.0, None)?;
    let clean_guarded = arm("clean+guard", 0.0, Some(GuardPolicy::standard()))?;
    let unguarded = arm("unguarded", FAULT_RATE, None)?;
    let guarded = arm("guarded", FAULT_RATE, Some(GuardPolicy::standard()))?;

    // acceptance: the guard recovers ≥90% of the fault-induced accuracy
    // gap (trivially true if the faults didn't open one)
    let gap = clean.accuracy - unguarded.accuracy;
    let recovered = guarded.accuracy - unguarded.accuracy;
    let recovery_pct = if gap > 1e-6 { 100.0 * recovered / gap } else { 100.0 };
    println!();
    println!(
        "at {:.0}% faults: unguarded loses {gap:.1} pts, guard recovers {recovered:.1} pts \
         ({recovery_pct:.0}% of the gap)",
        FAULT_RATE * 100.0
    );
    // the guarded arm consumes different noise draws after its repairs,
    // so on small subsets a single flipped image can dominate the ratio;
    // landing within one image of the fault-free deployment also passes
    let one_image = 100.0 / n as f32;
    assert!(
        gap <= 1e-6 || recovery_pct >= 90.0 || clean.accuracy - guarded.accuracy <= one_image + 1e-3,
        "guard must recover ≥90% of the fault-induced accuracy gap \
         (or land within one image of clean), got {recovery_pct:.1}%"
    );

    // acceptance: false-positive escalations below 1% of checks on the
    // fault-free guarded arm
    let escalations =
        clean_guarded.tile_refreshes + clean_guarded.tile_remaps + clean_guarded.fallbacks;
    let fp_escalation_rate = escalations as f64 / clean_guarded.checks.max(1) as f64;
    println!(
        "fault-free guarded arm: {} escalation(s) over {} checks ({:.4}%)",
        escalations,
        clean_guarded.checks,
        100.0 * fp_escalation_rate
    );
    assert!(
        fp_escalation_rate < 0.01,
        "false-positive escalation rate must stay below 1%, got {fp_escalation_rate}"
    );

    let rows = [&clean, &clean_guarded, &unguarded, &guarded];
    let csv_path = results_dir().join("ablation_guard.csv");
    let records: Vec<Vec<String>> = rows.iter().map(|r| r.to_record()).collect();
    write_csv(&csv_path, &GuardAblationRow::CSV_HEADER, &records)?;
    println!("# wrote {}", csv_path.display());

    // ------------------------------------------------------------------
    // Section 2: overhead sweep on a standalone engine
    // ------------------------------------------------------------------
    let repeats = if smoke { 1 } else { 5 };
    let sigmas: &[f32] = if smoke { &[0.1] } else { &[0.05, 0.1, 0.2] };
    let (out_features, in_features, obatch, pulses, tile) =
        if smoke { (32, 64, 8, 4, 16) } else { (64, 128, 16, 8, 32) };
    let w = random_pm1(&[out_features, in_features], cli.seed ^ 11);
    let x = random_pm1(&[obatch, in_features], cli.seed ^ 12);
    let train = Thermometer::new(pulses)?.encode_tensor(&x)?;

    println!(
        "\nguard overhead sweep ({out_features}×{in_features}, tile {tile}, batch {obatch}, \
         {pulses} pulses, median of {repeats} repeat(s))"
    );
    println!(
        "{:>8} {:>12} {:>12} {:>10} {:>12} {:>12}",
        "sigma", "plain ms", "guarded ms", "overhead", "retry rate", "extra adc %"
    );

    let mut sweep_json = Vec::new();
    for &sigma in sigmas {
        let mut cfg = XbarConfig::functional(sigma);
        cfg.tile_rows = tile;
        cfg.tile_cols = tile;
        // an ADC makes the per-check conversion accounting observable
        cfg.adc_bits = Some(8);
        cfg.exec = ExecOptions::serial();
        let mut prng = Rng::from_seed(cli.seed ^ 13).stream(RngStream::Device);
        let plain = CrossbarLinear::program(&w, &cfg, &mut prng)?;
        let gcfg = cfg.with_guard(GuardPolicy::standard());
        let mut prng = Rng::from_seed(cli.seed ^ 13).stream(RngStream::Device);
        let mut armed = CrossbarLinear::program(&w, &gcfg, &mut prng)?;

        let mut time_plain = Vec::with_capacity(repeats);
        let mut time_guarded = Vec::with_capacity(repeats);
        let mut plain_stats = None;
        let mut guarded_stats = None;
        let mut first_output: Option<Vec<f32>> = None;
        for _ in 0..=repeats {
            // one warmup iteration (index 0) then timed repeats; every
            // iteration reseeds, so outputs must be bitwise reproducible
            let mut xrng = Rng::from_seed(cli.seed ^ 14).stream(RngStream::Noise);
            let t = Instant::now();
            let (_, ps) = plain.execute_with_stats(&train, &mut xrng)?;
            time_plain.push(t.elapsed().as_secs_f64() * 1e3);
            plain_stats = Some(ps);

            let mut xrng = Rng::from_seed(cli.seed ^ 14).stream(RngStream::Noise);
            let t = Instant::now();
            let (gy, gs) = armed.execute_guarded(&train, &mut xrng)?;
            time_guarded.push(t.elapsed().as_secs_f64() * 1e3);
            guarded_stats = Some(gs);
            match &first_output {
                None => first_output = Some(gy.as_slice().to_vec()),
                Some(prev) => assert_eq!(
                    prev.as_slice(),
                    gy.as_slice(),
                    "guarded execution must be bitwise reproducible at σ = {sigma}"
                ),
            }
        }
        time_plain.remove(0);
        time_guarded.remove(0);
        let (ps, gs) = (plain_stats.unwrap(), guarded_stats.unwrap());

        // analytic overhead bounds: the checksum column costs exactly one
        // ADC conversion per guarded readout and `tile_rows` cell reads,
        // plus whatever the (rare) retries re-execute
        assert!(gs.guard.checks > 0);
        let extra_adc = gs.adc_conversions - ps.adc_conversions;
        let extra_reads = gs.cell_reads - ps.cell_reads;
        assert_eq!(
            extra_adc,
            gs.guard.checks + gs.guard.retries * tile as u64,
            "one checksum conversion per check (+ retry re-conversions)"
        );
        assert_eq!(
            extra_reads,
            gs.guard.checks * tile as u64 + gs.guard.retries * (tile * tile) as u64,
            "one column of cell reads per check (+ retry re-reads)"
        );

        let plain_ms = median(time_plain);
        let guarded_ms = median(time_guarded);
        let overhead = guarded_ms / plain_ms;
        let retry_rate = gs.guard.retries as f64 / gs.guard.checks as f64;
        let extra_adc_pct = 100.0 * extra_adc as f64 / ps.adc_conversions as f64;
        println!(
            "{sigma:>8} {plain_ms:>12.2} {guarded_ms:>12.2} {overhead:>9.2}x \
             {retry_rate:>12.4} {extra_adc_pct:>11.1}%"
        );
        sweep_json.push(format!(
            "{{\"sigma\": {sigma}, \"plain_ms\": {plain_ms:.3}, \
             \"guarded_ms\": {guarded_ms:.3}, \"overhead\": {overhead:.3}, \
             \"checks\": {}, \"violations\": {}, \"retries\": {}, \
             \"retry_rate\": {retry_rate:.6}, \"extra_adc_pct\": {extra_adc_pct:.2}, \
             \"extra_cell_read_pct\": {:.2}, \"bitwise_deterministic\": true}}",
            gs.guard.checks,
            gs.guard.violations,
            gs.guard.retries,
            100.0 * extra_reads as f64 / ps.cell_reads as f64,
        ));
    }

    let json_path = results_dir().join("BENCH_guard.json");
    let mut f = std::fs::File::create(&json_path)?;
    writeln!(
        f,
        "{{\"bench\": \"guard\", \"smoke\": {smoke}, \"seed\": {}, \"repeats\": {repeats}, \
         \"warmup\": 1, \"timing\": \"median over repeats after one warmup execute\", \
         \"policy\": \"GuardPolicy::standard (z = 6)\", \
         \"note\": \"single-core host: assertions cover determinism and overhead bounds, not speedup\", \
         \"accuracy\": {{\"clean\": {:.2}, \"clean_guarded\": {:.2}, \"unguarded\": {:.2}, \
         \"guarded\": {:.2}, \"fault_rate\": {FAULT_RATE}, \"sigma\": {SIGMA}, \
         \"gap_recovery_pct\": {recovery_pct:.1}, \
         \"false_positive_escalation_rate\": {fp_escalation_rate:.6}}}, \
         \"overhead_sweep\": [{}]}}",
        cli.seed,
        clean.accuracy,
        clean_guarded.accuracy,
        unguarded.accuracy,
        guarded.accuracy,
        sweep_json.join(", ")
    )?;
    println!("# wrote {}", json_path.display());
    Ok(())
}
