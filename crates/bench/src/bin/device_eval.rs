//! Ablation C: device-level validation.
//!
//! Re-evaluates Table-I configurations on the tiled `membit-xbar`
//! simulator (128×128 tiles, per-pulse ADC, optional device variation)
//! instead of the functional noise model the paper trains against, and
//! reports hardware event counts / energy / latency from the first-order
//! model.

use std::error::Error;

use membit_bench::{results_dir, Cli};
use membit_core::{write_csv, DeploymentPolicy, DeviceEvalConfig, DeviceVgg};
use membit_data::Dataset;
use membit_tensor::{Rng, RngStream, Tensor};
use membit_xbar::{EnergyModel, GuardPolicy, XbarConfig};

fn main() -> Result<(), Box<dyn Error>> {
    let cli = Cli::parse();
    let exp = membit_bench::setup_experiment(&cli)?;
    let (vgg, params) = exp.model();
    let energy = EnergyModel::representative();

    // Device-level runs are ~an order of magnitude slower than the
    // functional model; evaluate on a subset.
    let subset = match cli.scale {
        membit_bench::Scale::Quick => 100,
        membit_bench::Scale::Full => 300,
    };
    let test = exp.test_set();
    let n = subset.min(test.len());
    let images = {
        let (batch, _) = test.batch(0, n)?;
        batch
    };
    let labels = test.labels()[..n].to_vec();
    let subset_set = Dataset::new(
        Tensor::from_vec(images.as_slice().to_vec(), images.shape())?,
        labels,
        test.num_classes(),
    )?;

    // σ_abs for the functional-output-noise knob of the device: reuse the
    // calibration so device σ matches the paper-σ semantics. The engine
    // applies noise per pulse at the *tile output*, while the calibration
    // measured whole-layer MVM RMS; we use the mean layer σ as a single
    // representative per-pulse noise level.
    let sigma_paper = cli.f32_opt("--sigma").unwrap_or(15.0);
    let sigma_abs = exp.calibration().sigma_abs(sigma_paper);
    let sigma_mean = sigma_abs.iter().sum::<f32>() / sigma_abs.len() as f32;

    println!("device-level evaluation (σ = {sigma_paper}, {n} test images)");
    println!(
        "{:<34} {:>7} {:>8} {:>12} {:>12} {:>12}",
        "hardware", "pulses", "Acc %", "tile MVMs", "energy µJ", "latency ms"
    );
    let mut rows = Vec::new();
    let configs: [(&str, XbarConfig, Vec<usize>); 5] = [
        (
            "ideal, baseline p=8",
            XbarConfig::ideal(),
            vec![8; 7],
        ),
        (
            "functional noise, p=8",
            XbarConfig::functional(sigma_mean),
            vec![8; 7],
        ),
        (
            "functional noise, p=16",
            XbarConfig::functional(sigma_mean),
            vec![16; 7],
        ),
        (
            "realistic (ADC+variation), p=16",
            XbarConfig::realistic(sigma_mean),
            vec![16; 7],
        ),
        (
            "realistic + checksum guard, p=16",
            XbarConfig::realistic(sigma_mean).with_guard(GuardPolicy::standard()),
            vec![16; 7],
        ),
    ];
    for (name, mut xbar, pulses) in configs {
        xbar.exec = cli.exec_options();
        let mut rng = Rng::from_seed(cli.seed).stream(RngStream::Device);
        let mut device = DeviceVgg::deploy(
            vgg,
            params,
            &DeviceEvalConfig {
                xbar,
                pulses: pulses.clone(),
                act_levels: 9,
                policy: DeploymentPolicy::default(),
            },
            &mut rng,
        )?;
        let (acc, stats) = device.evaluate(&subset_set, 20, &mut rng)?;
        let uj = energy.energy_pj(&stats) / 1e6;
        let ms = energy.latency_ns(&stats) / 1e6;
        println!(
            "{:<34} {:>7} {:>8.2} {:>12} {:>12.1} {:>12.2}",
            name,
            pulses[0],
            acc * 100.0,
            stats.tile_mvms,
            uj,
            ms
        );
        if stats.guard.checks > 0 {
            println!(
                "    guard: {} checks, {} violations, {} retries, {} degraded layer(s)",
                stats.guard.checks,
                stats.guard.violations,
                stats.guard.retries,
                stats.guard.degraded_layers
            );
        }
        rows.push(vec![
            name.to_string(),
            pulses[0].to_string(),
            format!("{:.2}", acc * 100.0),
            stats.tile_mvms.to_string(),
            format!("{uj:.2}"),
            format!("{ms:.3}"),
        ]);
    }
    println!();
    println!("expected shape: ideal ≈ functional clean accuracy; under noise, 16-pulse");
    println!("codes beat 8-pulse; realistic non-idealities cost a little extra accuracy");
    println!("but more pulses still win — the paper's conclusion survives the device level.");

    let path = results_dir().join("device_eval.csv");
    write_csv(
        &path,
        &[
            "hardware",
            "pulses",
            "accuracy_pct",
            "tile_mvms",
            "energy_uj",
            "latency_ms",
        ],
        &rows,
    )?;
    println!("# wrote {}", path.display());
    Ok(())
}
