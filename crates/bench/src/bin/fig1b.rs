//! Fig. 1(b): normalized accumulated noise variance vs. information bits
//! for bit slicing vs. thermometer coding — closed form (Eqs. 2–3) plus a
//! Monte-Carlo validation on the device-level crossbar simulator.

use std::error::Error;

use membit_bench::{results_dir, Cli};
use membit_core::write_csv;
use membit_encoding::variance::fig1b_series;
use membit_encoding::{BitEncoder, BitSlicing, Thermometer};
use membit_tensor::{Rng, RngStream, Tensor, TensorError};
use membit_xbar::{CrossbarLinear, XbarConfig};

/// Empirical output variance of an encoder on a noisy crossbar.
fn monte_carlo_variance(
    encoder: &dyn Encoder,
    sigma: f32,
    trials: usize,
    rng: &mut Rng,
) -> Result<f64, TensorError> {
    let w = Tensor::ones(&[1, 4]);
    let xbar = CrossbarLinear::program(&w, &XbarConfig::functional(sigma), rng)?;
    let x = Tensor::zeros(&[1, 4]);
    let train = encoder.encode(&x);
    let clean: f32 = train.decode()?.matmul(&w.transpose()?)?.at(0);
    let mut sum = 0.0f64;
    let mut sum_sq = 0.0f64;
    for _ in 0..trials {
        let y = f64::from(xbar.execute(&train, rng)?.at(0) - clean);
        sum += y;
        sum_sq += y * y;
    }
    let mean = sum / trials as f64;
    Ok(sum_sq / trials as f64 - mean * mean)
}

/// Object-safe encoding shim over the two schemes.
trait Encoder {
    fn encode(&self, x: &Tensor) -> membit_encoding::PulseTrain;
}
impl Encoder for Thermometer {
    fn encode(&self, x: &Tensor) -> membit_encoding::PulseTrain {
        self.encode_tensor(x).expect("encode")
    }
}
impl Encoder for BitSlicing {
    fn encode(&self, x: &Tensor) -> membit_encoding::PulseTrain {
        self.encode_tensor(x).expect("encode")
    }
}

fn main() -> Result<(), Box<dyn Error>> {
    let cli = Cli::parse();
    let max_bits = 8usize;
    let mc_trials = match cli.scale {
        membit_bench::Scale::Quick => 2000,
        membit_bench::Scale::Full => 10000,
    };
    let mut rng = Rng::from_seed(cli.seed).stream(RngStream::Noise);

    println!("Fig. 1(b) — normalized noise variance vs. information bits (σ² = 1)");
    println!(
        "{:>4} | {:>9} {:>12} | {:>9} {:>12} | {:>10} {:>10}",
        "bits", "BS pulses", "BS var", "TC pulses", "TC var", "BS MC", "TC MC"
    );
    let mut rows = Vec::new();
    for row in fig1b_series(max_bits) {
        // Monte-Carlo only where pulse counts stay reasonable
        let (bs_mc, tc_mc) = if row.bits <= 5 {
            let bs = BitSlicing::new(row.bs_pulses)?;
            let tc = Thermometer::new(row.tc_pulses)?;
            (
                monte_carlo_variance(&bs, 1.0, mc_trials, &mut rng)?,
                monte_carlo_variance(&tc, 1.0, mc_trials, &mut rng)?,
            )
        } else {
            (f64::NAN, f64::NAN)
        };
        println!(
            "{:>4} | {:>9} {:>12.5} | {:>9} {:>12.5} | {:>10.5} {:>10.5}",
            row.bits, row.bs_pulses, row.bs_variance, row.tc_pulses, row.tc_variance, bs_mc, tc_mc
        );
        rows.push(vec![
            row.bits.to_string(),
            row.bs_pulses.to_string(),
            format!("{:.6}", row.bs_variance),
            row.tc_pulses.to_string(),
            format!("{:.6}", row.tc_variance),
            format!("{bs_mc:.6}"),
            format!("{tc_mc:.6}"),
        ]);
    }
    // terminal rendition of the figure (log-y)
    let series = fig1b_series(max_bits);
    let xs: Vec<usize> = series.iter().map(|r| r.bits).collect();
    let bs: Vec<f64> = series.iter().map(|r| r.bs_variance).collect();
    let tc: Vec<f64> = series.iter().map(|r| r.tc_variance).collect();
    println!();
    println!("log-scale variance vs bits (B = bit slicing, T = thermometer):");
    print!("{}", membit_bench::chart::dual_log_chart(&xs, &bs, 'B', &tc, 'T', 10));

    println!();
    println!("Paper's qualitative claims, checked:");
    let series = fig1b_series(max_bits);
    let tc_wins = series[1..].iter().all(|r| r.tc_variance < r.bs_variance);
    let bs_floor = series
        .last()
        .is_some_and(|r| (r.bs_variance - 1.0 / 3.0).abs() < 0.01);
    println!("  thermometer < bit slicing for ≥ 2 bits: {tc_wins}");
    println!("  bit-slicing variance flattens near σ²/3: {bs_floor}");

    let path = results_dir().join("fig1b.csv");
    write_csv(
        &path,
        &[
            "bits",
            "bs_pulses",
            "bs_variance",
            "tc_pulses",
            "tc_variance",
            "bs_monte_carlo",
            "tc_monte_carlo",
        ],
        &rows,
    )?;
    println!("# wrote {}", path.display());
    Ok(())
}
