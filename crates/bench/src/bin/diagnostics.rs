//! Diagnostics for the calibration story of EXPERIMENTS.md: per-layer
//! MVM RMS (the σ-unit anchors), activation saturation fractions (the
//! premise behind PLA's "activations converge to ±1"), the zero-noise
//! cost of each PLA snap, and the Baseline noise ladder.

use std::error::Error;

use membit_autograd::{Tape, VarId};
use membit_bench::Cli;
use membit_nn::{MvmNoiseHook, Phase};
use membit_tensor::Tensor;

/// Records, per crossbar layer, how much of the *input* activation mass
/// sits at the ±1 saturation levels.
struct SaturationProbe {
    saturated: Vec<f64>,
    total: Vec<f64>,
}

impl MvmNoiseHook for SaturationProbe {
    fn apply(&mut self, _t: &mut Tape, _l: usize, v: VarId) -> membit_nn::Result<VarId> {
        Ok(v)
    }
    fn encode(&mut self, tape: &mut Tape, layer: usize, input: VarId) -> membit_nn::Result<VarId> {
        let x: &Tensor = tape.value(input);
        self.saturated[layer] += x
            .as_slice()
            .iter()
            .filter(|v| v.abs() >= 1.0 - 1e-6)
            .count() as f64;
        self.total[layer] += x.len() as f64;
        Ok(input)
    }
}

fn main() -> Result<(), Box<dyn Error>> {
    let cli = Cli::parse();
    let mut exp = membit_bench::setup_experiment(&cli)?;
    let layers = exp.calibration().layers();

    println!("per-layer clean MVM RMS (σ-unit anchors, unit = {}):", exp.config().sigma_unit);
    for (l, &r) in exp.calibration().rms().iter().enumerate() {
        println!("  layer {l}: {r:.3}");
    }

    // saturation fractions over a few eval batches
    let mut probe = SaturationProbe {
        saturated: vec![0.0; layers],
        total: vec![0.0; layers],
    };
    {
        let test = exp.test_set().clone();
        let batch = exp.config().eval_batch;
        let (vgg, params) = exp.model_mut();
        for (i, (images, _)) in test.batches(batch).enumerate() {
            if i >= 2 {
                break;
            }
            let mut tape = Tape::new();
            let mut binding = params.frozen_binding();
            let x = tape.constant(images);
            membit_core::CrossbarModel::forward(
                vgg,
                &mut tape,
                params,
                &mut binding,
                x,
                Phase::Eval,
                &mut probe,
            )?;
        }
    }
    println!();
    println!("activation saturation (fraction at ±1) per crossbar layer —");
    println!("the premise of PLA §III-B; low values explain residual snap cost:");
    for l in 0..layers {
        println!(
            "  layer {l}: {:.1}%",
            probe.saturated[l] / probe.total[l].max(1.0) * 100.0
        );
    }

    println!();
    println!("zero-noise PLA snap cost (accuracy at σ = 0):");
    for q in [8usize, 10, 12, 14, 16] {
        let acc = exp.eval_pla(0.0, &vec![q; layers])?;
        println!("  q = {q:>2}: {acc:.2}%");
    }

    println!();
    println!("Baseline (p = 8) noise ladder:");
    for sigma in [0.0f32, 5.0, 10.0, 15.0, 20.0, 25.0] {
        let acc = exp.eval_pla(sigma, &vec![8; layers])?;
        println!("  σ = {sigma:>4}: {acc:.2}%");
    }
    Ok(())
}
