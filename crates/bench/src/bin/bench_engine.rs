//! Crossbar engine throughput benchmark.
//!
//! Three sections, each with warmup + median-of-N timing:
//!
//! 1. **Thread sweep** — programs a tiled crossbar, runs the same pulse
//!    train at several worker thread counts, checks the outputs are
//!    **bitwise identical** across all of them (the engine derives
//!    per-`(pulse, sample, tile)` noise substreams, so threading must
//!    never change results), and writes the wall-clock numbers to
//!    `BENCH_engine.json` under the results directory.
//! 2. **End-to-end kernel comparison** — times full engine execution
//!    under `MvmKernel::Reference`, `Cached` (which adds the incremental
//!    pulse-delta schedule on thermometer trains) and `Packed` (the
//!    bit-packed popcount kernel) single-threaded across tile
//!    geometries, encoders and pulse counts. End-to-end numbers include
//!    the per-column Gaussian noise draws, guard checksum readout and
//!    ADC — a fixed cost shared bitwise by all three kernels — so they
//!    *understate* the kernel gap; this section's job is verification:
//!    Cached within 1e-5 of Reference, Packed **bitwise** equal to
//!    Reference on rail-programmed cases (and bitwise equal to Cached on
//!    heterogeneous cases, where it downgrades by contract), and
//!    deterministic across reruns.
//! 3. **Kernel accumulate microbench** — the headline table: times
//!    `Tile::accumulate` itself (the pre-noise accumulation step, the
//!    only part that differs between kernels) per sample·pulse on single
//!    tiles. On 128×128 rails tiles with cycle-to-cycle read noise the
//!    popcount kernel replaces both the dense f32 MAC loop and the
//!    per-cell variance accumulation, targeting **≥10×** the cached
//!    kernel's samples·pulses/s. Every timed configuration is re-checked
//!    bitwise against Reference before timing.
//!
//! Sections 2 and 3 both write into `BENCH_mvm.json` (`engine_cases` /
//! `accumulate_cases` + `headline`).
//!
//! Options (besides the shared bench flags):
//!
//! * `--smoke` — tiny problems + one repeat: a seconds-long CI smoke run
//!   that still exercises programming, execution, determinism checking,
//!   kernel agreement and both JSON emission paths.

use std::error::Error;
use std::io::Write as _;
use std::time::Instant;

use membit_bench::{results_dir, Cli};
use membit_encoding::{BitEncoder, BitSlicing, Thermometer};
use membit_tensor::{Rng, RngStream, Tensor};
use membit_xbar::{
    CrossbarLinear, DeviceModel, ExecOptions, MvmKernel, PackScratch, Tile, XbarConfig,
};

struct Case {
    name: &'static str,
    out_features: usize,
    in_features: usize,
    batch: usize,
    pulses: usize,
}

/// A kernel-comparison configuration: like [`Case`] but with an explicit
/// square tile size (the thread sweep uses the config default), an
/// encoder, and a device flavor (`rails` engages the popcount kernel;
/// `realistic` exercises its documented downgrade to Cached).
struct KernelCase {
    name: &'static str,
    out_features: usize,
    in_features: usize,
    batch: usize,
    pulses: usize,
    tile: usize,
    encoder: &'static str,
    rails: bool,
    /// Zero noise everywhere: isolates the MVM inner loop itself (the
    /// per-column Gaussian draws are a fixed cost shared bitwise by all
    /// three kernels, so noisy rows understate the kernel gap).
    noise_free: bool,
}

fn random_pm1(shape: &[usize], seed: u64) -> Tensor {
    let mut rng = Rng::from_seed(seed);
    Tensor::from_fn(shape, |_| if rng.coin(0.5) { 1.0 } else { -1.0 })
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    let n = samples.len();
    if n == 0 {
        return f64::NAN;
    }
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        0.5 * (samples[n / 2 - 1] + samples[n / 2])
    }
}

/// One warmup execute (untimed), then `repeats` timed executes with the
/// identical seeded noise stream; returns the median wall-clock in ms and
/// the (deterministic) output.
fn time_execute(
    engine: &CrossbarLinear,
    train: &membit_encoding::PulseTrain,
    seed: u64,
    repeats: usize,
) -> Result<(f64, Tensor), Box<dyn Error>> {
    let mut warm_rng = Rng::from_seed(seed).stream(RngStream::Noise);
    let mut out = engine.execute(train, &mut warm_rng)?;
    let mut times = Vec::with_capacity(repeats);
    for _ in 0..repeats {
        let mut xrng = Rng::from_seed(seed).stream(RngStream::Noise);
        let t = Instant::now();
        out = engine.execute(train, &mut xrng)?;
        times.push(t.elapsed().as_secs_f64() * 1e3);
    }
    Ok((median(times), out))
}

/// Samples·pulses per second at the given per-execute median.
fn throughput(batch: usize, pulses: usize, ms: f64) -> f64 {
    (batch * pulses) as f64 / (ms / 1e3)
}

fn main() -> Result<(), Box<dyn Error>> {
    let cli = Cli::parse();
    let smoke = cli.rest.iter().any(|a| a == "--smoke");
    let repeats = if smoke { 1 } else { 5 };
    let cases: Vec<Case> = if smoke {
        vec![Case {
            name: "smoke",
            out_features: 48,
            in_features: 96,
            batch: 16,
            pulses: 4,
        }]
    } else {
        vec![
            Case {
                name: "fc_like",
                out_features: 256,
                in_features: 512,
                batch: 64,
                pulses: 8,
            },
            Case {
                name: "conv_patches",
                out_features: 128,
                in_features: 288,
                batch: 256,
                pulses: 8,
            },
        ]
    };
    let thread_counts: &[usize] = &[1, 2, 4, 8];
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    println!(
        "crossbar engine benchmark ({} case(s), median of {repeats} repeat(s) after 1 warmup, \
         host has {host_threads} hardware thread(s))",
        cases.len()
    );
    let mut case_json = Vec::new();
    for case in &cases {
        let w = random_pm1(&[case.out_features, case.in_features], cli.seed);
        let x = random_pm1(&[case.batch, case.in_features], cli.seed ^ 1);
        let train = Thermometer::new(case.pulses)?.encode_tensor(&x)?;
        let mut cfg = XbarConfig::realistic(0.05);
        cfg.exec = ExecOptions::serial();
        let mut prng = Rng::from_seed(cli.seed).stream(RngStream::Device);
        let xbar = CrossbarLinear::program(&w, &cfg, &mut prng)?;

        println!(
            "\n{}: {}×{} weights, batch {}, {} pulses, {} tiles",
            case.name,
            case.out_features,
            case.in_features,
            case.batch,
            case.pulses,
            xbar.num_tiles()
        );
        println!(
            "{:>10} {:>12} {:>10} {:>14}",
            "threads", "ms/exec", "speedup", "samples·p/s"
        );

        let mut reference: Option<Tensor> = None;
        let mut serial_ms = 0.0f64;
        let mut entries = Vec::new();
        for &threads in thread_counts {
            let mut run_cfg = cfg;
            run_cfg.exec = ExecOptions::with_threads(threads);
            // re-programming with the same rng seed reproduces the same
            // devices; only the exec options differ between runs
            let mut prng = Rng::from_seed(cli.seed).stream(RngStream::Device);
            let engine = CrossbarLinear::program(&w, &run_cfg, &mut prng)?;
            let (ms, y) = time_execute(&engine, &train, cli.seed ^ 2, repeats)?;
            match &reference {
                None => {
                    serial_ms = ms;
                    reference = Some(y);
                }
                Some(r) => {
                    assert_eq!(
                        r.as_slice(),
                        y.as_slice(),
                        "{}: output at {} threads differs bitwise from serial",
                        case.name,
                        threads
                    );
                }
            }
            let speedup = serial_ms / ms;
            let sps = throughput(case.batch, case.pulses, ms);
            println!("{threads:>10} {ms:>12.2} {speedup:>9.2}x {sps:>14.0}");
            entries.push(format!(
                "{{\"threads\": {threads}, \"ms_per_exec\": {ms:.3}, \
                 \"speedup_vs_serial\": {speedup:.3}, \
                 \"samples_pulses_per_s\": {sps:.0}, \"bitwise_identical\": true}}"
            ));
        }
        case_json.push(format!(
            "{{\"case\": \"{}\", \"out_features\": {}, \"in_features\": {}, \
             \"batch\": {}, \"pulses\": {}, \"tiles\": {}, \"runs\": [{}]}}",
            json_escape(case.name),
            case.out_features,
            case.in_features,
            case.batch,
            case.pulses,
            xbar.num_tiles(),
            entries.join(", ")
        ));
    }

    let path = results_dir().join("BENCH_engine.json");
    let mut f = std::fs::File::create(&path)?;
    writeln!(
        f,
        "{{\"bench\": \"engine\", \"smoke\": {smoke}, \"seed\": {}, \
         \"host_hardware_threads\": {host_threads}, \"repeats\": {repeats}, \"warmup\": 1, \
         \"timing\": \"median over repeats after one warmup execute\", \
         \"determinism\": \"outputs bitwise identical across all thread counts\", \
         \"cases\": [{}]}}",
        cli.seed,
        case_json.join(", ")
    )?;
    println!("\n# wrote {}", path.display());
    println!("# outputs were bitwise identical across thread counts {thread_counts:?}");
    if host_threads == 1 {
        println!("# note: host has a single hardware thread — speedups ≈ 1 are expected here");
    }

    // ------------------------------------------------------------------
    // Kernel comparison: Reference vs Cached vs Packed, serial
    // ------------------------------------------------------------------
    let kernel_cases: Vec<KernelCase> = if smoke {
        vec![
            // rails + bit-sliced: the popcount kernel engages and must
            // be bitwise Reference
            KernelCase {
                name: "smoke_slice_rails",
                out_features: 48,
                in_features: 96,
                batch: 8,
                pulses: 4,
                tile: 32,
                encoder: "bitsliced",
                rails: true,
                noise_free: false,
            },
            // realistic device: Packed must downgrade to the cached loop
            KernelCase {
                name: "smoke_therm_realistic",
                out_features: 48,
                in_features: 96,
                batch: 8,
                pulses: 4,
                tile: 32,
                encoder: "thermometer",
                rails: false,
                noise_free: false,
            },
        ]
    } else {
        vec![
            // the headline configuration: a generic binary train on full
            // 128×128 rails tiles. Cached has no delta schedule here, so
            // this is popcount-vs-dense-f32-MAC head on.
            KernelCase {
                name: "slice_p8_tile128",
                out_features: 256,
                in_features: 256,
                batch: 32,
                pulses: 8,
                tile: 128,
                encoder: "bitsliced",
                rails: true,
                noise_free: false,
            },
            // zero-noise rails: the pure inner-loop comparison — the
            // popcount kernel's headline ≥10× over the dense f32 MAC
            // loop is measured here, with the shared noise-draw cost
            // removed from both sides
            KernelCase {
                name: "slice_p8_tile128_ideal",
                out_features: 256,
                in_features: 256,
                batch: 32,
                pulses: 8,
                tile: 128,
                encoder: "bitsliced",
                rails: true,
                noise_free: true,
            },
            // thermometer on rails: Cached runs the nested-unary delta
            // schedule (near-free on saturated ±1 inputs), Packed runs
            // every pulse dense — the honest worst case for Packed
            KernelCase {
                name: "therm_p8_tile128",
                out_features: 256,
                in_features: 256,
                batch: 32,
                pulses: 8,
                tile: 128,
                encoder: "thermometer",
                rails: true,
                noise_free: false,
            },
            // longer generic trains amortize packing further
            KernelCase {
                name: "slice_p16_tile128",
                out_features: 256,
                in_features: 256,
                batch: 32,
                pulses: 16,
                tile: 128,
                encoder: "bitsliced",
                rails: true,
                noise_free: false,
            },
            // small tiles: more per-tile overhead, same asymptotics
            KernelCase {
                name: "slice_p8_tile32",
                out_features: 256,
                in_features: 256,
                batch: 32,
                pulses: 8,
                tile: 32,
                encoder: "bitsliced",
                rails: true,
                noise_free: false,
            },
            // heterogeneous device: Packed downgrades per contract, so
            // its column documents the downgrade cost (≈ cached)
            KernelCase {
                name: "slice_p8_tile128_realistic",
                out_features: 256,
                in_features: 256,
                batch: 32,
                pulses: 8,
                tile: 128,
                encoder: "bitsliced",
                rails: false,
                noise_free: false,
            },
        ]
    };

    println!("\nMVM kernel comparison, end-to-end engine execution (single-threaded)");
    println!(
        "{:>28} {:>10} {:>10} {:>10} {:>12} {:>14}",
        "case", "ref ms", "cached ms", "packed ms", "pack/cached", "packed s·p/s"
    );
    let mut kernel_json = Vec::new();
    for case in &kernel_cases {
        let w = random_pm1(&[case.out_features, case.in_features], cli.seed ^ 3);
        let x = random_pm1(&[case.batch, case.in_features], cli.seed ^ 4);
        let train = match case.encoder {
            "bitsliced" => BitSlicing::new(case.pulses)?.encode_tensor(&x)?,
            _ => Thermometer::new(case.pulses)?.encode_tensor(&x)?,
        };
        let mut cfg = if case.rails {
            // ideal device ⇒ rail-programmed ±1 weights: Packed engages
            let sigma = if case.noise_free { 0.0 } else { 0.05 };
            let mut c = XbarConfig::functional(sigma);
            c.noise.device.on_off_ratio = 20.0;
            c
        } else {
            XbarConfig::realistic(0.05)
        };
        cfg.tile_rows = case.tile;
        cfg.tile_cols = case.tile;

        let mut engines = Vec::new();
        for kernel in [MvmKernel::Reference, MvmKernel::Cached, MvmKernel::Packed] {
            cfg.exec = ExecOptions::serial().with_kernel(kernel);
            // same programming seed ⇒ identical devices; only the kernel
            // differs between the engines
            let mut prng = Rng::from_seed(cli.seed ^ 5).stream(RngStream::Device);
            engines.push(CrossbarLinear::program(&w, &cfg, &mut prng)?);
        }
        let packed_engaged = engines[2].packed_ready();
        assert_eq!(
            packed_engaged, case.rails,
            "{}: packed engagement must match the device flavor",
            case.name
        );
        let (ref_ms, y_ref) = time_execute(&engines[0], &train, cli.seed ^ 6, repeats)?;
        let (cached_ms, y_cached) = time_execute(&engines[1], &train, cli.seed ^ 6, repeats)?;
        let (packed_ms, y_packed) = time_execute(&engines[2], &train, cli.seed ^ 6, repeats)?;
        // determinism: the packed path rerun on the same seeded stream
        // must reproduce itself bitwise (single-core contract)
        let (_, y_packed2) = time_execute(&engines[2], &train, cli.seed ^ 6, 1)?;
        assert_eq!(
            y_packed.as_slice(),
            y_packed2.as_slice(),
            "{}: packed kernel must be deterministic",
            case.name
        );

        let mut max_abs_diff = 0.0f32;
        for (a, b) in y_cached.as_slice().iter().zip(y_ref.as_slice()) {
            let diff = (a - b).abs();
            max_abs_diff = max_abs_diff.max(diff);
            assert!(
                diff <= 1e-5 * (1.0 + b.abs()),
                "{}: kernels disagree ({a} vs {b})",
                case.name
            );
        }
        if packed_engaged {
            assert_eq!(
                y_packed.as_slice(),
                y_ref.as_slice(),
                "{}: engaged packed kernel must be bitwise reference",
                case.name
            );
        } else {
            // the downgrade serves the cached loop's exact results
            assert_eq!(
                y_packed.as_slice(),
                y_cached.as_slice(),
                "{}: downgraded packed kernel must be bitwise cached",
                case.name
            );
        }
        let cached_speedup = ref_ms / cached_ms;
        let packed_speedup = cached_ms / packed_ms;
        let sps = throughput(case.batch, case.pulses, packed_ms);
        println!(
            "{:>28} {ref_ms:>10.2} {cached_ms:>10.2} {packed_ms:>10.2} {packed_speedup:>11.2}x {sps:>14.0}",
            case.name
        );
        kernel_json.push(format!(
            "{{\"case\": \"{}\", \"out_features\": {}, \"in_features\": {}, \
             \"batch\": {}, \"pulses\": {}, \"tile\": {}, \"train\": \"{}\", \
             \"device\": \"{}\", \
             \"reference_ms\": {ref_ms:.3}, \"cached_ms\": {cached_ms:.3}, \
             \"packed_ms\": {packed_ms:.3}, \
             \"cached_speedup_vs_reference_end_to_end\": {cached_speedup:.3}, \
             \"packed_speedup_vs_cached_end_to_end\": {packed_speedup:.3}, \
             \"reference_samples_pulses_per_s\": {:.0}, \
             \"cached_samples_pulses_per_s\": {:.0}, \
             \"packed_samples_pulses_per_s\": {sps:.0}, \
             \"packed_engaged\": {packed_engaged}, \
             \"packed_bitwise_reference\": {packed_engaged}, \
             \"max_abs_diff\": {max_abs_diff:.3e}, \"agree_within_tolerance\": true}}",
            json_escape(case.name),
            case.out_features,
            case.in_features,
            case.batch,
            case.pulses,
            case.tile,
            case.encoder,
            if case.rails { "rails" } else { "realistic" },
            throughput(case.batch, case.pulses, ref_ms),
            throughput(case.batch, case.pulses, cached_ms),
        ));
    }

    // ------------------------------------------------------------------
    // Kernel accumulate microbench: the pre-noise accumulation step
    // itself, per sample·pulse, on single tiles — the headline table
    // ------------------------------------------------------------------
    let accum_cases: Vec<AccumCase> = if smoke {
        vec![AccumCase {
            name: "accum_smoke_tile32_c2c",
            rows: 32,
            cols: 32,
            c2c: true,
        }]
    } else {
        vec![
            // the headline configuration: a full 128×128 rails tile with
            // cycle-to-cycle read noise — the packed kernel replaces the
            // dense MAC loop *and* the per-cell variance accumulation
            AccumCase {
                name: "accum_tile128_c2c",
                rows: 128,
                cols: 128,
                c2c: true,
            },
            // no read noise: popcount vs the dense f32 MAC loop alone
            AccumCase {
                name: "accum_tile128_nonoise",
                rows: 128,
                cols: 128,
                c2c: false,
            },
            AccumCase {
                name: "accum_tile64_c2c",
                rows: 64,
                cols: 64,
                c2c: true,
            },
            AccumCase {
                name: "accum_tile256_c2c",
                rows: 256,
                cols: 256,
                c2c: true,
            },
        ]
    };
    let accum_passes = if smoke { 1 } else { 5 };
    let accum_reps = if smoke { 200 } else { 4000 };

    println!("\nMVM kernel accumulate microbench (pre-noise accumulation, single tile, 1 thread)");
    println!(
        "{:>24} {:>10} {:>10} {:>10} {:>12} {:>14}",
        "case", "ref ns", "cached ns", "packed ns", "pack/cached", "packed s·p/s"
    );
    let mut accum_json = Vec::new();
    let mut headline: Option<(f64, f64)> = None;
    for case in &accum_cases {
        let mut device = DeviceModel::ideal();
        device.on_off_ratio = 20.0;
        if case.c2c {
            device.c2c_sigma = 0.02;
        }
        let w = random_pm1(&[case.rows, case.cols], cli.seed ^ 7);
        let mut prng = Rng::from_seed(cli.seed ^ 8).stream(RngStream::Device);
        let tile = Tile::program(&w, &device, &mut prng)?;
        // a rotating set of distinct ±1 drive vectors, so the timing
        // isn't an artifact of one branch-predictor-friendly input
        let n_inputs = 32;
        let mut irng = Rng::from_seed(cli.seed ^ 9);
        let inputs: Vec<Vec<f32>> = (0..n_inputs)
            .map(|_| {
                (0..case.rows)
                    .map(|_| if irng.coin(0.5) { 1.0 } else { -1.0 })
                    .collect()
            })
            .collect();
        let var_len = if case.c2c { case.cols } else { 0 };
        let mut scratch = PackScratch::default();

        // correctness before timing: the engaged packed kernel must be
        // bitwise Reference on every drive vector, variances included
        let mut out_ref = vec![0.0f32; case.cols];
        let mut var_ref = vec![0.0f32; var_len];
        let mut out_k = vec![0.0f32; case.cols];
        let mut var_k = vec![0.0f32; var_len];
        assert!(
            tile.packed_ready(case.c2c),
            "{}: rails tile must pack",
            case.name
        );
        for x in &inputs {
            tile.accumulate(MvmKernel::Reference, x, &mut out_ref, &mut var_ref, &mut scratch);
            tile.accumulate(MvmKernel::Packed, x, &mut out_k, &mut var_k, &mut scratch);
            assert_eq!(out_k, out_ref, "{}: packed must be bitwise reference", case.name);
            assert_eq!(var_k, var_ref, "{}: packed variances must match", case.name);
            tile.accumulate(MvmKernel::Cached, x, &mut out_k, &mut var_k, &mut scratch);
            for (a, b) in out_k.iter().zip(&out_ref) {
                assert!(
                    (a - b).abs() <= 1e-5 * (1.0 + b.abs()),
                    "{}: cached out of tolerance ({a} vs {b})",
                    case.name
                );
            }
        }

        let mut ns = [0.0f64; 3];
        for (ki, kernel) in [MvmKernel::Reference, MvmKernel::Cached, MvmKernel::Packed]
            .into_iter()
            .enumerate()
        {
            let mut time_pass = |reps: usize| {
                let t = Instant::now();
                for r in 0..reps {
                    let x = &inputs[r % n_inputs];
                    tile.accumulate(kernel, x, &mut out_k, &mut var_k, &mut scratch);
                }
                t.elapsed().as_secs_f64() * 1e9 / reps as f64
            };
            time_pass(accum_reps); // warmup
            let passes: Vec<f64> = (0..accum_passes).map(|_| time_pass(accum_reps)).collect();
            ns[ki] = median(passes);
        }
        let [ref_ns, cached_ns, packed_ns] = ns;
        let speedup = cached_ns / packed_ns;
        let packed_sps = 1e9 / packed_ns;
        let cached_sps = 1e9 / cached_ns;
        println!(
            "{:>24} {ref_ns:>10.0} {cached_ns:>10.0} {packed_ns:>10.0} {speedup:>11.2}x {packed_sps:>14.0}",
            case.name
        );
        if case.name == "accum_tile128_c2c" {
            headline = Some((speedup, packed_sps));
        }
        accum_json.push(format!(
            "{{\"case\": \"{}\", \"rows\": {}, \"cols\": {}, \"c2c_read_noise\": {}, \
             \"device\": \"rails\", \
             \"reference_ns_per_mvm\": {ref_ns:.1}, \"cached_ns_per_mvm\": {cached_ns:.1}, \
             \"packed_ns_per_mvm\": {packed_ns:.1}, \
             \"packed_speedup_vs_cached\": {speedup:.3}, \
             \"packed_speedup_vs_reference\": {:.3}, \
             \"cached_samples_pulses_per_s\": {cached_sps:.0}, \
             \"packed_samples_pulses_per_s\": {packed_sps:.0}, \
             \"packed_bitwise_reference\": true}}",
            json_escape(case.name),
            case.rows,
            case.cols,
            case.c2c,
            ref_ns / packed_ns,
        ));
    }

    let headline_json = match headline {
        Some((speedup, sps)) => format!(
            "{{\"case\": \"accum_tile128_c2c\", \
             \"metric\": \"pre-noise MVM kernel accumulate on a 128x128 rails tile with c2c read noise, single core\", \
             \"packed_speedup_vs_cached\": {speedup:.2}, \
             \"packed_samples_pulses_per_s\": {sps:.0}, \
             \"target_speedup\": 10.0, \"target_met\": {}}}",
            speedup >= 10.0
        ),
        None => "null".to_string(),
    };

    let mvm_path = results_dir().join("BENCH_mvm.json");
    let mut f = std::fs::File::create(&mvm_path)?;
    writeln!(
        f,
        "{{\"bench\": \"mvm_kernels\", \"smoke\": {smoke}, \"seed\": {}, \
         \"repeats\": {repeats}, \"warmup\": 1, \"threads\": 1, \
         \"tolerance\": \"cached agrees with reference within 1e-5 relative; \
         packed is bitwise reference when engaged (rails), bitwise cached when downgraded\", \
         \"timing\": \"median over repeats after one warmup execute\", \
         \"metric_notes\": \"engine_cases time full execution including the noise draws, \
         guard readout and ADC shared bitwise by all kernels (they understate the kernel gap); \
         accumulate_cases time the pre-noise accumulation step itself, which is what the \
         kernels actually change — the headline target reads from accumulate_cases\", \
         \"headline\": {headline_json}, \
         \"engine_cases\": [{}], \
         \"accumulate_cases\": [{}]}}",
        cli.seed,
        kernel_json.join(", "),
        accum_json.join(", ")
    )?;
    println!("# wrote {}", mvm_path.display());
    Ok(())
}

/// A kernel-accumulate microbench configuration: one rail-programmed
/// tile (ideal device, finite on/off ratio), optionally with
/// cycle-to-cycle read noise so the variance-plane reconstruction is on
/// the clock too.
struct AccumCase {
    name: &'static str,
    rows: usize,
    cols: usize,
    c2c: bool,
}
