//! Crossbar engine throughput benchmark.
//!
//! Programs a tiled crossbar, runs the same pulse train at several worker
//! thread counts, checks the outputs are **bitwise identical** across all
//! of them (the engine derives per-`(pulse, sample, tile)` noise
//! substreams, so threading must never change results), and writes the
//! measured wall-clock numbers to `BENCH_engine.json` under the results
//! directory.
//!
//! Options (besides the shared bench flags):
//!
//! * `--smoke` — tiny problem + one repeat: a seconds-long CI smoke run
//!   that still exercises programming, execution, determinism checking
//!   and the JSON emission path.

use std::error::Error;
use std::io::Write as _;
use std::time::Instant;

use membit_bench::{results_dir, Cli};
use membit_encoding::{BitEncoder, Thermometer};
use membit_tensor::{Rng, RngStream, Tensor};
use membit_xbar::{CrossbarLinear, ExecOptions, XbarConfig};

struct Case {
    name: &'static str,
    out_features: usize,
    in_features: usize,
    batch: usize,
    pulses: usize,
}

fn random_pm1(shape: &[usize], seed: u64) -> Tensor {
    let mut rng = Rng::from_seed(seed);
    Tensor::from_fn(shape, |_| if rng.coin(0.5) { 1.0 } else { -1.0 })
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() -> Result<(), Box<dyn Error>> {
    let cli = Cli::parse();
    let smoke = cli.rest.iter().any(|a| a == "--smoke");
    let repeats = if smoke { 1 } else { 3 };
    let cases: Vec<Case> = if smoke {
        vec![Case {
            name: "smoke",
            out_features: 48,
            in_features: 96,
            batch: 16,
            pulses: 4,
        }]
    } else {
        vec![
            Case {
                name: "fc_like",
                out_features: 256,
                in_features: 512,
                batch: 64,
                pulses: 8,
            },
            Case {
                name: "conv_patches",
                out_features: 128,
                in_features: 288,
                batch: 256,
                pulses: 8,
            },
        ]
    };
    let thread_counts: &[usize] = &[1, 2, 4, 8];
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    println!(
        "crossbar engine benchmark ({} case(s), {repeats} repeat(s), host has {host_threads} hardware thread(s))",
        cases.len()
    );
    let mut case_json = Vec::new();
    for case in &cases {
        let w = random_pm1(&[case.out_features, case.in_features], cli.seed);
        let x = random_pm1(&[case.batch, case.in_features], cli.seed ^ 1);
        let train = Thermometer::new(case.pulses)?.encode_tensor(&x)?;
        let mut cfg = XbarConfig::realistic(0.05);
        cfg.exec = ExecOptions::serial();
        let mut prng = Rng::from_seed(cli.seed).stream(RngStream::Device);
        let xbar = CrossbarLinear::program(&w, &cfg, &mut prng)?;

        println!(
            "\n{}: {}×{} weights, batch {}, {} pulses, {} tiles",
            case.name,
            case.out_features,
            case.in_features,
            case.batch,
            case.pulses,
            xbar.num_tiles()
        );
        println!("{:>10} {:>12} {:>10}", "threads", "ms/exec", "speedup");

        let mut reference: Option<Tensor> = None;
        let mut serial_ms = 0.0f64;
        let mut entries = Vec::new();
        for &threads in thread_counts {
            let mut run_cfg = cfg;
            run_cfg.exec = ExecOptions::with_threads(threads);
            // re-programming with the same rng seed reproduces the same
            // devices; only the exec options differ between runs
            let mut prng = Rng::from_seed(cli.seed).stream(RngStream::Device);
            let engine = CrossbarLinear::program(&w, &run_cfg, &mut prng)?;
            let mut best_ms = f64::INFINITY;
            let mut out = None;
            for _ in 0..repeats {
                let mut xrng = Rng::from_seed(cli.seed ^ 2).stream(RngStream::Noise);
                let t = Instant::now();
                let y = engine.execute(&train, &mut xrng)?;
                best_ms = best_ms.min(t.elapsed().as_secs_f64() * 1e3);
                out = Some(y);
            }
            let y = out.expect("at least one repeat");
            match &reference {
                None => {
                    serial_ms = best_ms;
                    reference = Some(y);
                }
                Some(r) => {
                    assert_eq!(
                        r.as_slice(),
                        y.as_slice(),
                        "{}: output at {} threads differs bitwise from serial",
                        case.name,
                        threads
                    );
                }
            }
            let speedup = serial_ms / best_ms;
            println!("{threads:>10} {best_ms:>12.2} {speedup:>9.2}x");
            entries.push(format!(
                "{{\"threads\": {threads}, \"ms_per_exec\": {best_ms:.3}, \
                 \"speedup_vs_serial\": {speedup:.3}, \"bitwise_identical\": true}}"
            ));
        }
        case_json.push(format!(
            "{{\"case\": \"{}\", \"out_features\": {}, \"in_features\": {}, \
             \"batch\": {}, \"pulses\": {}, \"tiles\": {}, \"runs\": [{}]}}",
            json_escape(case.name),
            case.out_features,
            case.in_features,
            case.batch,
            case.pulses,
            xbar.num_tiles(),
            entries.join(", ")
        ));
    }

    let path = results_dir().join("BENCH_engine.json");
    let mut f = std::fs::File::create(&path)?;
    writeln!(
        f,
        "{{\"bench\": \"engine\", \"smoke\": {smoke}, \"seed\": {}, \
         \"host_hardware_threads\": {host_threads}, \"repeats\": {repeats}, \
         \"determinism\": \"outputs bitwise identical across all thread counts\", \
         \"cases\": [{}]}}",
        cli.seed,
        case_json.join(", ")
    )?;
    println!("\n# wrote {}", path.display());
    println!("# outputs were bitwise identical across thread counts {thread_counts:?}");
    if host_threads == 1 {
        println!("# note: host has a single hardware thread — speedups ≈ 1 are expected here");
    }
    Ok(())
}
