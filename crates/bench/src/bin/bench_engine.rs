//! Crossbar engine throughput benchmark.
//!
//! Two sections, each with warmup + median-of-N timing:
//!
//! 1. **Thread sweep** — programs a tiled crossbar, runs the same pulse
//!    train at several worker thread counts, checks the outputs are
//!    **bitwise identical** across all of them (the engine derives
//!    per-`(pulse, sample, tile)` noise substreams, so threading must
//!    never change results), and writes the wall-clock numbers to
//!    `BENCH_engine.json` under the results directory.
//! 2. **Kernel comparison** — times `MvmKernel::Reference` against
//!    `MvmKernel::Cached` (which adds the incremental pulse-delta
//!    schedule on thermometer trains) single-threaded across tile
//!    geometries and pulse counts, verifies the two agree within 1e-5,
//!    and writes `BENCH_mvm.json`.
//!
//! Options (besides the shared bench flags):
//!
//! * `--smoke` — tiny problems + one repeat: a seconds-long CI smoke run
//!   that still exercises programming, execution, determinism checking,
//!   kernel agreement and both JSON emission paths.

use std::error::Error;
use std::io::Write as _;
use std::time::Instant;

use membit_bench::{results_dir, Cli};
use membit_encoding::{BitEncoder, Thermometer};
use membit_tensor::{Rng, RngStream, Tensor};
use membit_xbar::{CrossbarLinear, ExecOptions, MvmKernel, XbarConfig};

struct Case {
    name: &'static str,
    out_features: usize,
    in_features: usize,
    batch: usize,
    pulses: usize,
}

/// A kernel-comparison configuration: like [`Case`] but with an explicit
/// square tile size (the thread sweep uses the config default).
struct KernelCase {
    name: &'static str,
    out_features: usize,
    in_features: usize,
    batch: usize,
    pulses: usize,
    tile: usize,
}

fn random_pm1(shape: &[usize], seed: u64) -> Tensor {
    let mut rng = Rng::from_seed(seed);
    Tensor::from_fn(shape, |_| if rng.coin(0.5) { 1.0 } else { -1.0 })
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    let n = samples.len();
    if n == 0 {
        return f64::NAN;
    }
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        0.5 * (samples[n / 2 - 1] + samples[n / 2])
    }
}

/// One warmup execute (untimed), then `repeats` timed executes with the
/// identical seeded noise stream; returns the median wall-clock in ms and
/// the (deterministic) output.
fn time_execute(
    engine: &CrossbarLinear,
    train: &membit_encoding::PulseTrain,
    seed: u64,
    repeats: usize,
) -> Result<(f64, Tensor), Box<dyn Error>> {
    let mut warm_rng = Rng::from_seed(seed).stream(RngStream::Noise);
    let mut out = engine.execute(train, &mut warm_rng)?;
    let mut times = Vec::with_capacity(repeats);
    for _ in 0..repeats {
        let mut xrng = Rng::from_seed(seed).stream(RngStream::Noise);
        let t = Instant::now();
        out = engine.execute(train, &mut xrng)?;
        times.push(t.elapsed().as_secs_f64() * 1e3);
    }
    Ok((median(times), out))
}

/// Samples·pulses per second at the given per-execute median.
fn throughput(batch: usize, pulses: usize, ms: f64) -> f64 {
    (batch * pulses) as f64 / (ms / 1e3)
}

fn main() -> Result<(), Box<dyn Error>> {
    let cli = Cli::parse();
    let smoke = cli.rest.iter().any(|a| a == "--smoke");
    let repeats = if smoke { 1 } else { 5 };
    let cases: Vec<Case> = if smoke {
        vec![Case {
            name: "smoke",
            out_features: 48,
            in_features: 96,
            batch: 16,
            pulses: 4,
        }]
    } else {
        vec![
            Case {
                name: "fc_like",
                out_features: 256,
                in_features: 512,
                batch: 64,
                pulses: 8,
            },
            Case {
                name: "conv_patches",
                out_features: 128,
                in_features: 288,
                batch: 256,
                pulses: 8,
            },
        ]
    };
    let thread_counts: &[usize] = &[1, 2, 4, 8];
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    println!(
        "crossbar engine benchmark ({} case(s), median of {repeats} repeat(s) after 1 warmup, \
         host has {host_threads} hardware thread(s))",
        cases.len()
    );
    let mut case_json = Vec::new();
    for case in &cases {
        let w = random_pm1(&[case.out_features, case.in_features], cli.seed);
        let x = random_pm1(&[case.batch, case.in_features], cli.seed ^ 1);
        let train = Thermometer::new(case.pulses)?.encode_tensor(&x)?;
        let mut cfg = XbarConfig::realistic(0.05);
        cfg.exec = ExecOptions::serial();
        let mut prng = Rng::from_seed(cli.seed).stream(RngStream::Device);
        let xbar = CrossbarLinear::program(&w, &cfg, &mut prng)?;

        println!(
            "\n{}: {}×{} weights, batch {}, {} pulses, {} tiles",
            case.name,
            case.out_features,
            case.in_features,
            case.batch,
            case.pulses,
            xbar.num_tiles()
        );
        println!(
            "{:>10} {:>12} {:>10} {:>14}",
            "threads", "ms/exec", "speedup", "samples·p/s"
        );

        let mut reference: Option<Tensor> = None;
        let mut serial_ms = 0.0f64;
        let mut entries = Vec::new();
        for &threads in thread_counts {
            let mut run_cfg = cfg;
            run_cfg.exec = ExecOptions::with_threads(threads);
            // re-programming with the same rng seed reproduces the same
            // devices; only the exec options differ between runs
            let mut prng = Rng::from_seed(cli.seed).stream(RngStream::Device);
            let engine = CrossbarLinear::program(&w, &run_cfg, &mut prng)?;
            let (ms, y) = time_execute(&engine, &train, cli.seed ^ 2, repeats)?;
            match &reference {
                None => {
                    serial_ms = ms;
                    reference = Some(y);
                }
                Some(r) => {
                    assert_eq!(
                        r.as_slice(),
                        y.as_slice(),
                        "{}: output at {} threads differs bitwise from serial",
                        case.name,
                        threads
                    );
                }
            }
            let speedup = serial_ms / ms;
            let sps = throughput(case.batch, case.pulses, ms);
            println!("{threads:>10} {ms:>12.2} {speedup:>9.2}x {sps:>14.0}");
            entries.push(format!(
                "{{\"threads\": {threads}, \"ms_per_exec\": {ms:.3}, \
                 \"speedup_vs_serial\": {speedup:.3}, \
                 \"samples_pulses_per_s\": {sps:.0}, \"bitwise_identical\": true}}"
            ));
        }
        case_json.push(format!(
            "{{\"case\": \"{}\", \"out_features\": {}, \"in_features\": {}, \
             \"batch\": {}, \"pulses\": {}, \"tiles\": {}, \"runs\": [{}]}}",
            json_escape(case.name),
            case.out_features,
            case.in_features,
            case.batch,
            case.pulses,
            xbar.num_tiles(),
            entries.join(", ")
        ));
    }

    let path = results_dir().join("BENCH_engine.json");
    let mut f = std::fs::File::create(&path)?;
    writeln!(
        f,
        "{{\"bench\": \"engine\", \"smoke\": {smoke}, \"seed\": {}, \
         \"host_hardware_threads\": {host_threads}, \"repeats\": {repeats}, \"warmup\": 1, \
         \"timing\": \"median over repeats after one warmup execute\", \
         \"determinism\": \"outputs bitwise identical across all thread counts\", \
         \"cases\": [{}]}}",
        cli.seed,
        case_json.join(", ")
    )?;
    println!("\n# wrote {}", path.display());
    println!("# outputs were bitwise identical across thread counts {thread_counts:?}");
    if host_threads == 1 {
        println!("# note: host has a single hardware thread — speedups ≈ 1 are expected here");
    }

    // ------------------------------------------------------------------
    // Kernel comparison: Reference vs Cached (+ pulse-delta), serial
    // ------------------------------------------------------------------
    let kernel_cases: Vec<KernelCase> = if smoke {
        vec![KernelCase {
            name: "smoke",
            out_features: 48,
            in_features: 96,
            batch: 8,
            pulses: 4,
            tile: 32,
        }]
    } else {
        vec![
            // the headline configuration: thermometer p=8 on full
            // 128×128 tiles
            KernelCase {
                name: "therm_p8_tile128",
                out_features: 256,
                in_features: 256,
                batch: 32,
                pulses: 8,
                tile: 128,
            },
            // longer trains amortize the dense pulse further
            KernelCase {
                name: "therm_p16_tile128",
                out_features: 256,
                in_features: 256,
                batch: 32,
                pulses: 16,
                tile: 128,
            },
            // small tiles: more per-tile overhead, same asymptotics
            KernelCase {
                name: "therm_p8_tile32",
                out_features: 256,
                in_features: 256,
                batch: 32,
                pulses: 8,
                tile: 32,
            },
        ]
    };

    println!("\nMVM kernel comparison (single-threaded, thermometer trains)");
    println!(
        "{:>18} {:>12} {:>12} {:>10} {:>14}",
        "case", "ref ms", "cached ms", "speedup", "cached s·p/s"
    );
    let mut kernel_json = Vec::new();
    for case in &kernel_cases {
        let w = random_pm1(&[case.out_features, case.in_features], cli.seed ^ 3);
        let x = random_pm1(&[case.batch, case.in_features], cli.seed ^ 4);
        let train = Thermometer::new(case.pulses)?.encode_tensor(&x)?;
        let mut cfg = XbarConfig::realistic(0.05);
        cfg.tile_rows = case.tile;
        cfg.tile_cols = case.tile;

        let mut engines = Vec::new();
        for kernel in [MvmKernel::Reference, MvmKernel::Cached] {
            cfg.exec = ExecOptions::serial().with_kernel(kernel);
            // same programming seed ⇒ identical devices; only the kernel
            // differs between the two engines
            let mut prng = Rng::from_seed(cli.seed ^ 5).stream(RngStream::Device);
            engines.push(CrossbarLinear::program(&w, &cfg, &mut prng)?);
        }
        let (ref_ms, y_ref) = time_execute(&engines[0], &train, cli.seed ^ 6, repeats)?;
        let (cached_ms, y_cached) = time_execute(&engines[1], &train, cli.seed ^ 6, repeats)?;

        let mut max_abs_diff = 0.0f32;
        for (a, b) in y_cached.as_slice().iter().zip(y_ref.as_slice()) {
            let diff = (a - b).abs();
            max_abs_diff = max_abs_diff.max(diff);
            assert!(
                diff <= 1e-5 * (1.0 + b.abs()),
                "{}: kernels disagree ({a} vs {b})",
                case.name
            );
        }
        let speedup = ref_ms / cached_ms;
        let sps = throughput(case.batch, case.pulses, cached_ms);
        println!(
            "{:>18} {ref_ms:>12.2} {cached_ms:>12.2} {speedup:>9.2}x {sps:>14.0}",
            case.name
        );
        kernel_json.push(format!(
            "{{\"case\": \"{}\", \"out_features\": {}, \"in_features\": {}, \
             \"batch\": {}, \"pulses\": {}, \"tile\": {}, \"train\": \"thermometer\", \
             \"reference_ms\": {ref_ms:.3}, \"cached_ms\": {cached_ms:.3}, \
             \"speedup\": {speedup:.3}, \
             \"reference_samples_pulses_per_s\": {:.0}, \
             \"cached_samples_pulses_per_s\": {sps:.0}, \
             \"max_abs_diff\": {max_abs_diff:.3e}, \"agree_within_tolerance\": true}}",
            json_escape(case.name),
            case.out_features,
            case.in_features,
            case.batch,
            case.pulses,
            case.tile,
            throughput(case.batch, case.pulses, ref_ms),
        ));
    }

    let mvm_path = results_dir().join("BENCH_mvm.json");
    let mut f = std::fs::File::create(&mvm_path)?;
    writeln!(
        f,
        "{{\"bench\": \"mvm_kernels\", \"smoke\": {smoke}, \"seed\": {}, \
         \"repeats\": {repeats}, \"warmup\": 1, \"threads\": 1, \
         \"timing\": \"median over repeats after one warmup execute\", \
         \"tolerance\": \"cached agrees with reference within 1e-5 relative\", \
         \"cases\": [{}]}}",
        cli.seed,
        kernel_json.join(", ")
    )?;
    println!("# wrote {}", mvm_path.display());
    Ok(())
}
