//! Serving-layer benchmark: offered load × chaos sweep.
//!
//! Deploys the tiny VGG onto guarded crossbars, then drives the
//! `membit-serve` discrete-event simulator through a grid of offered
//! loads (inter-arrival gap as a fraction of the calibrated batch
//! service latency) and chaos upset rates. For every cell it reports
//! completed/expired/rejected counts, virtual-latency percentiles
//! (p50/p95/p99 from the streaming log-bucket histogram), serve-level
//! retries, guard activity and wall-clock throughput, and writes the
//! grid to `BENCH_serve.json` under the results directory.
//!
//! Every cell asserts the serving invariants: the stats accounting
//! identity holds, overload surfaces as typed rejections (never silent
//! drops), and the request log replays **bitwise**.
//!
//! Options (besides the shared bench flags):
//!
//! * `--smoke` — a two-cell grid with few requests: a seconds-long CI
//!   run that still exercises admission control, chaos injection,
//!   deadline expiry, replay verification and the JSON emission path.

use std::error::Error;
use std::io::Write as _;
use std::time::Instant;

use membit_bench::chart::StreamingHistogram;
use membit_bench::{results_dir, Cli, Scale};
use membit_core::{DeploymentPolicy, DeviceEvalConfig, DeviceVgg};
use membit_nn::{Params, Vgg, VggConfig};
use membit_serve::{replay, simulate, ArrivalEvent, ArrivalKind, ServeConfig, ServeError};
use membit_tensor::{Rng, RngStream};
use membit_xbar::{GuardPolicy, XbarConfig};

/// Deploys the tiny VGG afresh (same seeds → identical device state, so
/// every sweep cell starts from the same hardware).
fn deploy_tiny(seed: u64, threads: Option<usize>) -> Result<DeviceVgg, Box<dyn Error>> {
    let mut init = Rng::from_seed(seed).stream(RngStream::Init);
    let mut params = Params::new();
    let vgg = Vgg::new(&VggConfig::tiny(), &mut params, &mut init)?;
    let mut dev = Rng::from_seed(seed).stream(RngStream::Device);
    let mut device = DeviceVgg::deploy(
        &vgg,
        &params,
        &DeviceEvalConfig {
            xbar: XbarConfig::functional(0.05).with_guard(GuardPolicy::standard()),
            pulses: vec![8, 8, 8],
            act_levels: 9,
            policy: DeploymentPolicy::default(),
        },
        &mut dev,
    )?;
    if let Some(t) = threads {
        device.set_max_threads(t)?;
    }
    Ok(device)
}

fn sample(i: usize) -> Vec<f32> {
    (0..3 * 8 * 8)
        .map(|j| (((i * 7 + j) % 9) as f32 / 4.0 - 1.0).clamp(-1.0, 1.0))
        .collect()
}

/// The arrival schedule for one sweep cell: `n` requests spaced
/// `gap_ns` apart, with a chaos injection every `chaos_every` requests
/// (0 = never) at `chaos_rate`.
fn schedule(n: usize, gap_ns: u64, chaos_every: usize, chaos_rate: f32) -> Vec<ArrivalEvent> {
    let mut events = Vec::new();
    for i in 0..n {
        let at_ns = i as u64 * gap_ns;
        if chaos_every > 0 && i > 0 && i % chaos_every == 0 {
            events.push(ArrivalEvent {
                at_ns,
                kind: ArrivalKind::Chaos { rate: chaos_rate },
            });
        }
        events.push(ArrivalEvent {
            at_ns,
            kind: ArrivalKind::Request {
                input: sample(i),
                deadline_ns: None,
            },
        });
    }
    events
}

/// Measures the virtual service latency of a single-request batch —
/// the unit the load factors are expressed against.
fn calibrate(seed: u64, threads: Option<usize>) -> Result<u64, Box<dyn Error>> {
    let model = deploy_tiny(seed, threads)?;
    let report = simulate(model, ServeConfig::standard(seed), &schedule(1, 0, 0, 0.0))?;
    let latency = report
        .outcomes
        .first()
        .and_then(|o| o.result.as_ref().ok())
        .map(|r| r.latency_ns)
        .ok_or("calibration request did not complete")?;
    Ok(latency.max(1))
}

#[allow(clippy::too_many_lines)]
fn main() -> Result<(), Box<dyn Error>> {
    let cli = Cli::parse();
    let smoke = cli.rest.iter().any(|a| a == "--smoke");

    // load = service_latency / inter-arrival gap (1.0 = arrivals match
    // single-request service rate; batching pushes capacity higher)
    let (loads, chaos_rates, n_requests): (Vec<f64>, Vec<f32>, usize) = if smoke {
        (vec![0.5, 8.0], vec![0.0, 0.02], 10)
    } else {
        match cli.scale {
            Scale::Quick => (vec![0.5, 1.0, 2.0, 8.0], vec![0.0, 0.02], 24),
            Scale::Full => (
                vec![0.25, 0.5, 1.0, 2.0, 4.0, 8.0],
                vec![0.0, 0.01, 0.05],
                64,
            ),
        }
    };

    let service_ns = calibrate(cli.seed, cli.threads)?;
    println!("# calibrated single-request service latency: {service_ns} ns (virtual)");
    println!(
        "# sweeping {} loads x {} chaos rates, {} requests per cell",
        loads.len(),
        chaos_rates.len(),
        n_requests
    );

    let mut cell_json = Vec::new();
    for &chaos_rate in &chaos_rates {
        for &load in &loads {
            let gap_ns = ((service_ns as f64 / load).round() as u64).max(1);
            let chaos_every = if chaos_rate > 0.0 { 5 } else { 0 };
            let events = schedule(n_requests, gap_ns, chaos_every, chaos_rate);

            let mut cfg = ServeConfig::standard(cli.seed);
            cfg.queue_capacity = 16;
            let retry = cfg.retry;

            let model = deploy_tiny(cli.seed, cli.threads)?;
            let wall = Instant::now();
            let report = simulate(model, cfg, &events)?;
            let wall_s = wall.elapsed().as_secs_f64();

            // serving invariants hold in every cell
            assert!(report.stats.accounted(), "accounting violated: {:?}", report.stats);
            let outcomes = report.outcomes.len();
            assert_eq!(outcomes, n_requests, "a request vanished without an outcome");

            let mut hist = StreamingHistogram::new();
            for o in &report.outcomes {
                if let Ok(r) = &o.result {
                    hist.record(r.latency_ns as f64);
                }
            }
            let s = &report.stats;
            let rejected = s.rejected_queue_full + s.rejected_shed;

            // the log replays bitwise against a fresh deployment
            let mut fresh = deploy_tiny(cli.seed, cli.threads)?;
            let rows = replay(&mut fresh, cli.seed, &retry, &report.log)?;
            assert_eq!(rows.len() as u64, s.completed);
            for (id, row) in &rows {
                let live = report
                    .outcomes
                    .iter()
                    .find(|o| o.id == Some(*id) && o.result.is_ok());
                let live = live.and_then(|o| o.result.as_ref().ok()).ok_or("replay id")?;
                assert_eq!(live.output, *row, "replay diverged for id {id}");
            }

            let throughput = if wall_s > 0.0 {
                s.exec.pulses as f64 / wall_s
            } else {
                0.0
            };
            println!(
                "load {load:>5.2} chaos {chaos_rate:<5.3}: completed {:>3} expired {:>3} \
                 rejected {:>3} | p50 {:>9.0} p95 {:>9.0} p99 {:>9.0} ns | retries {} \
                 guard_viol {} upsets {} | {:>12.0} pulses/s",
                s.completed,
                s.expired,
                rejected,
                hist.p50(),
                hist.p95(),
                hist.p99(),
                s.retries,
                s.exec.guard.violations,
                s.chaos_upsets,
                throughput,
            );

            cell_json.push(format!(
                "{{\"load\": {load}, \"chaos_rate\": {chaos_rate}, \"gap_ns\": {gap_ns}, \
                 \"requests\": {n_requests}, \"completed\": {}, \"expired\": {}, \
                 \"rejected_queue_full\": {}, \"rejected_shed\": {}, \"failed\": {}, \
                 \"late_completions\": {}, \"batches\": {}, \"retries\": {}, \
                 \"chaos_events\": {}, \"chaos_upsets\": {}, \"max_queue_depth\": {}, \
                 \"guard_checks\": {}, \"guard_violations\": {}, \
                 \"latency_ns\": {{\"p50\": {:.0}, \"p95\": {:.0}, \"p99\": {:.0}, \
                 \"mean\": {:.0}, \"min\": {:.0}, \"max\": {:.0}}}, \
                 \"pulses\": {}, \"wall_s\": {wall_s:.4}, \"replay_bitwise\": true}}",
                s.completed,
                s.expired,
                s.rejected_queue_full,
                s.rejected_shed,
                s.failed,
                s.late_completions,
                s.batches,
                s.retries,
                s.chaos_events,
                s.chaos_upsets,
                s.max_queue_depth,
                s.exec.guard.checks,
                s.exec.guard.violations,
                hist.p50(),
                hist.p95(),
                hist.p99(),
                hist.mean(),
                hist.min(),
                hist.max(),
                s.exec.pulses,
            ));
        }
    }

    if smoke {
        // backpressure must actually engage at the overload point: the
        // highest-load no-chaos cell re-runs with a tiny queue
        let gap_ns = ((service_ns as f64 / 8.0).round() as u64).max(1);
        let mut cfg = ServeConfig::standard(cli.seed);
        cfg.queue_capacity = 2;
        let report = simulate(
            deploy_tiny(cli.seed, cli.threads)?,
            cfg,
            &schedule(12, gap_ns, 0, 0.0),
        )?;
        let typed = report
            .outcomes
            .iter()
            .filter(|o| {
                matches!(
                    o.result,
                    Err(ServeError::QueueFull { .. }) | Err(ServeError::DeadlineExceeded { .. })
                )
            })
            .count() as u64;
        assert!(
            report.stats.rejected_queue_full > 0,
            "overload did not trigger backpressure: {:?}",
            report.stats
        );
        assert_eq!(
            typed,
            report.stats.rejected_queue_full + report.stats.expired,
            "every non-completion must be a typed error"
        );
        println!(
            "# smoke: backpressure engaged ({} typed rejections), accounting + replay verified",
            report.stats.rejected_queue_full
        );
    }

    let path = results_dir().join("BENCH_serve.json");
    let mut f = std::fs::File::create(&path)?;
    writeln!(
        f,
        "{{\"bench\": \"serve\", \"smoke\": {smoke}, \"seed\": {}, \
         \"model\": \"tiny VGG on guarded crossbars (functional 0.05 noise)\", \
         \"service_ns\": {service_ns}, \
         \"load_definition\": \"single-request service latency / inter-arrival gap\", \
         \"latency_domain\": \"virtual ns from the energy model (queueing + execution)\", \
         \"invariants\": \"accounting identity, typed backpressure, bitwise replay\", \
         \"cells\": [{}]}}",
        cli.seed,
        cell_json.join(", ")
    )?;
    println!("# wrote {}", path.display());
    Ok(())
}
