//! Ablation F (extension): architecture generality.
//!
//! The paper argues GBO is "a general solution to various network
//! configurations" (heuristic per-layer choices are not). This bench runs
//! the *identical* pipeline — pre-train → calibrate → layer sensitivity →
//! GBO search → deploy — on a binary-weight **ResNet** with skip
//! connections and channel projections, a topology the VGG code never
//! saw. Nothing in `membit-core` changes; only the model differs.

use std::error::Error;

use membit_bench::{results_dir, Cli};
use membit_core::{
    calibrate_noise, evaluate, layer_sensitivity, pretrain, GboConfig, GboTrainer, PlaHook,
    TrainConfig, write_csv,
};
use membit_data::{synth_cifar, SynthCifarConfig};
use membit_nn::{NoNoise, Params, ResNet, ResNetConfig};
use membit_tensor::{Rng, RngStream};

fn main() -> Result<(), Box<dyn Error>> {
    let cli = Cli::parse();
    let sigma = cli.f32_opt("--sigma").unwrap_or(15.0);
    let epochs = match cli.scale {
        membit_bench::Scale::Quick => 12,
        membit_bench::Scale::Full => 25,
    };
    let mut data_cfg = SynthCifarConfig::default_experiment();
    data_cfg.train_per_class = 200;
    data_cfg.test_per_class = 50;
    let (train, test) = synth_cifar(&data_cfg, cli.seed)?;

    let mut rng = Rng::from_seed(cli.seed).stream(RngStream::Init);
    let mut params = Params::new();
    let mut net = ResNet::new(&ResNetConfig::small(), &mut params, &mut rng)?;
    let layers = net.crossbar_layers();
    println!(
        "# BWNN ResNet: {} crossbar layers, {} parameters",
        layers,
        params.num_scalars()
    );

    let mut tc = TrainConfig::paper(epochs, cli.seed);
    tc.lr = 2e-2;
    let t = std::time::Instant::now();
    pretrain(&mut net, &mut params, &train, &tc, &mut NoNoise)?;
    let clean = evaluate(&mut net, &params, &test, 100)? * 100.0;
    println!("# trained {epochs} epochs in {:.0}s, clean accuracy {clean:.2}%", t.elapsed().as_secs_f32());

    let cal = calibrate_noise(&mut net, &params, &train, 100, 4, 14.0)?;
    println!("# layer RMS: {:?}", cal.rms());

    // Fig.2-style sensitivity on the new topology
    let sens = layer_sensitivity(
        &mut net,
        &params,
        &test,
        &cal.sigma_abs(sigma),
        100,
        2,
        cli.seed,
    )?;
    let pretty: Vec<String> = sens.iter().map(|a| format!("{:.1}", a * 100.0)).collect();
    println!("layer sensitivity at σ={sigma}: [{}]%", pretty.join(", "));

    // noisy evaluation helper
    let eval_pulses = |net: &mut ResNet,
                       params: &Params,
                       pulses: Vec<usize>|
     -> membit_core::Result<f32> {
        let mut acc = 0.0;
        for rep in 0..2u64 {
            let mut hook = PlaHook::new(
                pulses.clone(),
                cal.sigma_abs(sigma),
                9,
                Rng::from_seed(cli.seed ^ (rep + 1)).stream(RngStream::Noise),
            )?;
            acc += membit_core::evaluate_with_hook(net, params, &test, 100, &mut hook)?;
        }
        Ok(acc / 2.0 * 100.0)
    };

    let baseline = eval_pulses(&mut net, &params, vec![8; layers])?;
    println!("baseline p=8:  {baseline:.2}%");
    let pla16 = eval_pulses(&mut net, &params, vec![16; layers])?;
    println!("uniform p=16:  {pla16:.2}%");

    // the unchanged GBO search on the new topology
    let mut gbo_cfg = GboConfig::paper(cli.f32_opt("--gamma").unwrap_or(8e-4), cli.seed);
    gbo_cfg.epochs = membit_bench::gbo_epochs(cli.scale);
    let mut trainer = GboTrainer::new(layers, gbo_cfg)?;
    let result = trainer.search(&mut net, &params, &train, &cal, sigma)?;
    let acc_gbo = eval_pulses(&mut net, &params, result.selected_pulses.clone())?;
    println!(
        "GBO:           {acc_gbo:.2}% at avg {:.2} pulses {:?}",
        result.avg_pulses(),
        result.selected_pulses
    );
    println!();
    println!("the identical GBO machinery (hooks, λ mixture, latency regularizer)");
    println!("searched a residual topology with projections — no code changes.");

    let rows = vec![
        vec!["clean".to_string(), String::new(), format!("{clean:.2}")],
        vec!["baseline_p8".to_string(), "[8; all]".into(), format!("{baseline:.2}")],
        vec!["pla16".to_string(), "[16; all]".into(), format!("{pla16:.2}")],
        vec![
            "gbo".to_string(),
            format!("{:?}", result.selected_pulses),
            format!("{acc_gbo:.2}"),
        ],
    ];
    let path = results_dir().join("ablation_arch.csv");
    write_csv(&path, &["method", "pulses", "accuracy_pct"], &rows)?;
    println!("# wrote {}", path.display());
    Ok(())
}
