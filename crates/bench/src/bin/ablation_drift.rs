//! Ablation E (extension beyond the paper): conductance retention drift.
//!
//! Ages the deployed crossbars with a PCM-style power-law decay
//! (`G(t) = G₀(1+t)^{−ν}`, per-cell ν variation) and measures accuracy
//! over time for the 8-pulse baseline vs the 16-pulse code. Drift shrinks
//! the differential signal while the additive noise stays constant, so
//! the SNR advantage of longer codes should grow with device age.

use std::error::Error;

use membit_bench::{results_dir, Cli};
use membit_core::{write_csv, DeploymentPolicy, DeviceEvalConfig, DeviceVgg};
use membit_data::Dataset;
use membit_tensor::{Rng, RngStream, Tensor};
use membit_xbar::XbarConfig;

fn main() -> Result<(), Box<dyn Error>> {
    let cli = Cli::parse();
    let exp = membit_bench::setup_experiment(&cli)?;
    let (vgg, params) = exp.model();

    let subset = match cli.scale {
        membit_bench::Scale::Quick => 100,
        membit_bench::Scale::Full => 200,
    };
    let test = exp.test_set();
    let n = subset.min(test.len());
    let (images, _) = test.batch(0, n)?;
    let subset_set = Dataset::new(
        Tensor::from_vec(images.as_slice().to_vec(), images.shape())?,
        test.labels()[..n].to_vec(),
        test.num_classes(),
    )?;

    let sigma_paper = cli.f32_opt("--sigma").unwrap_or(10.0);
    let sigma_abs = exp.calibration().sigma_abs(sigma_paper);
    let sigma_mean = sigma_abs.iter().sum::<f32>() / sigma_abs.len() as f32;
    let nu = 0.02f32;
    let nu_sigma = 0.005f32;

    println!("retention drift at σ = {sigma_paper} (ν = {nu} ± {nu_sigma}, {n} images)");
    println!(
        "{:>12} | {:>10} {:>10}",
        "age (hours)", "p=8 Acc %", "p=16 Acc %"
    );
    let mut rows = Vec::new();
    let hours_grid = [0.0f32, 10.0, 100.0, 1000.0, 10000.0];
    for &hours in &hours_grid {
        let mut accs = Vec::new();
        for pulses in [8usize, 16] {
            let mut rng = Rng::from_seed(cli.seed).stream(RngStream::Device);
            let mut device = DeviceVgg::deploy(
                vgg,
                params,
                &DeviceEvalConfig {
                    xbar: XbarConfig::functional(sigma_mean),
                    pulses: vec![pulses; 7],
                    act_levels: 9,
                    policy: DeploymentPolicy::default(),
                },
                &mut rng,
            )?;
            device.age(hours, nu, nu_sigma, &mut rng);
            let (acc, _) = device.evaluate(&subset_set, 20, &mut rng)?;
            accs.push(acc * 100.0);
        }
        println!("{hours:>12} | {:>10.1} {:>10.1}", accs[0], accs[1]);
        rows.push(vec![
            format!("{hours}"),
            format!("{:.2}", accs[0]),
            format!("{:.2}", accs[1]),
        ]);
    }
    println!();
    println!("expected shape: both degrade as the stored weights fade; the 16-pulse");
    println!("code holds its advantage (or widens it) because drift attacks the");
    println!("signal while pulse averaging keeps attacking the noise.");

    let path = results_dir().join("ablation_drift.csv");
    write_csv(&path, &["hours", "acc_p8_pct", "acc_p16_pct"], &rows)?;
    println!("# wrote {}", path.display());
    Ok(())
}
