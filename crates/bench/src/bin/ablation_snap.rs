//! Ablation D (extension beyond the paper): snap-error-aware GBO.
//!
//! The paper's Eq. 5 mixture models only the Gaussian crossbar noise, so
//! the search cannot see that non-exact pulse budgets (10, 12, 14 on a
//! p = 8 base) also pay a PLA representation error at deployment. With
//! `snap_error_fan_in` set, each branch's variance gains the analytic
//! `fan_in · MSE(q_k)` term; this ablation compares default vs
//! snap-aware searches at matched γ.

use std::error::Error;

use membit_bench::{gbo_epochs, results_dir, Cli};
use membit_core::{write_csv, GboConfig};

fn main() -> Result<(), Box<dyn Error>> {
    let cli = Cli::parse();
    let sigma = cli.f32_opt("--sigma").unwrap_or(15.0);
    let mut exp = membit_bench::setup_experiment(&cli)?;
    let fan_ins = exp.model().0.crossbar_fan_ins();

    println!("snap-error-aware GBO vs paper-faithful GBO at σ = {sigma}");
    println!(
        "{:<12} {:>9} {:>10} {:<26} {:>8}",
        "search", "γ", "avg pulses", "# pulses per layer", "Acc %"
    );
    let mut rows = Vec::new();
    for gamma in [2e-4f32, 1e-3, 5e-3] {
        for (name, aware) in [("paper", false), ("snap-aware", true)] {
            let mut cfg = GboConfig::paper(gamma, cli.seed);
            cfg.epochs = gbo_epochs(cli.scale);
            if aware {
                cfg.snap_error_fan_in = Some(fan_ins.clone());
            }
            let result = exp.run_gbo(sigma, cfg)?;
            let acc = exp.eval_pla(sigma, &result.selected_pulses)?;
            println!(
                "{:<12} {:>9} {:>10.2} {:<26} {:>8.2}",
                name,
                gamma,
                result.avg_pulses(),
                format!("{:?}", result.selected_pulses),
                acc
            );
            rows.push(vec![
                name.to_string(),
                format!("{gamma}"),
                format!("{:.2}", result.avg_pulses()),
                format!("{:?}", result.selected_pulses),
                format!("{acc:.2}"),
            ]);
        }
    }
    println!();
    println!("the snap-aware search should steer layers toward exact budgets");
    println!("(8, 16) when the representation error outweighs noise suppression.");

    let path = results_dir().join("ablation_snap.csv");
    write_csv(
        &path,
        &["search", "gamma", "avg_pulses", "pulses", "accuracy_pct"],
        &rows,
    )?;
    println!("# wrote {}", path.display());
    Ok(())
}
