//! Network-level encoding comparison (Fig. 1(b) carried to accuracy):
//! runs the trained VGG9-BWNN with *bit-sliced* inputs vs *thermometer*
//! inputs at comparable information content, under the same per-pulse
//! crossbar noise.
//!
//! Bit slicing with `b` pulses accumulates `Σ4^i/(Σ2^i)²·σ²` of noise
//! (Eq. 2) — asymptotically `σ²/3` — while a thermometer code of `p`
//! pulses accumulates `σ²/p` (Eq. 3). The custom hook below is written
//! against the public [`MvmNoiseHook`] API, demonstrating how downstream
//! users add their own encoding models.

use std::error::Error;

use membit_autograd::{Tape, VarId};
use membit_bench::{results_dir, Cli};
use membit_core::write_csv;
use membit_encoding::variance::bit_slicing_variance;
use membit_nn::MvmNoiseHook;
use membit_tensor::{Rng, RngStream};

/// Functional model of bit-sliced inputs: activations snapped onto the
/// `2^b`-level grid, MVM outputs perturbed with the Eq. 2 accumulated
/// variance.
struct BitSlicingNoise {
    bits: usize,
    sigma: Vec<f32>,
    rng: Rng,
}

impl MvmNoiseHook for BitSlicingNoise {
    fn apply(&mut self, tape: &mut Tape, layer: usize, mvm_out: VarId) -> membit_nn::Result<VarId> {
        let sigma = self.sigma[layer];
        if sigma == 0.0 {
            return Ok(mvm_out);
        }
        let var = bit_slicing_variance(self.bits, f64::from(sigma) * f64::from(sigma)) as f32;
        let shape = tape.value(mvm_out).shape().to_vec();
        let noise = self.rng.normal_tensor(&shape, 0.0, var.sqrt());
        let c = tape.constant(noise);
        tape.add(mvm_out, c)
    }

    fn encode(&mut self, tape: &mut Tape, _layer: usize, input: VarId) -> membit_nn::Result<VarId> {
        // a b-bit sliced code carries 2^b uniform levels
        tape.quantize_ste(input, 1usize << self.bits)
    }
}

fn main() -> Result<(), Box<dyn Error>> {
    let cli = Cli::parse();
    let mut exp = membit_bench::setup_experiment(&cli)?;
    let repeats = exp.config().eval_repeats;
    let batch = exp.config().eval_batch;

    println!("network-level encoding comparison (VGG9-BWNN, SynthCIFAR)");
    println!(
        "{:<28} {:>7} {:>8} {:>8} {:>8}",
        "encoding", "pulses", "σ=10", "σ=15", "σ=20"
    );
    let mut rows = Vec::new();

    // thermometer rows via the standard PLA path
    for pulses in [4usize, 8, 16] {
        let mut accs = Vec::new();
        for sigma in [10.0f32, 15.0, 20.0] {
            accs.push(exp.eval_pla(sigma, &[pulses; 7])?);
        }
        println!(
            "{:<28} {:>7} {:>8.1} {:>8.1} {:>8.1}",
            "thermometer", pulses, accs[0], accs[1], accs[2]
        );
        rows.push(vec![
            "thermometer".into(),
            pulses.to_string(),
            format!("{:.2}", accs[0]),
            format!("{:.2}", accs[1]),
            format!("{:.2}", accs[2]),
        ]);
    }

    // amplitude (multi-level DAC) reference: one analog pulse, full σ²
    {
        let mut accs = Vec::new();
        for sigma in [10.0f32, 15.0, 20.0] {
            let sigma_abs = exp.calibration().sigma_abs(sigma);
            let mut acc = 0.0f32;
            for rep in 0..repeats as u64 {
                // GaussianMvmNoise with p = 1 is exactly the amplitude model
                let mut hook = membit_core::GaussianMvmNoise::new(
                    sigma_abs.clone(),
                    vec![1; 7],
                    Rng::from_seed(cli.seed ^ (rep + 1)).stream(RngStream::Noise),
                )?;
                let test = exp.test_set().clone();
                let (vgg, params) = exp.model_mut();
                acc += membit_core::evaluate_with_hook(vgg, params, &test, batch, &mut hook)?;
            }
            accs.push(acc / repeats as f32 * 100.0);
        }
        println!(
            "{:<28} {:>7} {:>8.1} {:>8.1} {:>8.1}",
            "amplitude (multi-level DAC)", 1, accs[0], accs[1], accs[2]
        );
        rows.push(vec![
            "amplitude".into(),
            "1".into(),
            format!("{:.2}", accs[0]),
            format!("{:.2}", accs[1]),
            format!("{:.2}", accs[2]),
        ]);
    }

    // bit-slicing rows via the custom hook
    for bits in [3usize, 4, 8] {
        let mut accs = Vec::new();
        for sigma in [10.0f32, 15.0, 20.0] {
            let sigma_abs = exp.calibration().sigma_abs(sigma);
            let mut acc = 0.0f32;
            for rep in 0..repeats as u64 {
                let mut hook = BitSlicingNoise {
                    bits,
                    sigma: sigma_abs.clone(),
                    rng: Rng::from_seed(cli.seed ^ (rep + 1)).stream(RngStream::Noise),
                };
                let test = exp.test_set().clone();
                let (vgg, params) = exp.model_mut();
                acc += membit_core::evaluate_with_hook(vgg, params, &test, batch, &mut hook)?;
            }
            accs.push(acc / repeats as f32 * 100.0);
        }
        println!(
            "{:<28} {:>7} {:>8.1} {:>8.1} {:>8.1}",
            format!("bit slicing ({bits}-bit)"),
            bits,
            accs[0],
            accs[1],
            accs[2]
        );
        rows.push(vec![
            format!("bit_slicing_{bits}"),
            bits.to_string(),
            format!("{:.2}", accs[0]),
            format!("{:.2}", accs[1]),
            format!("{:.2}", accs[2]),
        ]);
    }

    println!();
    println!("expected shape: bit slicing flattens near the σ²/3 noise floor no matter");
    println!("how many bits it spends; thermometer keeps improving as 1/p — the paper's");
    println!("reason for building GBO on thermometer codes.");

    let path = results_dir().join("encoding_compare.csv");
    write_csv(
        &path,
        &["encoding", "pulses", "acc_s10", "acc_s15", "acc_s20"],
        &rows,
    )?;
    println!("# wrote {}", path.display());
    Ok(())
}
