//! Ablation F (extension beyond the paper): fault-aware deployment.
//!
//! Sweeps the stuck-cell rate of the device model and deploys the same
//! trained network under three policies — no recovery, march-test +
//! remap, and remap + in-service drift refresh — measuring accuracy and
//! the recovery statistics at each point. The arrays are aged after
//! programming so the refresh arm has drift to repair on top of the
//! manufacturing faults.
//!
//! Expected shape: accuracy of the unprotected deployment collapses as
//! stuck cells accumulate; remapping recovers most of the loss while
//! faults are sparse enough for spares/flips to absorb; refresh adds the
//! retention-drift headroom back on top.

use std::error::Error;

use membit_bench::{results_dir, Cli};
use membit_core::{
    write_csv, DeploymentPolicy, DeviceEvalConfig, DeviceVgg, FaultAblationRow,
};
use membit_data::Dataset;
use membit_tensor::{Rng, RngStream, Tensor};
use membit_xbar::{HealthMonitor, RecoveryPolicy, XbarConfig};

/// Hours of retention drift applied between programming and evaluation.
/// Chosen for a mean conductance decay of ≈10% — enough that the refresh
/// arm has real drift to repair, mild enough that the unprotected arm
/// starts from healthy accuracy and the stuck-fault gradient is visible.
const AGE_HOURS: f32 = 200.0;
const NU: f32 = 0.02;
const NU_SIGMA: f32 = 0.005;

fn policy_for(label: &str, batch: u64) -> DeploymentPolicy {
    match label {
        "none" => DeploymentPolicy::default(),
        "remap" => DeploymentPolicy {
            recovery: Some(RecoveryPolicy::standard()),
            monitor: None,
        },
        "remap+refresh" => DeploymentPolicy {
            recovery: Some(RecoveryPolicy::standard()),
            monitor: Some(HealthMonitor {
                check_interval: batch,
                // fire on the ≈10% decay this sweep applies
                decay_threshold: 0.05,
                ..HealthMonitor::standard()
            }),
        },
        other => unreachable!("unknown policy label {other}"),
    }
}

fn main() -> Result<(), Box<dyn Error>> {
    let cli = Cli::parse();
    let exp = membit_bench::setup_experiment(&cli)?;
    let (vgg, params) = exp.model();

    let subset = match cli.scale {
        membit_bench::Scale::Quick => 100,
        membit_bench::Scale::Full => 200,
    };
    let batch = 20usize;
    let test = exp.test_set();
    let n = subset.min(test.len());
    let (images, _) = test.batch(0, n)?;
    let subset_set = Dataset::new(
        Tensor::from_vec(images.as_slice().to_vec(), images.shape())?,
        test.labels()[..n].to_vec(),
        test.num_classes(),
    )?;

    let stuck_rates = [0.0f32, 0.005, 0.01, 0.02, 0.05];
    let policies = ["none", "remap", "remap+refresh"];

    println!(
        "fault-aware deployment ablation ({n} images, {AGE_HOURS} h drift, \
         stuck rate applied per polarity)"
    );
    println!(
        "{:>10} | {:>8} {:>8} {:>14} | {:>8} {:>8} {:>8}",
        "stuck", "policy", "acc %", "detected", "fixed", "stuck", "refresh"
    );

    let mut rows: Vec<FaultAblationRow> = Vec::new();
    for &rate in &stuck_rates {
        let mut xbar = XbarConfig::ideal();
        xbar.noise.device.on_off_ratio = 20.0;
        xbar.noise.device.d2d_sigma = 0.05;
        xbar.noise.device.c2c_sigma = 0.02;
        xbar.noise.device.stuck_on_rate = rate;
        xbar.noise.device.stuck_off_rate = rate;
        for policy in policies {
            let mut rng = Rng::from_seed(cli.seed).stream(RngStream::Device);
            let mut device = DeviceVgg::deploy(
                vgg,
                params,
                &DeviceEvalConfig {
                    xbar,
                    pulses: vec![8; 7],
                    act_levels: 9,
                    policy: policy_for(policy, batch as u64),
                },
                &mut rng,
            )?;
            device.age(AGE_HOURS, NU, NU_SIGMA, &mut rng);
            let (acc, stats) = device.evaluate(&subset_set, batch, &mut rng)?;
            let report = device.recovery_report();
            println!(
                "{:>10} | {:>8} {:>8.1} {:>14} | {:>8} {:>8} {:>8}",
                rate,
                policy,
                acc * 100.0,
                report.faults_detected,
                report.cells_recovered,
                stats.unrecoverable_cells,
                stats.refreshes
            );
            rows.push(FaultAblationRow {
                policy: policy.to_string(),
                stuck_rate: rate,
                accuracy: acc * 100.0,
                faults_detected: report.faults_detected,
                cells_recovered: report.cells_recovered,
                unrecoverable_cells: stats.unrecoverable_cells,
                degraded_tiles: stats.degraded_tiles,
                refreshes: stats.refreshes,
            });
        }
    }

    // acceptance check: at 1% stuck, remap+refresh must claw back at
    // least half the accuracy the unprotected deployment loses relative
    // to its own fault-free point
    let acc = |policy: &str, rate: f32| {
        rows.iter()
            .find(|r| r.policy == policy && (r.stuck_rate - rate).abs() < 1e-9)
            .map(|r| r.accuracy)
            .unwrap_or(f32::NAN)
    };
    let baseline_clean = acc("none", 0.0);
    let baseline_faulty = acc("none", 0.01);
    let protected = acc("remap+refresh", 0.01);
    let lost = baseline_clean - baseline_faulty;
    let recovered = protected - baseline_faulty;
    println!();
    println!(
        "at 1% stuck: unprotected loses {lost:.1} pts, remap+refresh recovers \
         {recovered:.1} pts ({:.0}% of the loss)",
        if lost.abs() > 1e-6 {
            100.0 * recovered / lost
        } else {
            100.0
        }
    );
    if recovered < 0.5 * lost {
        println!("WARNING: recovery below the ≥50% target");
    }

    let path = results_dir().join("ablation_fault.csv");
    let records: Vec<Vec<String>> = rows.iter().map(FaultAblationRow::to_record).collect();
    write_csv(&path, &FaultAblationRow::CSV_HEADER, &records)?;
    println!("# wrote {}", path.display());
    Ok(())
}
