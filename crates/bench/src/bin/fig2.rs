//! Fig. 2: layer-wise noise sensitivity — Gaussian noise injected at one
//! crossbar layer at a time, accuracy per target layer.

use std::error::Error;

use membit_bench::{results_dir, Cli};
use membit_core::{layer_sensitivity, write_csv};

fn main() -> Result<(), Box<dyn Error>> {
    let cli = Cli::parse();
    let mut exp = membit_bench::setup_experiment(&cli)?;
    let clean = exp.eval_clean()?;
    println!("clean accuracy: {clean:.2}%");
    println!();
    println!("Fig. 2 — accuracy with N(0, σ²) injected at one layer only");
    let repeats = exp.config().eval_repeats;
    let batch = exp.config().eval_batch;
    let seed = cli.seed;

    let mut rows = Vec::new();
    for sigma in [10.0f32, 15.0, 20.0] {
        let sigma_abs = exp.calibration().sigma_abs(sigma);
        let series = {
            let test = exp.test_set().clone();
            let calibrated = sigma_abs.clone();
            let (vgg, p) = exp.model_mut();
            layer_sensitivity(vgg, p, &test, &calibrated, batch, repeats, seed)?
        };
        let pretty: Vec<String> = series.iter().map(|a| format!("{:.1}", a * 100.0)).collect();
        println!("σ = {sigma:>4}: [{}]%", pretty.join(", "));
        for (layer, &acc) in series.iter().enumerate() {
            rows.push(vec![
                format!("{sigma}"),
                layer.to_string(),
                format!("{:.2}", acc * 100.0),
            ]);
        }
        let bars: Vec<(String, f64)> = series
            .iter()
            .enumerate()
            .map(|(l, &a)| (format!("layer {l}"), f64::from(a) * 100.0))
            .collect();
        print!("{}", membit_bench::chart::bar_chart(&bars, 40));
        // qualitative check: sensitivities differ across layers
        let min = series.iter().cloned().fold(f32::INFINITY, f32::min);
        let max = series.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        println!(
            "        spread: {:.1} points (non-uniform sensitivity: {})",
            (max - min) * 100.0,
            max - min > 0.01
        );
    }

    let path = results_dir().join("fig2.csv");
    write_csv(&path, &["sigma", "target_layer", "accuracy_pct"], &rows)?;
    println!("# wrote {}", path.display());
    Ok(())
}
