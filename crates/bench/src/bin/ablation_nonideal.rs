//! Ablation N (extension beyond the paper): physical non-idealities.
//!
//! Deploys the same trained network into a scenario × mitigation matrix:
//!
//! * **Scenarios** — `baseline` (nominal conditions), `ir_drop`
//!   (resistive wire network, [`NonIdealitySpec::realistic`]), `hot`
//!   (370 K operation: `√(T/T_REF)`-scaled noise, shrunken on/off
//!   ratio), `saf` (persistent stuck-at faults injected post-deploy),
//!   and `combined` (all three at once).
//! * **Mitigations** — `none` (bare deployment), `guard` (the ABFT
//!   checksum ladder), and `full` (guard + march-test/remap with the
//!   SAF error-correction arm, [`RecoveryPolicy::with_ecc`]).
//!
//! Acceptance: the full mitigation stack recovers ≥90 % of the
//! SAF-induced accuracy gap (or lands within one image of baseline),
//! the guard never escalates on fault-free scenarios, and every
//! scenario's deployment produces bitwise-identical outputs across
//! worker-thread counts. A second section quantifies how a GBO-style
//! heterogeneous pulse assignment holds up under IR drop and a
//! temperature sweep relative to the uniform 8-pulse baseline.
//!
//! Writes `ablation_nonideal.csv` (matrix + sweep rows) and
//! `BENCH_nonideal.json` under the results directory.
//!
//! Options (besides the shared bench flags): `--smoke` — tiny subset
//! for CI.

use std::error::Error;
use std::io::Write as _;

use membit_bench::{results_dir, Cli};
use membit_core::{write_csv, DeploymentPolicy, DeviceEvalConfig, DeviceVgg, NonIdealAblationRow};
use membit_data::Dataset;
use membit_tensor::{Rng, RngStream, Tensor};
use membit_xbar::{ExecOptions, GuardPolicy, NonIdealitySpec, RecoveryPolicy, XbarConfig, T_REF};

/// Functional noise level of every deployment.
const SIGMA: f32 = 0.1;
/// Persistent per-cell stuck-at rate of the SAF scenarios — high enough
/// to open a visible accuracy gap for the mitigation stack to close.
const SAF_RATE: f32 = 0.05;
/// Hot-corner operating temperature in kelvin.
const T_HOT: f32 = 370.0;

/// One scenario of the matrix: a non-ideality spec plus whether the SAF
/// burst is injected after deployment.
struct Scenario {
    label: String,
    nonideal: NonIdealitySpec,
    saf: bool,
}

impl Scenario {
    fn new(label: impl Into<String>, nonideal: NonIdealitySpec, saf: bool) -> Self {
        Self {
            label: label.into(),
            nonideal,
            saf,
        }
    }
}

fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario::new("baseline", NonIdealitySpec::ideal(), false),
        Scenario::new("ir_drop", NonIdealitySpec::realistic(), false),
        Scenario::new("hot", NonIdealitySpec::ideal().at_temperature(T_HOT), false),
        Scenario::new("saf", NonIdealitySpec::ideal(), true),
        Scenario::new(
            "combined",
            NonIdealitySpec::realistic().at_temperature(T_HOT),
            true,
        ),
    ]
}

fn main() -> Result<(), Box<dyn Error>> {
    let cli = Cli::parse();
    let smoke = cli.rest.iter().any(|a| a == "--smoke");
    let exp = membit_bench::setup_experiment(&cli)?;
    let (vgg, params) = exp.model();

    let subset = match (smoke, cli.scale) {
        (true, _) => 20,
        (false, membit_bench::Scale::Quick) => 100,
        (false, membit_bench::Scale::Full) => 200,
    };
    let batch = 10usize;
    let test = exp.test_set();
    let n = subset.min(test.len());
    let (images, _) = test.batch(0, n)?;
    let subset_set = Dataset::new(
        Tensor::from_vec(images.as_slice().to_vec(), images.shape())?,
        test.labels()[..n].to_vec(),
        test.num_classes(),
    )?;
    let (warm_images, _) = subset_set.batch(0, batch.min(n))?;

    let uniform_pulses = vec![8usize; 7];

    // builds one deployment of the matrix: configure, deploy, inject the
    // scenario's faults, repair under the `full` mitigation
    let deploy = |scenario: &Scenario,
                  mitigation: &str,
                  pulses: &[usize],
                  threads: Option<usize>,
                  rng: &mut Rng|
     -> Result<(DeviceVgg, u64), Box<dyn Error>> {
        let mut xbar = XbarConfig::functional(SIGMA).with_nonideal(scenario.nonideal);
        if let Some(t) = threads {
            xbar.exec = ExecOptions::with_threads(t);
        }
        match mitigation {
            "none" | "uniform" | "gbo" => {}
            "guard" => xbar = xbar.with_guard(GuardPolicy::standard()),
            "full" => {
                let mut policy = GuardPolicy::standard();
                policy.remap = RecoveryPolicy::with_ecc();
                xbar = xbar.with_guard(policy);
            }
            other => unreachable!("unknown mitigation {other}"),
        }
        let mut device = DeviceVgg::deploy(
            vgg,
            params,
            &DeviceEvalConfig {
                xbar,
                pulses: pulses.to_vec(),
                act_levels: 9,
                policy: DeploymentPolicy::default(),
            },
            rng,
        )?;
        let mut cells_corrected = 0;
        if scenario.saf {
            device.inject_stuck_faults(SAF_RATE, rng)?;
            if mitigation == "full" {
                // proactive repair pass: march test, analog remap, and
                // digital SAF correction entries for the residue
                let report = device.remap_all(&RecoveryPolicy::with_ecc(), rng)?;
                cells_corrected = report.cells_corrected;
            }
        }
        Ok((device, cells_corrected))
    };

    // one full evaluation arm: every arm deploys from the same seeded
    // stream, so hardware and fault sets are identical across the
    // mitigations of one scenario
    let arm = |scenario: &Scenario,
               mitigation: &str,
               pulses: &[usize]|
     -> Result<NonIdealAblationRow, Box<dyn Error>> {
        let mut rng = Rng::from_seed(cli.seed).stream(RngStream::Device);
        let (mut device, cells_corrected) = deploy(scenario, mitigation, pulses, None, &mut rng)?;
        device.forward(&warm_images, &mut rng)?; // mid-inference context
        let (acc, stats) = device.evaluate(&subset_set, batch, &mut rng)?;
        Ok(NonIdealAblationRow::from_stats(
            scenario.label.clone(),
            mitigation,
            scenario.nonideal.temperature,
            acc * 100.0,
            &stats,
            cells_corrected,
        ))
    };

    // a cheap probe forward for the thread-invariance check: both
    // thread counts perform the identical host-side RNG call sequence,
    // so any output difference must come from execution chunking
    let probe = |scenario: &Scenario, threads: usize| -> Result<Vec<f32>, Box<dyn Error>> {
        let mut rng = Rng::from_seed(cli.seed).stream(RngStream::Device);
        let (mut device, _) = deploy(scenario, "full", &uniform_pulses, Some(threads), &mut rng)?;
        let mut probe_rng = Rng::from_seed(cli.seed ^ 0x5151).stream(RngStream::Noise);
        let (out, _) = device.forward(&warm_images, &mut probe_rng)?;
        Ok(out.as_slice().to_vec())
    };

    // ------------------------------------------------------------------
    // Section 1: scenario × mitigation matrix
    // ------------------------------------------------------------------
    println!(
        "non-ideality ablation ({n} images, σ = {SIGMA}, SAF rate {:.1}%, hot corner {T_HOT} K)",
        SAF_RATE * 100.0
    );
    println!(
        "{:>9} | {:>5} | {:>6} | {:>8} {:>5} {:>8} {:>6} {:>5} {:>7} {:>6} {:>6}",
        "scenario", "mitig", "acc %", "checks", "viol", "refresh", "remap", "fall", "saf_fix",
        "ecc", "unrec"
    );
    let mut rows: Vec<NonIdealAblationRow> = Vec::new();
    for scenario in &scenarios() {
        for mitigation in ["none", "guard", "full"] {
            let row = arm(scenario, mitigation, &uniform_pulses)?;
            println!(
                "{:>9} | {:>5} | {:>6.2} | {:>8} {:>5} {:>8} {:>6} {:>5} {:>7} {:>6} {:>6}",
                row.scenario,
                row.mitigation,
                row.accuracy,
                row.checks,
                row.violations,
                row.tile_refreshes,
                row.tile_remaps,
                row.fallbacks,
                row.saf_corrections,
                row.cells_corrected,
                row.unrecoverable_cells
            );
            rows.push(row);
        }
        // bitwise determinism across worker-thread counts, per scenario
        let single = probe(scenario, 1)?;
        let multi = probe(scenario, 4)?;
        assert_eq!(
            single.as_slice(),
            multi.as_slice(),
            "scenario {}: outputs differ between 1 and 4 worker threads",
            scenario.label
        );
        println!(
            "{:>9} | bitwise identical across [1, 4] worker threads",
            scenario.label
        );
    }

    let get = |scenario: &str, mitigation: &str| -> &NonIdealAblationRow {
        rows.iter()
            .find(|r| r.scenario == scenario && r.mitigation == mitigation)
            .expect("matrix row")
    };

    // acceptance: the full stack (ECC + remap + guard) recovers ≥90% of
    // the SAF-induced accuracy gap (or lands within one image of the
    // fault-free baseline — on small subsets one flipped image dominates)
    let baseline = get("baseline", "none").accuracy;
    let saf_none = get("saf", "none").accuracy;
    let saf_full = get("saf", "full").accuracy;
    let gap = baseline - saf_none;
    let recovered = saf_full - saf_none;
    let recovery_pct = if gap > 1e-6 { 100.0 * recovered / gap } else { 100.0 };
    let one_image = 100.0 / n as f32;
    println!();
    println!(
        "SAF at {:.0}%: bare deployment loses {gap:.1} pts, full stack recovers \
         {recovered:.1} pts ({recovery_pct:.0}% of the gap)",
        SAF_RATE * 100.0
    );
    assert!(
        gap <= 1e-6 || recovery_pct >= 90.0 || baseline - saf_full <= one_image + 1e-3,
        "mitigation stack must recover ≥90% of the SAF accuracy gap \
         (or land within one image of baseline), got {recovery_pct:.1}%"
    );

    // acceptance: zero false escalations on the fault-free guarded arms —
    // the analytic tolerance absorbs IR drop (folded into the armed
    // snapshot) and temperature (resolved into the stored noise spec)
    for scenario in ["baseline", "ir_drop", "hot"] {
        let row = get(scenario, "guard");
        let escalations = row.tile_refreshes + row.tile_remaps + row.fallbacks;
        assert_eq!(
            escalations, 0,
            "fault-free scenario {scenario} must not escalate: {row:?}"
        );
    }

    // the SAF arms must actually exercise the ECC path
    let ecc_active = get("saf", "full");
    if ecc_active.cells_corrected > 0 {
        assert!(
            ecc_active.saf_corrections > 0,
            "installed ECC entries must fire during evaluation: {ecc_active:?}"
        );
    }

    // ------------------------------------------------------------------
    // Section 2: GBO robustness under IR drop and a temperature sweep
    // ------------------------------------------------------------------
    // a GBO-style heterogeneous assignment: more pulses where the
    // layer-sensitivity analysis puts them (early layers), fewer late —
    // same spirit as the paper's Table I solutions, fixed here so the
    // sweep isolates the encoding variable
    let gbo_pulses = vec![14usize, 12, 10, 8, 8, 6, 6];
    let temps: &[f32] = if smoke {
        &[T_REF, T_HOT]
    } else {
        &[T_REF, 340.0, T_HOT]
    };
    println!("\nGBO robustness (uniform 8 pulses vs heterogeneous {gbo_pulses:?})");
    println!("{:>16} | {:>9} | {:>9}", "condition", "uniform %", "gbo %");
    let mut sweep_rows: Vec<NonIdealAblationRow> = Vec::new();
    let mut sweep_json = Vec::new();
    let mut conditions: Vec<(String, NonIdealitySpec)> =
        vec![("ir_drop_sweep".into(), NonIdealitySpec::realistic())];
    for &t in temps {
        conditions.push((
            format!("temp_{t:.0}K"),
            NonIdealitySpec::ideal().at_temperature(t),
        ));
    }
    for (label, spec) in conditions {
        let scenario = Scenario::new(label.clone(), spec, false);
        let uni = arm(&scenario, "uniform", &uniform_pulses)?;
        let gbo = arm(&scenario, "gbo", &gbo_pulses)?;
        println!("{label:>16} | {:>9.2} | {:>9.2}", uni.accuracy, gbo.accuracy);
        sweep_json.push(format!(
            "{{\"condition\": \"{label}\", \"uniform_acc\": {:.2}, \"gbo_acc\": {:.2}}}",
            uni.accuracy, gbo.accuracy
        ));
        sweep_rows.push(uni);
        sweep_rows.push(gbo);
    }

    rows.extend(sweep_rows);
    let csv_path = results_dir().join("ablation_nonideal.csv");
    let records: Vec<Vec<String>> = rows.iter().map(|r| r.to_record()).collect();
    write_csv(&csv_path, &NonIdealAblationRow::CSV_HEADER, &records)?;
    println!("# wrote {}", csv_path.display());

    let json_path = results_dir().join("BENCH_nonideal.json");
    let mut f = std::fs::File::create(&json_path)?;
    writeln!(
        f,
        "{{\"bench\": \"nonideal\", \"smoke\": {smoke}, \"seed\": {}, \
         \"sigma\": {SIGMA}, \"saf_rate\": {SAF_RATE}, \"t_hot_k\": {T_HOT}, \
         \"accuracy\": {{\"baseline\": {baseline:.2}, \"saf_none\": {saf_none:.2}, \
         \"saf_full\": {saf_full:.2}, \"gap_recovery_pct\": {recovery_pct:.1}}}, \
         \"thread_counts_bitwise_identical\": [1, 4], \
         \"gbo_sweep\": [{}]}}",
        cli.seed,
        sweep_json.join(", ")
    )?;
    println!("# wrote {}", json_path.display());
    Ok(())
}
