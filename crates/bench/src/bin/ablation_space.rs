//! Ablation B: search-space granularity.
//!
//! The paper motivates PLA by arguing that ensemble-only (integer) pulse
//! scaling `{8, 16, 24, …}` is too coarse and yields sub-optimal
//! latency/accuracy trade-offs. This ablation runs GBO over the coarse
//! integer-ensemble space and over the PLA-enabled fine grid at matched
//! γ, comparing the (avg pulses, accuracy) operating points.

use std::error::Error;

use membit_bench::{gbo_epochs, results_dir, Cli};
use membit_core::{write_csv, GboConfig};

fn main() -> Result<(), Box<dyn Error>> {
    let cli = Cli::parse();
    let sigma = cli.f32_opt("--sigma").unwrap_or(15.0);
    let mut exp = membit_bench::setup_experiment(&cli)?;

    let spaces: [(&str, Vec<f32>); 2] = [
        ("ensemble (coarse)", vec![1.0, 2.0, 3.0]),
        ("PLA grid (fine)", vec![0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0]),
    ];
    println!("search-space granularity at σ = {sigma}");
    println!(
        "{:<18} {:>9} {:>10} {:<26} {:>8}",
        "space", "γ", "avg pulses", "# pulses per layer", "Acc %"
    );
    let mut rows = Vec::new();
    for (name, omega) in &spaces {
        for gamma in [2e-4f32, 1e-3, 5e-3] {
            let mut cfg = GboConfig::paper(gamma, cli.seed);
            cfg.omega = omega.clone();
            cfg.epochs = gbo_epochs(cli.scale);
            let result = exp.run_gbo(sigma, cfg)?;
            let acc = exp.eval_pla(sigma, &result.selected_pulses)?;
            println!(
                "{:<18} {:>9} {:>10.2} {:<26} {:>8.2}",
                name,
                gamma,
                result.avg_pulses(),
                format!("{:?}", result.selected_pulses),
                acc
            );
            rows.push(vec![
                name.to_string(),
                format!("{gamma}"),
                format!("{:.2}", result.avg_pulses()),
                format!("{:?}", result.selected_pulses),
                format!("{acc:.2}"),
            ]);
        }
    }
    println!();
    println!(
        "the fine grid reaches intermediate budgets (e.g. 10–14 avg pulses) the"
    );
    println!("coarse ensemble space cannot express — compare the avg-pulse columns.");

    let path = results_dir().join("ablation_space.csv");
    write_csv(
        &path,
        &["space", "gamma", "avg_pulses", "pulses", "accuracy_pct"],
        &rows,
    )?;
    println!("# wrote {}", path.display());
    Ok(())
}
