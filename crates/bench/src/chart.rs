//! Minimal ASCII charts for the figure binaries — the only "plotting"
//! available in a terminal-only environment.

/// Renders horizontal bars, one per `(label, value)`, scaled to
/// `max_width` characters. Values must be non-negative; the scale is
/// anchored at the maximum value.
pub fn bar_chart(rows: &[(String, f64)], max_width: usize) -> String {
    let max = rows.iter().map(|(_, v)| *v).fold(0.0f64, f64::max);
    let label_w = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, value) in rows {
        let filled = if max > 0.0 {
            ((value / max) * max_width as f64).round() as usize
        } else {
            0
        };
        out.push_str(&format!(
            "{label:<label_w$} | {}{} {value:.4}\n",
            "█".repeat(filled),
            " ".repeat(max_width.saturating_sub(filled)),
        ));
    }
    out
}

/// Renders two series on a shared log-y ASCII grid (used for the Fig. 1b
/// variance curves). `a` and `b` must be positive and the same length as
/// `xs`.
pub fn dual_log_chart(
    xs: &[usize],
    a: &[f64],
    a_mark: char,
    b: &[f64],
    b_mark: char,
    height: usize,
) -> String {
    assert_eq!(xs.len(), a.len());
    assert_eq!(xs.len(), b.len());
    let all: Vec<f64> = a.iter().chain(b).copied().collect();
    let lo = all.iter().copied().fold(f64::INFINITY, f64::min).ln();
    let hi = all.iter().copied().fold(f64::NEG_INFINITY, f64::max).ln();
    let span = (hi - lo).max(1e-9);
    let row_of = |v: f64| -> usize {
        let frac = (v.ln() - lo) / span;
        ((1.0 - frac) * (height - 1) as f64).round() as usize
    };
    let mut grid = vec![vec![' '; xs.len() * 4]; height];
    for (i, (&va, &vb)) in a.iter().zip(b).enumerate() {
        let col = i * 4 + 1;
        grid[row_of(va)][col] = a_mark;
        let rb = row_of(vb);
        if grid[rb][col] == a_mark && (va - vb).abs() < 1e-12 {
            grid[rb][col] = '*'; // overlap marker
        } else {
            grid[rb][col + 1] = b_mark;
        }
    }
    let mut out = String::new();
    for row in grid {
        out.push('|');
        out.extend(row);
        out.push('\n');
    }
    out.push('+');
    out.push_str(&"-".repeat(xs.len() * 4));
    out.push('\n');
    out.push(' ');
    for &x in xs {
        out.push_str(&format!("{x:<4}"));
    }
    out.push('\n');
    out
}

/// A streaming latency histogram with logarithmic buckets, sized for
/// tail-quantile estimation (p50/p95/p99) over unbounded sample streams
/// in O(1) memory.
///
/// Buckets grow geometrically (`growth` per bucket, default ~5% wide),
/// so the quantile error is bounded by the bucket width at any scale —
/// the standard HDR-histogram trade-off, without retaining samples.
#[derive(Debug, Clone)]
pub struct StreamingHistogram {
    /// Per-bucket counts keyed by bucket index (sparse).
    buckets: std::collections::BTreeMap<i32, u64>,
    /// Geometric growth factor between bucket edges (> 1).
    growth: f64,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for StreamingHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamingHistogram {
    /// A histogram with ~5%-wide geometric buckets.
    pub fn new() -> Self {
        Self::with_growth(1.05)
    }

    /// A histogram with a custom growth factor (clamped to > 1).
    pub fn with_growth(growth: f64) -> Self {
        Self {
            buckets: std::collections::BTreeMap::new(),
            growth: growth.max(1.0 + 1e-9),
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn bucket_of(&self, value: f64) -> i32 {
        if value <= 0.0 {
            return i32::MIN;
        }
        (value.ln() / self.growth.ln()).floor() as i32
    }

    /// Representative (geometric midpoint) value of a bucket.
    fn bucket_value(&self, bucket: i32) -> f64 {
        if bucket == i32::MIN {
            return 0.0;
        }
        self.growth.powf(f64::from(bucket) + 0.5)
    }

    /// Records one sample. Non-finite samples are ignored; zeros and
    /// negatives land in a dedicated underflow bucket.
    pub fn record(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        *self.buckets.entry(self.bucket_of(value)).or_insert(0) += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// The `q`-quantile (`q` in `[0, 1]`) estimated from bucket
    /// midpoints, clamped to the observed min/max. Returns 0 when
    /// empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        if q <= 0.0 {
            return self.min;
        }
        if q >= 1.0 {
            return self.max;
        }
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (&bucket, &n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return self.bucket_value(bucket).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median (p50).
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Merges another histogram into this one. The other histogram must
    /// use the same growth factor for the buckets to line up; merging
    /// mismatched growths re-records bucket midpoints (lossy but safe).
    pub fn merge(&mut self, other: &StreamingHistogram) {
        if other.count == 0 {
            return;
        }
        if (self.growth - other.growth).abs() < 1e-12 {
            for (&bucket, &n) in &other.buckets {
                *self.buckets.entry(bucket).or_insert(0) += n;
            }
            self.count += other.count;
            self.sum += other.sum;
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        } else {
            for (&bucket, &n) in &other.buckets {
                let v = other.bucket_value(bucket);
                for _ in 0..n {
                    self.record(v);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_chart_scales_to_max() {
        let rows = vec![("a".to_string(), 1.0), ("bb".to_string(), 2.0)];
        let chart = bar_chart(&rows, 10);
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[1].matches('█').count() == 10);
        assert!(lines[0].matches('█').count() == 5);
        assert!(lines[0].starts_with("a  |"));
    }

    #[test]
    fn bar_chart_handles_zero_max() {
        let rows = vec![("x".to_string(), 0.0)];
        let chart = bar_chart(&rows, 8);
        assert!(!chart.contains('█'));
    }

    #[test]
    fn dual_log_chart_places_extremes() {
        let xs = [1usize, 2, 3];
        let a = [1.0, 0.5, 0.25];
        let b = [1.0, 0.1, 0.01];
        let chart = dual_log_chart(&xs, &a, 'o', &b, 'x', 8);
        // both series start at the same top row; b ends at the bottom
        let lines: Vec<&str> = chart.lines().collect();
        assert!(lines[0].contains('*') || lines[0].contains('o'));
        assert!(lines[7].contains('x'));
        assert!(chart.ends_with("1   2   3   \n"));
    }

    #[test]
    #[should_panic]
    fn dual_log_chart_length_mismatch_panics() {
        dual_log_chart(&[1, 2], &[1.0], 'o', &[1.0, 2.0], 'x', 4);
    }

    #[test]
    fn histogram_empty_is_zeroed() {
        let h = StreamingHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.p50(), 0.0);
        assert_eq!(h.p99(), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
    }

    #[test]
    fn histogram_quantiles_bounded_by_bucket_width() {
        let mut h = StreamingHistogram::new();
        // uniform 1..=1000: p50 ≈ 500, p95 ≈ 950, p99 ≈ 990
        for i in 1..=1000 {
            h.record(f64::from(i));
        }
        assert_eq!(h.count(), 1000);
        assert!((h.mean() - 500.5).abs() < 1e-9);
        for (q, expect) in [(0.50, 500.0), (0.95, 950.0), (0.99, 990.0)] {
            let got = h.quantile(q);
            // log buckets at 5% growth → ≤ ~5% relative error
            assert!(
                (got - expect).abs() / expect < 0.06,
                "q{q}: got {got}, expected ~{expect}"
            );
        }
        assert_eq!(h.quantile(0.0), h.min());
        assert_eq!(h.quantile(1.0), h.max());
    }

    #[test]
    fn histogram_clamps_to_observed_range() {
        let mut h = StreamingHistogram::new();
        h.record(7.0);
        assert_eq!(h.p50(), 7.0);
        assert_eq!(h.p99(), 7.0);
        assert_eq!(h.min(), 7.0);
        assert_eq!(h.max(), 7.0);
    }

    #[test]
    fn histogram_handles_zero_and_rejects_non_finite() {
        let mut h = StreamingHistogram::new();
        h.record(0.0);
        h.record(-3.0);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        assert_eq!(h.count(), 2); // zero + negative recorded, non-finite dropped
        assert_eq!(h.min(), -3.0);
        // both live in the underflow bucket, whose midpoint is 0
        assert_eq!(h.p50(), 0.0);
    }

    #[test]
    fn histogram_merge_equals_single_stream() {
        let mut all = StreamingHistogram::new();
        let mut a = StreamingHistogram::new();
        let mut b = StreamingHistogram::new();
        for i in 1..=400 {
            let v = f64::from(i) * 3.7;
            all.record(v);
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
        for q in [0.5, 0.95, 0.99] {
            assert_eq!(a.quantile(q), all.quantile(q), "merge diverged at q{q}");
        }
    }

    #[test]
    fn histogram_tail_dominated_stream() {
        let mut h = StreamingHistogram::new();
        // 95 fast + 5 slow: p50 stays fast, p99 jumps to the tail
        for _ in 0..95 {
            h.record(10.0);
        }
        for _ in 0..5 {
            h.record(10_000.0);
        }
        assert!(h.p50() < 11.0);
        assert!(h.p99() > 9_000.0);
    }
}
