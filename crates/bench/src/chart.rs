//! Minimal ASCII charts for the figure binaries — the only "plotting"
//! available in a terminal-only environment.

/// Renders horizontal bars, one per `(label, value)`, scaled to
/// `max_width` characters. Values must be non-negative; the scale is
/// anchored at the maximum value.
pub fn bar_chart(rows: &[(String, f64)], max_width: usize) -> String {
    let max = rows.iter().map(|(_, v)| *v).fold(0.0f64, f64::max);
    let label_w = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, value) in rows {
        let filled = if max > 0.0 {
            ((value / max) * max_width as f64).round() as usize
        } else {
            0
        };
        out.push_str(&format!(
            "{label:<label_w$} | {}{} {value:.4}\n",
            "█".repeat(filled),
            " ".repeat(max_width.saturating_sub(filled)),
        ));
    }
    out
}

/// Renders two series on a shared log-y ASCII grid (used for the Fig. 1b
/// variance curves). `a` and `b` must be positive and the same length as
/// `xs`.
pub fn dual_log_chart(
    xs: &[usize],
    a: &[f64],
    a_mark: char,
    b: &[f64],
    b_mark: char,
    height: usize,
) -> String {
    assert_eq!(xs.len(), a.len());
    assert_eq!(xs.len(), b.len());
    let all: Vec<f64> = a.iter().chain(b).copied().collect();
    let lo = all.iter().copied().fold(f64::INFINITY, f64::min).ln();
    let hi = all.iter().copied().fold(f64::NEG_INFINITY, f64::max).ln();
    let span = (hi - lo).max(1e-9);
    let row_of = |v: f64| -> usize {
        let frac = (v.ln() - lo) / span;
        ((1.0 - frac) * (height - 1) as f64).round() as usize
    };
    let mut grid = vec![vec![' '; xs.len() * 4]; height];
    for (i, (&va, &vb)) in a.iter().zip(b).enumerate() {
        let col = i * 4 + 1;
        grid[row_of(va)][col] = a_mark;
        let rb = row_of(vb);
        if grid[rb][col] == a_mark && (va - vb).abs() < 1e-12 {
            grid[rb][col] = '*'; // overlap marker
        } else {
            grid[rb][col + 1] = b_mark;
        }
    }
    let mut out = String::new();
    for row in grid {
        out.push('|');
        out.extend(row);
        out.push('\n');
    }
    out.push('+');
    out.push_str(&"-".repeat(xs.len() * 4));
    out.push('\n');
    out.push(' ');
    for &x in xs {
        out.push_str(&format!("{x:<4}"));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_chart_scales_to_max() {
        let rows = vec![("a".to_string(), 1.0), ("bb".to_string(), 2.0)];
        let chart = bar_chart(&rows, 10);
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[1].matches('█').count() == 10);
        assert!(lines[0].matches('█').count() == 5);
        assert!(lines[0].starts_with("a  |"));
    }

    #[test]
    fn bar_chart_handles_zero_max() {
        let rows = vec![("x".to_string(), 0.0)];
        let chart = bar_chart(&rows, 8);
        assert!(!chart.contains('█'));
    }

    #[test]
    fn dual_log_chart_places_extremes() {
        let xs = [1usize, 2, 3];
        let a = [1.0, 0.5, 0.25];
        let b = [1.0, 0.1, 0.01];
        let chart = dual_log_chart(&xs, &a, 'o', &b, 'x', 8);
        // both series start at the same top row; b ends at the bottom
        let lines: Vec<&str> = chart.lines().collect();
        assert!(lines[0].contains('*') || lines[0].contains('o'));
        assert!(lines[7].contains('x'));
        assert!(chart.ends_with("1   2   3   \n"));
    }

    #[test]
    #[should_panic]
    fn dual_log_chart_length_mismatch_panics() {
        dual_log_chart(&[1, 2], &[1.0], 'o', &[1.0, 2.0], 'x', 4);
    }
}
