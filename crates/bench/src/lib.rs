//! # membit-bench
//!
//! Shared plumbing for the benchmark binaries that regenerate every table
//! and figure of the GBO paper (see `DESIGN.md` §4 for the experiment
//! index). Each binary accepts:
//!
//! * `--scale quick|full` — `quick` (default) finishes within minutes
//!   per binary on a single core and is the configuration of record in
//!   `EXPERIMENTS.md`; `full` trains longer on more data for tighter
//!   numbers when compute allows.
//! * `--seed <u64>` — root seed (default 2022, the paper's year).
//! * `--resume` — continue interrupted training stages from their
//!   auto-checkpoints under `results/work_<scale>_seed<seed>/` instead of
//!   restarting them from scratch.
//!
//! Pre-trained weights are cached under `results/` so the expensive
//! pre-training stage runs once per scale and is shared by all binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chart;

use std::path::PathBuf;

use membit_core::{Experiment, ExperimentConfig};

/// Experiment scale selected on the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced epochs/repeats: minutes per binary (the EXPERIMENTS.md
    /// configuration of record).
    Quick,
    /// More epochs/data/repeats for machines with compute headroom.
    Full,
}

impl Scale {
    /// Short name used in file paths.
    pub fn tag(self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::Full => "full",
        }
    }
}

/// Command-line options shared by all bench binaries.
#[derive(Debug, Clone)]
pub struct Cli {
    /// Selected scale.
    pub scale: Scale,
    /// Root seed.
    pub seed: u64,
    /// Resume interrupted training stages from their auto-checkpoints.
    pub resume: bool,
    /// Worker-thread cap for crossbar execution (`None` = library
    /// default, i.e. available parallelism). Results are bitwise
    /// identical for every setting — this only trades wall clock.
    pub threads: Option<usize>,
    /// Remaining (binary-specific) arguments.
    pub rest: Vec<String>,
}

impl Cli {
    /// Parses `std::env::args()`, exiting with a usage message (status 2)
    /// on malformed arguments.
    pub fn parse() -> Self {
        let usage = |msg: &str| -> ! {
            eprintln!("error: {msg}");
            eprintln!(
                "usage: <bin> [--scale quick|full] [--seed <u64>] [--resume] \
                 [--threads <n>] [binary-specific options]"
            );
            std::process::exit(2);
        };
        let mut scale = Scale::Quick;
        let mut seed = 2022u64;
        let mut resume = false;
        let mut threads = None;
        let mut rest = Vec::new();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--resume" => resume = true,
                "--scale" => {
                    let v = args
                        .next()
                        .unwrap_or_else(|| usage("--scale needs quick|full"));
                    scale = match v.as_str() {
                        "quick" => Scale::Quick,
                        "full" => Scale::Full,
                        other => usage(&format!("unknown scale {other:?}; use quick|full")),
                    };
                }
                "--seed" => {
                    seed = args
                        .next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage("--seed needs an integer"));
                }
                "--threads" => {
                    threads = Some(
                        args.next()
                            .and_then(|s| s.parse().ok())
                            .filter(|&t: &usize| t >= 1)
                            .unwrap_or_else(|| usage("--threads needs an integer ≥ 1")),
                    );
                }
                other => rest.push(other.to_string()),
            }
        }
        Self {
            scale,
            seed,
            resume,
            threads,
            rest,
        }
    }

    /// Crossbar [`ExecOptions`](membit_xbar::ExecOptions) honoring
    /// `--threads` (library default when the flag is absent).
    pub fn exec_options(&self) -> membit_xbar::ExecOptions {
        match self.threads {
            Some(t) => membit_xbar::ExecOptions::with_threads(t),
            None => membit_xbar::ExecOptions::default(),
        }
    }

    /// Value of a `--name <f32>` option in the leftover args.
    pub fn f32_opt(&self, name: &str) -> Option<f32> {
        self.rest
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.rest.get(i + 1))
            .and_then(|v| v.parse().ok())
    }
}

/// Directory results/CSVs are written into.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("MEMBIT_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"));
    std::fs::create_dir_all(&dir).ok();
    dir
}

/// The experiment configuration for a scale (with checkpoint caching
/// under [`results_dir`]).
pub fn experiment_config(scale: Scale, seed: u64) -> ExperimentConfig {
    let mut cfg = match scale {
        Scale::Quick => {
            let mut c = ExperimentConfig::quick(12, seed);
            c.data.train_per_class = 200;
            c.data.test_per_class = 50;
            c.eval_repeats = 2;
            c
        }
        Scale::Full => {
            let mut c = ExperimentConfig::quick(25, seed);
            c.data.train_per_class = 300;
            c.data.test_per_class = 100;
            c.eval_repeats = 3;
            c
        }
    };
    cfg.checkpoint = Some(results_dir().join(format!(
        "pretrained_{}_seed{}.ckpt",
        scale.tag(),
        seed
    )));
    cfg.work_dir = Some(results_dir().join(format!("work_{}_seed{}", scale.tag(), seed)));
    cfg
}

/// Sets up (or loads) the shared pre-trained experiment, reporting timing.
///
/// # Errors
///
/// Propagates training/IO errors (e.g. an unwritable results
/// directory) so binaries report `Error: ...` and exit 1 instead of
/// panicking.
pub fn setup_experiment(cli: &Cli) -> membit_core::Result<Experiment> {
    let mut cfg = experiment_config(cli.scale, cli.seed);
    cfg.resume = cli.resume;
    let cached = cfg
        .checkpoint
        .as_ref()
        .map(|p| p.exists())
        .unwrap_or(false);
    if cached {
        println!("# loading cached pre-trained model");
    } else {
        println!(
            "# pre-training VGG9-BWNN ({} epochs, {} train images) — cached for later runs",
            cfg.train.epochs,
            cfg.data.train_per_class * cfg.data.num_classes
        );
    }
    let t = std::time::Instant::now();
    let exp = Experiment::setup(cfg)?;
    println!("# setup took {:.1}s", t.elapsed().as_secs_f32());
    Ok(exp)
}

/// The GBO search epochs appropriate for a scale.
pub fn gbo_epochs(scale: Scale) -> usize {
    match scale {
        Scale::Quick => 3,
        Scale::Full => 6,
    }
}

/// The NIA fine-tuning epochs appropriate for a scale.
pub fn nia_epochs(scale: Scale) -> usize {
    match scale {
        Scale::Quick => 3,
        Scale::Full => 6,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_tags() {
        assert_eq!(Scale::Quick.tag(), "quick");
        assert_eq!(Scale::Full.tag(), "full");
    }

    #[test]
    fn config_scales_differ() {
        let q = experiment_config(Scale::Quick, 1);
        let f = experiment_config(Scale::Full, 1);
        assert!(f.train.epochs > q.train.epochs);
        assert!(f.data.train_per_class > q.data.train_per_class);
        assert_ne!(q.checkpoint, f.checkpoint);
    }
}
