//! Criterion micro-benchmarks for the performance-critical kernels:
//! matmul, im2col/conv lowering, VGG forward, bit encoding, and the
//! device-level crossbar MVM.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use membit_autograd::Tape;
use membit_encoding::{BitEncoder, BitSlicing, Thermometer};
use membit_nn::{NoNoise, Params, Phase, Vgg, VggConfig};
use membit_tensor::{im2col, Conv2dGeometry, MatmulOptions, Rng, Tensor};
use membit_xbar::{CrossbarLinear, DeviceModel, NoiseSpec, Tile, XbarConfig};

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for &n in &[32usize, 64, 128] {
        let a = Tensor::from_fn(&[n, n], |i| (i % 17) as f32 - 8.0);
        let b = Tensor::from_fn(&[n, n], |i| (i % 13) as f32 - 6.0);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| a.matmul_with(&b, MatmulOptions::serial()).unwrap())
        });
    }
    group.finish();
}

fn bench_im2col(c: &mut Criterion) {
    let x = Tensor::from_fn(&[8, 32, 16, 16], |i| (i % 9) as f32 / 4.0 - 1.0);
    let geom = Conv2dGeometry::new(32, 16, 16, 3, 3, 1, 1).unwrap();
    c.bench_function("im2col 8x32x16x16 k3", |b| {
        b.iter(|| im2col(&x, &geom).unwrap())
    });
}

fn bench_vgg_forward(c: &mut Criterion) {
    let mut rng = Rng::from_seed(0);
    let mut params = Params::new();
    let mut vgg = Vgg::new(&VggConfig::small(), &mut params, &mut rng).unwrap();
    let images = Tensor::from_fn(&[8, 3, 16, 16], |i| (i % 9) as f32 / 4.0 - 1.0);
    c.bench_function("vgg9-small forward batch8", |b| {
        b.iter(|| {
            let mut tape = Tape::new();
            let mut binding = params.frozen_binding();
            let x = tape.constant(images.clone());
            vgg.forward(&mut tape, &params, &mut binding, x, Phase::Eval, &mut NoNoise)
                .unwrap()
        })
    });
}

fn bench_encoding(c: &mut Criterion) {
    let x = Tensor::from_fn(&[64, 144], |i| ((i % 9) as f32 / 4.0 - 1.0).clamp(-1.0, 1.0));
    let thermo = Thermometer::new(8).unwrap();
    let slicing = BitSlicing::new(3).unwrap();
    c.bench_function("thermometer encode 64x144 p8", |b| {
        b.iter(|| thermo.encode_tensor(&x).unwrap())
    });
    c.bench_function("bit-slicing encode 64x144 b3", |b| {
        b.iter(|| slicing.encode_tensor(&x).unwrap())
    });
}

fn bench_xbar(c: &mut Criterion) {
    let mut rng = Rng::from_seed(1);
    let w = Tensor::from_fn(&[64, 128], |i| if i % 3 == 0 { 1.0 } else { -1.0 });
    let tile = Tile::program(&w.transpose().unwrap(), &DeviceModel::ideal(), &mut rng).unwrap();
    let x: Vec<f32> = (0..128).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
    let mut out = vec![0.0f32; 64];
    c.bench_function("tile mvm 128x64", |b| {
        b.iter(|| {
            tile.mvm(&x, &NoiseSpec::none(), &mut rng, &mut out).unwrap();
            out[0]
        })
    });

    let engine = CrossbarLinear::program(&w, &XbarConfig::functional(2.0), &mut rng).unwrap();
    let input = Tensor::from_fn(&[4, 128], |i| ((i % 9) as f32 / 4.0 - 1.0).clamp(-1.0, 1.0));
    let train = Thermometer::new(8).unwrap().encode_tensor(&input).unwrap();
    c.bench_function("crossbar execute 4x128->64 p8", |b| {
        b.iter(|| engine.execute(&train, &mut rng).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_matmul, bench_im2col, bench_vgg_forward, bench_encoding, bench_xbar
}
criterion_main!(benches);
