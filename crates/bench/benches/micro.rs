//! Micro-benchmarks for the performance-critical kernels: matmul,
//! im2col/conv lowering, VGG forward, bit encoding, and the device-level
//! crossbar MVM.
//!
//! Uses a small self-contained timing harness (`harness = false`) instead
//! of criterion so the workspace builds offline with zero external
//! dependencies. Run with `cargo bench -p membit-bench`.

use std::hint::black_box;
use std::time::Instant;

use membit_autograd::Tape;
use membit_encoding::{BitEncoder, BitSlicing, Thermometer};
use membit_nn::{NoNoise, Params, Phase, Vgg, VggConfig};
use membit_tensor::{im2col, Conv2dGeometry, MatmulOptions, Rng, Tensor};
use membit_xbar::{CrossbarLinear, DeviceModel, NoiseSpec, Tile, XbarConfig};

/// Times `f` with a warmup pass and enough iterations to fill ~0.2 s,
/// reporting the per-iteration mean.
fn bench<T>(name: &str, mut f: impl FnMut() -> T) {
    black_box(f());
    let probe = Instant::now();
    black_box(f());
    let once = probe.elapsed().as_secs_f64().max(1e-9);
    let iters = ((0.2 / once) as u64).clamp(3, 10_000);
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    let per_iter = start.elapsed().as_secs_f64() / iters as f64;
    let (value, unit) = if per_iter >= 1e-3 {
        (per_iter * 1e3, "ms")
    } else {
        (per_iter * 1e6, "µs")
    };
    println!("{name:<40} {value:>10.3} {unit}/iter  ({iters} iters)");
}

fn bench_matmul() {
    for &n in &[32usize, 64, 128] {
        let a = Tensor::from_fn(&[n, n], |i| (i % 17) as f32 - 8.0);
        let b = Tensor::from_fn(&[n, n], |i| (i % 13) as f32 - 6.0);
        bench(&format!("matmul {n}x{n} serial"), || {
            a.matmul_with(&b, MatmulOptions::serial()).unwrap()
        });
    }
}

fn bench_im2col() {
    let x = Tensor::from_fn(&[8, 32, 16, 16], |i| (i % 9) as f32 / 4.0 - 1.0);
    let geom = Conv2dGeometry::new(32, 16, 16, 3, 3, 1, 1).unwrap();
    bench("im2col 8x32x16x16 k3", || im2col(&x, &geom).unwrap());
}

fn bench_vgg_forward() {
    let mut rng = Rng::from_seed(0);
    let mut params = Params::new();
    let mut vgg = Vgg::new(&VggConfig::small(), &mut params, &mut rng).unwrap();
    let images = Tensor::from_fn(&[8, 3, 16, 16], |i| (i % 9) as f32 / 4.0 - 1.0);
    bench("vgg9-small forward batch8", || {
        let mut tape = Tape::new();
        let mut binding = params.frozen_binding();
        let x = tape.constant(images.clone());
        vgg.forward(&mut tape, &params, &mut binding, x, Phase::Eval, &mut NoNoise)
            .unwrap()
    });
}

fn bench_encoding() {
    let x = Tensor::from_fn(&[64, 144], |i| ((i % 9) as f32 / 4.0 - 1.0).clamp(-1.0, 1.0));
    let thermo = Thermometer::new(8).unwrap();
    let slicing = BitSlicing::new(3).unwrap();
    bench("thermometer encode 64x144 p8", || {
        thermo.encode_tensor(&x).unwrap()
    });
    bench("bit-slicing encode 64x144 b3", || {
        slicing.encode_tensor(&x).unwrap()
    });
}

fn bench_xbar() {
    let mut rng = Rng::from_seed(1);
    let w = Tensor::from_fn(&[64, 128], |i| if i % 3 == 0 { 1.0 } else { -1.0 });
    let tile = Tile::program(&w.transpose().unwrap(), &DeviceModel::ideal(), &mut rng).unwrap();
    let x: Vec<f32> = (0..128).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
    let mut out = vec![0.0f32; 64];
    bench("tile mvm 128x64", || {
        tile.mvm(&x, &NoiseSpec::none(), &mut rng, &mut out).unwrap();
        out[0]
    });

    let engine = CrossbarLinear::program(&w, &XbarConfig::functional(2.0), &mut rng).unwrap();
    let input = Tensor::from_fn(&[4, 128], |i| ((i % 9) as f32 / 4.0 - 1.0).clamp(-1.0, 1.0));
    let train = Thermometer::new(8).unwrap().encode_tensor(&input).unwrap();
    bench("crossbar execute 4x128->64 p8", || {
        engine.execute(&train, &mut rng).unwrap()
    });
}

fn main() {
    // `cargo test` builds and runs bench targets with `--test`; there is
    // nothing to test here, so bail out quickly in that mode.
    if std::env::args().any(|a| a == "--test") {
        return;
    }
    bench_matmul();
    bench_im2col();
    bench_vgg_forward();
    bench_encoding();
    bench_xbar();
}
