//! Fault-injection suite for the `MBCKPT2` checkpoint format.
//!
//! Property-based proof that every way a checkpoint file can be damaged —
//! a flipped bit, a truncated tail, an I/O error mid-write, a crash
//! before the atomic rename — is *detected* and surfaced as a typed
//! error, never silently absorbed into model state.

use std::io;
use std::path::PathBuf;

use membit_nn::checkpoint::{faulty, Checkpoint, CheckpointError};
use membit_nn::{Adam, Optimizer};
use membit_tensor::{Rng, Tensor};
use proptest::prelude::*;

fn tmp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("membit-fi-{tag}-{}", std::process::id()))
}

/// A deterministic checkpoint whose content varies with `salt`, shaped
/// like a real training snapshot: parameters, optimizer slots, RNG
/// stream, counters.
fn training_like_checkpoint(salt: u64) -> Checkpoint {
    let mut ckpt = Checkpoint::new();
    let base = salt as f32;
    ckpt.put_tensor(
        "param.w0",
        Tensor::from_fn(&[4, 3], |i| base + i as f32 * 0.25),
    );
    ckpt.put_tensor("param.b0", Tensor::from_fn(&[3], |i| -(i as f32) - base));
    ckpt.put_tensor("opt.v0", Tensor::from_fn(&[4, 3], |i| i as f32 * 0.01));
    ckpt.put_bytes("rng.shuffle", Rng::from_seed(salt).state_bytes());
    ckpt.put_u64("meta.epoch", salt.wrapping_mul(3));
    ckpt.put_f64("meta.lr_scale", 0.5 + salt as f64 * 0.125);
    ckpt
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn roundtrip_preserves_everything(
        tensors in prop::collection::vec(prop::collection::vec(-1.0e6f32..1.0e6, 1..40), 0..6),
        blob in prop::collection::vec(0u8..=255u8, 0..64),
        counter in 0u64..=u64::MAX,
        scalar in -1.0e12f64..1.0e12,
    ) {
        let mut ckpt = Checkpoint::new();
        for (i, data) in tensors.iter().enumerate() {
            let t = Tensor::from_vec(data.clone(), &[data.len()]).unwrap();
            ckpt.put_tensor(format!("param.t{i}"), t);
        }
        ckpt.put_bytes("rng.stream", blob.clone());
        ckpt.put_u64("meta.counter", counter);
        ckpt.put_f64("meta.scalar", scalar);
        let bytes = faulty::to_bytes(&ckpt).unwrap();
        let loaded = faulty::from_bytes(&bytes).unwrap();
        prop_assert_eq!(&loaded, &ckpt);
    }

    #[test]
    fn any_single_bit_flip_is_detected(
        salt in 0u64..500,
        pos_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let ckpt = training_like_checkpoint(salt);
        let mut bytes = faulty::to_bytes(&ckpt).unwrap();
        let offset = ((pos_frac * bytes.len() as f64) as usize).min(bytes.len() - 1);
        bytes[offset] ^= 1 << bit;
        prop_assert!(
            faulty::from_bytes(&bytes).is_err(),
            "flip at byte {} bit {} went undetected", offset, bit
        );
    }

    #[test]
    fn any_truncation_is_detected(
        salt in 0u64..500,
        keep_frac in 0.0f64..1.0,
    ) {
        let ckpt = training_like_checkpoint(salt);
        let bytes = faulty::to_bytes(&ckpt).unwrap();
        let keep = ((keep_frac * bytes.len() as f64) as usize).min(bytes.len() - 1);
        prop_assert!(
            faulty::from_bytes(&bytes[..keep]).is_err(),
            "truncation to {} of {} bytes went undetected", keep, bytes.len()
        );
    }

    #[test]
    fn io_faults_never_corrupt_an_existing_checkpoint(
        ok_bytes in 0usize..64,
        kind in prop::sample::select(vec![
            io::ErrorKind::WriteZero,
            io::ErrorKind::TimedOut,
            io::ErrorKind::PermissionDenied,
        ]),
    ) {
        let path = tmp("iofault");
        let good = training_like_checkpoint(1);
        good.save(&path).unwrap();
        // the replacement checkpoint serializes to far more than 64 bytes,
        // so the injected fault always fires
        let err = faulty::save_with_io_fault(&training_like_checkpoint(2), &path, ok_bytes, kind)
            .unwrap_err();
        prop_assert!(
            matches!(err, CheckpointError::Io(k, _) if k == kind),
            "unexpected error {err:?}"
        );
        let survivor = Checkpoint::load(&path).unwrap();
        prop_assert_eq!(&survivor, &good);
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn crash_before_rename_then_retry_recovers() {
    let path = tmp("crash-retry");
    let old = training_like_checkpoint(10);
    old.save(&path).unwrap();
    // power loss mid-save: temp litter appears, target untouched
    let replacement = training_like_checkpoint(11);
    let litter = faulty::save_crashing_before_rename(&replacement, &path).unwrap();
    assert!(litter.exists());
    assert_eq!(Checkpoint::load(&path).unwrap(), old);
    // the retried save goes through the same temp path and wins
    replacement.save(&path).unwrap();
    assert_eq!(Checkpoint::load(&path).unwrap(), replacement);
    std::fs::remove_file(&litter).ok();
    std::fs::remove_file(&path).ok();
}

#[test]
fn optimizer_and_rng_state_survive_a_file_roundtrip() {
    // an Adam mid-run (step counter + both moment slots) and an advanced
    // RNG, persisted and reloaded, must continue identically
    let mid_run = vec![
        ("t".to_string(), Tensor::from_vec(vec![3.0], &[1]).unwrap()),
        ("m0".to_string(), Tensor::from_fn(&[5], |i| i as f32 * 0.1)),
        ("v0".to_string(), Tensor::from_fn(&[5], |i| i as f32 * 0.01)),
    ];
    let mut opt = Adam::new(0.05);
    opt.restore_state_tensors(&mid_run);
    let mut rng = Rng::from_seed(77);
    let _ = rng.normal(0.0, 1.0);

    let mut ckpt = Checkpoint::new();
    for (name, tensor) in opt.state_tensors() {
        ckpt.put_tensor(format!("opt.{name}"), tensor);
    }
    ckpt.put_bytes("rng.noise", rng.state_bytes());
    let path = tmp("optrng");
    ckpt.save(&path).unwrap();

    let loaded = Checkpoint::load(&path).unwrap();
    let opt_state: Vec<(String, Tensor)> = loaded
        .tensors_with_prefix("opt.")
        .map(|(n, t)| (n.to_string(), t.clone()))
        .collect();
    let mut opt2 = Adam::new(0.05);
    opt2.restore_state_tensors(&opt_state);
    let mut rng2 = Rng::from_state_bytes(loaded.bytes("rng.noise").unwrap()).unwrap();
    assert_eq!(rng2.normal(0.0, 1.0), rng.normal(0.0, 1.0));
    assert_eq!(opt2.state_tensors(), opt.state_tensors());
    std::fs::remove_file(&path).ok();
}
