//! Property-based tests for the NN stack: layer shape contracts,
//! optimizer descent on random quadratics, schedule monotonicity, and
//! checkpoint round-trips of random parameter sets.

use membit_autograd::Tape;
use membit_nn::{
    accuracy, load_params, save_params, Adam, BatchNorm, Linear, Optimizer, Params, Phase, Sgd,
    StepLr,
};
use membit_tensor::{Rng, Tensor};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn linear_output_shape_contract(
        batch in 1usize..6, inp in 1usize..10, out in 1usize..10, seed in 0u64..100
    ) {
        let mut rng = Rng::from_seed(seed);
        let mut params = Params::new();
        let lin = Linear::new("l", inp, out, true, false, &mut params, &mut rng);
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::zeros(&[batch, inp]));
        let mut binding = params.binding();
        let y = lin.forward(&mut tape, &params, &mut binding, x).unwrap();
        prop_assert_eq!(tape.value(y).shape(), &[batch, out]);
    }

    #[test]
    fn binary_linear_deployed_weights_are_pm1(
        inp in 1usize..12, out in 1usize..12, seed in 0u64..100
    ) {
        let mut rng = Rng::from_seed(seed);
        let mut params = Params::new();
        let lin = Linear::new("l", inp, out, false, true, &mut params, &mut rng);
        let dep = lin.deployed_weight(&params);
        prop_assert!(dep.as_slice().iter().all(|&v| v == 1.0 || v == -1.0));
    }

    #[test]
    fn batchnorm_train_output_is_normalized(seed in 0u64..200, c in 1usize..5) {
        let mut rng = Rng::from_seed(seed);
        let mut params = Params::new();
        let mut bn = BatchNorm::new("bn", c, &mut params);
        let x = rng.uniform_tensor(&[8, c, 3], -10.0, 10.0);
        let mut tape = Tape::new();
        let xv = tape.constant(x);
        let mut binding = params.binding();
        let y = bn.forward(&mut tape, &params, &mut binding, xv, Phase::Train).unwrap();
        let out = tape.value(y);
        let means = out.mean_channels().unwrap();
        let vars = out.var_channels().unwrap();
        for ci in 0..c {
            prop_assert!(means.at(ci).abs() < 1e-2, "mean {}", means.at(ci));
            prop_assert!((vars.at(ci) - 1.0).abs() < 0.05, "var {}", vars.at(ci));
        }
    }

    #[test]
    fn sgd_descends_on_random_quadratic(seed in 0u64..500, lr in 0.01f32..0.2) {
        let mut rng = Rng::from_seed(seed);
        let target = rng.uniform_tensor(&[4], -3.0, 3.0);
        let start = rng.uniform_tensor(&[4], -3.0, 3.0);
        let mut params = Params::new();
        let id = params.register("theta", start.clone());
        let mut opt = Sgd::new(lr, 0.0, 0.0);
        let loss_at = |p: &Tensor| p.sub(&target).unwrap().square().sum();
        let before = loss_at(&start);
        for _ in 0..5 {
            let mut tape = Tape::new();
            let mut binding = params.binding();
            let theta = params.bind(&mut tape, &mut binding, id);
            let t = tape.constant(target.clone());
            let d = tape.sub(theta, t).unwrap();
            let sq = tape.mul(d, d).unwrap();
            let loss = tape.sum_all(sq);
            tape.backward(loss).unwrap();
            opt.step(&mut params, &tape, &binding).unwrap();
        }
        let after = loss_at(params.get(id));
        prop_assert!(after <= before + 1e-5, "loss {before} → {after}");
    }

    #[test]
    fn adam_descends_on_random_quadratic(seed in 0u64..500) {
        let mut rng = Rng::from_seed(seed);
        let target = rng.uniform_tensor(&[3], -2.0, 2.0);
        let start = rng.uniform_tensor(&[3], -2.0, 2.0);
        let mut params = Params::new();
        let id = params.register("theta", start.clone());
        let mut opt = Adam::new(0.1);
        let loss_at = |p: &Tensor| p.sub(&target).unwrap().square().sum();
        let before = loss_at(&start);
        for _ in 0..30 {
            let mut tape = Tape::new();
            let mut binding = params.binding();
            let theta = params.bind(&mut tape, &mut binding, id);
            let t = tape.constant(target.clone());
            let d = tape.sub(theta, t).unwrap();
            let sq = tape.mul(d, d).unwrap();
            let loss = tape.sum_all(sq);
            tape.backward(loss).unwrap();
            opt.step(&mut params, &tape, &binding).unwrap();
        }
        let after = loss_at(params.get(id));
        prop_assert!(after < before || before < 1e-6, "loss {before} → {after}");
    }

    #[test]
    fn step_lr_is_monotone_nonincreasing(
        base in 1e-4f32..1.0,
        factor in 0.05f32..0.9,
        m1 in 1usize..20,
        gap in 1usize..20,
    ) {
        let s = StepLr::new(base, factor, vec![m1, m1 + gap]);
        let mut prev = f32::INFINITY;
        for epoch in 0..(m1 + 2 * gap + 2) {
            let lr = s.lr_at(epoch);
            prop_assert!(lr <= prev + 1e-9);
            prop_assert!(lr > 0.0);
            prev = lr;
        }
    }

    #[test]
    fn accuracy_bounded_and_exact_on_onehot(n in 1usize..20, k in 2usize..6, seed in 0u64..100) {
        let mut rng = Rng::from_seed(seed);
        let labels: Vec<usize> = (0..n).map(|_| rng.below(k)).collect();
        // logits = perfect one-hot of the labels
        let mut logits = Tensor::zeros(&[n, k]);
        for (i, &y) in labels.iter().enumerate() {
            logits.set(&[i, y], 10.0);
        }
        prop_assert_eq!(accuracy(&logits, &labels).unwrap(), 1.0);
        // shifting all logits equally changes nothing
        let shifted = logits.add_scalar(3.0);
        prop_assert_eq!(accuracy(&shifted, &labels).unwrap(), 1.0);
    }

    #[test]
    fn checkpoint_roundtrip_random_params(seed in 0u64..500, count in 1usize..5) {
        let mut rng = Rng::from_seed(seed);
        let mut params = Params::new();
        for i in 0..count {
            let rank = 1 + rng.below(3);
            let shape: Vec<usize> = (0..rank).map(|_| 1 + rng.below(4)).collect();
            params.register(format!("p{i}"), rng.uniform_tensor(&shape, -5.0, 5.0));
        }
        let path = std::env::temp_dir().join(format!(
            "membit-proptest-{}-{seed}-{count}.ckpt",
            std::process::id()
        ));
        save_params(&path, &params, &[]).unwrap();
        let loaded = load_params(&path).unwrap();
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(loaded.len(), count);
        for (name, tensor) in loaded {
            let id = params.find(&name).unwrap();
            prop_assert_eq!(params.get(id), &tensor);
        }
    }
}
