//! A small multilayer perceptron with the same crossbar-hook contract as
//! [`Vgg`](crate::Vgg) — used for fast tests and microbenchmarks.

use membit_autograd::{Tape, VarId};
use membit_tensor::Rng;

use crate::batchnorm::BatchNorm;
use crate::hooks::MvmNoiseHook;
use crate::linear::Linear;
use crate::params::{Binding, Params};
use crate::{Phase, Result};

/// Architecture of an [`Mlp`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MlpConfig {
    /// Input feature count.
    pub in_dim: usize,
    /// Hidden layer widths.
    pub hidden: Vec<usize>,
    /// Number of classes.
    pub num_classes: usize,
    /// Activation quantization levels.
    pub act_levels: usize,
    /// Whether hidden weights are binarized.
    pub binary_weights: bool,
}

impl MlpConfig {
    /// A BWNN-style MLP: binary hidden weights, 9-level activations.
    pub fn new(in_dim: usize, hidden: &[usize], num_classes: usize) -> Self {
        Self {
            in_dim,
            hidden: hidden.to_vec(),
            num_classes,
            act_levels: 9,
            binary_weights: true,
        }
    }

    /// Number of crossbar (hooked) layers — every hidden layer.
    pub fn crossbar_layers(&self) -> usize {
        self.hidden.len()
    }
}

/// `linear → BN → tanh → quantize` blocks followed by a digital
/// classifier. Every hidden MVM output passes through the
/// [`MvmNoiseHook`], so the GBO machinery can be tested end-to-end in
/// milliseconds.
#[derive(Debug, Clone)]
pub struct Mlp {
    config: MlpConfig,
    hidden: Vec<Linear>,
    bns: Vec<BatchNorm>,
    classifier: Linear,
}

impl Mlp {
    /// Builds the model, registering parameters into `params`.
    ///
    /// # Errors
    ///
    /// Propagates parameter registration errors (none today; reserved).
    pub fn new(config: &MlpConfig, params: &mut Params, rng: &mut Rng) -> Result<Self> {
        let mut hidden = Vec::with_capacity(config.hidden.len());
        let mut bns = Vec::with_capacity(config.hidden.len());
        let mut in_dim = config.in_dim;
        for (i, &width) in config.hidden.iter().enumerate() {
            hidden.push(Linear::new(
                &format!("mlp{i}"),
                in_dim,
                width,
                false,
                config.binary_weights,
                params,
                rng,
            ));
            bns.push(BatchNorm::new(&format!("mlp_bn{i}"), width, params));
            in_dim = width;
        }
        let classifier = Linear::new(
            "mlp_classifier",
            in_dim,
            config.num_classes,
            true,
            false,
            params,
            rng,
        );
        Ok(Self {
            config: config.clone(),
            hidden,
            bns,
            classifier,
        })
    }

    /// The architecture description.
    pub fn config(&self) -> &MlpConfig {
        &self.config
    }

    /// Number of crossbar (hooked) layers.
    pub fn crossbar_layers(&self) -> usize {
        self.config.crossbar_layers()
    }

    /// Borrow the hidden layers (for crossbar deployment).
    pub fn hidden_layers(&self) -> &[Linear] {
        &self.hidden
    }

    /// Effective fan-in of each crossbar layer's MVM (see
    /// [`Vgg::crossbar_fan_ins`](crate::Vgg::crossbar_fan_ins)).
    pub fn crossbar_fan_ins(&self) -> Vec<f32> {
        self.hidden.iter().map(|l| l.in_features() as f32).collect()
    }

    /// Running statistics of every batch-norm layer, keyed by layer name —
    /// part of the checkpoint alongside [`Params`] (mirrors
    /// [`Vgg::running_stats`](crate::Vgg::running_stats)).
    pub fn running_stats(
        &self,
    ) -> Vec<(String, membit_tensor::Tensor, membit_tensor::Tensor)> {
        self.bns
            .iter()
            .enumerate()
            .map(|(i, bn)| {
                (
                    format!("mlp_bn{i}"),
                    bn.running_mean().clone(),
                    bn.running_var().clone(),
                )
            })
            .collect()
    }

    /// Restores running statistics saved by
    /// [`running_stats`](Self::running_stats). Unknown names are ignored.
    pub fn set_running_stats(
        &mut self,
        stats: &[(String, membit_tensor::Tensor, membit_tensor::Tensor)],
    ) {
        for (name, mean, var) in stats {
            if let Some(idx) = name
                .strip_prefix("mlp_bn")
                .and_then(|s| s.parse::<usize>().ok())
            {
                if idx < self.bns.len() {
                    self.bns[idx].set_running_stats(mean.clone(), var.clone());
                }
            }
        }
    }

    /// Runs the network on `x` (`[N, in_dim]`), returning logits.
    ///
    /// # Errors
    ///
    /// Propagates shape errors.
    pub fn forward(
        &mut self,
        tape: &mut Tape,
        params: &Params,
        binding: &mut Binding,
        x: VarId,
        phase: Phase,
        hook: &mut dyn MvmNoiseHook,
    ) -> Result<VarId> {
        let mut h = x;
        for i in 0..self.hidden.len() {
            h = hook.encode(tape, i, h)?;
            h = self.hidden[i].forward(tape, params, binding, h)?;
            h = hook.apply(tape, i, h)?;
            h = self.bns[i].forward(tape, params, binding, h, phase)?;
            h = tape.tanh(h);
            h = tape.quantize_ste(h, self.config.act_levels)?;
        }
        self.classifier.forward(tape, params, binding, h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hooks::NoNoise;
    use membit_tensor::Tensor;

    #[test]
    fn forward_shapes_and_hook_indices() {
        struct Recorder(Vec<usize>);
        impl MvmNoiseHook for Recorder {
            fn apply(&mut self, _t: &mut Tape, l: usize, v: VarId) -> Result<VarId> {
                self.0.push(l);
                Ok(v)
            }
        }
        let mut params = Params::new();
        let mut rng = Rng::from_seed(0);
        let cfg = MlpConfig::new(6, &[10, 8], 3);
        assert_eq!(cfg.crossbar_layers(), 2);
        let mut mlp = Mlp::new(&cfg, &mut params, &mut rng).unwrap();
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::zeros(&[4, 6]));
        let mut binding = params.binding();
        let mut rec = Recorder(Vec::new());
        let y = mlp
            .forward(&mut tape, &params, &mut binding, x, Phase::Train, &mut rec)
            .unwrap();
        assert_eq!(tape.value(y).shape(), &[4, 3]);
        assert_eq!(rec.0, vec![0, 1]);
    }

    #[test]
    fn gradients_flow_to_all_parameters() {
        let mut params = Params::new();
        let mut rng = Rng::from_seed(1);
        let cfg = MlpConfig::new(4, &[6], 3);
        let mut mlp = Mlp::new(&cfg, &mut params, &mut rng).unwrap();
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::from_fn(&[2, 4], |i| (i as f32) * 0.1));
        let mut binding = params.binding();
        let logits = mlp
            .forward(&mut tape, &params, &mut binding, x, Phase::Train, &mut NoNoise)
            .unwrap();
        let loss = tape.softmax_cross_entropy(logits, &[0, 2]).unwrap();
        tape.backward(loss).unwrap();
        let mut with_grad = 0;
        for (_, v) in binding.bound() {
            if tape.grad(v).is_some() {
                with_grad += 1;
            }
        }
        assert_eq!(with_grad, params.len());
    }
}
