//! Optimizers: SGD with momentum/weight-decay and Adam.

use membit_autograd::Tape;
use membit_tensor::Tensor;

use crate::params::{Binding, Params};
use crate::Result;

/// A gradient-descent optimizer over a [`Params`] store.
///
/// After `tape.backward(loss)`, call [`step`](Optimizer::step) with the
/// binding of that forward pass; parameters that were bound and received a
/// gradient are updated in place.
pub trait Optimizer {
    /// Applies one update step.
    ///
    /// # Errors
    ///
    /// Propagates shape errors (which indicate parameter/gradient
    /// bookkeeping bugs).
    fn step(&mut self, params: &mut Params, tape: &Tape, binding: &Binding) -> Result<()>;

    /// Sets the learning rate (for schedulers).
    fn set_lr(&mut self, lr: f32);

    /// Current learning rate.
    fn lr(&self) -> f32;
}

/// Stochastic gradient descent with classical momentum and decoupled-style
/// L2 weight decay (`g ← g + wd·θ`), the paper's pre-training optimizer.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<Option<Tensor>>,
}

impl Sgd {
    /// Creates SGD with the given hyperparameters.
    pub fn new(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        Self {
            lr,
            momentum,
            weight_decay,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut Params, tape: &Tape, binding: &Binding) -> Result<()> {
        if self.velocity.len() < params.len() {
            self.velocity.resize(params.len(), None);
        }
        for (idx, var) in binding.bound() {
            let Some(grad) = tape.grad(var) else {
                continue;
            };
            let mut g = grad.clone();
            if self.weight_decay != 0.0 {
                g.axpy(self.weight_decay, params.get_by_index(idx))?;
            }
            let update = if self.momentum != 0.0 {
                let v = self.velocity[idx]
                    .get_or_insert_with(|| Tensor::zeros(g.shape()));
                // v ← μ·v + g
                let mut nv = v.mul_scalar(self.momentum);
                nv.axpy(1.0, &g)?;
                *v = nv.clone();
                nv
            } else {
                g
            };
            params.get_by_index_mut(idx).axpy(-self.lr, &update)?;
        }
        Ok(())
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn lr(&self) -> f32 {
        self.lr
    }
}

/// Adam (Kingma & Ba), used for the GBO λ-parameter search phase.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Option<Tensor>>,
    v: Vec<Option<Tensor>>,
}

impl Adam {
    /// Creates Adam with standard β = (0.9, 0.999), ε = 1e-8.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut Params, tape: &Tape, binding: &Binding) -> Result<()> {
        if self.m.len() < params.len() {
            self.m.resize(params.len(), None);
            self.v.resize(params.len(), None);
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (idx, var) in binding.bound() {
            let Some(grad) = tape.grad(var) else {
                continue;
            };
            let m = self.m[idx].get_or_insert_with(|| Tensor::zeros(grad.shape()));
            let v = self.v[idx].get_or_insert_with(|| Tensor::zeros(grad.shape()));
            let mut nm = m.mul_scalar(self.beta1);
            nm.axpy(1.0 - self.beta1, grad)?;
            *m = nm;
            let mut nv = v.mul_scalar(self.beta2);
            nv.axpy(1.0 - self.beta2, &grad.square())?;
            *v = nv;
            let mhat = self.m[idx].as_ref().expect("just set").mul_scalar(1.0 / bc1);
            let vhat = self.v[idx].as_ref().expect("just set").mul_scalar(1.0 / bc2);
            let eps = self.eps;
            let update = mhat.zip_map(&vhat, |mv, vv| mv / (vv.sqrt() + eps))?;
            params.get_by_index_mut(idx).axpy(-self.lr, &update)?;
        }
        Ok(())
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn lr(&self) -> f32 {
        self.lr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use membit_autograd::Tape;

    /// Minimizes f(θ) = Σ (θ − target)² with the given optimizer.
    fn optimize(opt: &mut dyn Optimizer, steps: usize) -> f32 {
        let mut params = Params::new();
        let id = params.register("theta", Tensor::from_vec(vec![5.0, -3.0], &[2]).unwrap());
        let target = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        for _ in 0..steps {
            let mut tape = Tape::new();
            let mut binding = params.binding();
            let theta = params.bind(&mut tape, &mut binding, id);
            let t = tape.constant(target.clone());
            let d = tape.sub(theta, t).unwrap();
            let sq = tape.mul(d, d).unwrap();
            let loss = tape.sum_all(sq);
            tape.backward(loss).unwrap();
            opt.step(&mut params, &tape, &binding).unwrap();
        }
        let theta = params.get(id);
        theta
            .sub(&target)
            .unwrap()
            .square()
            .sum()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1, 0.0, 0.0);
        assert!(optimize(&mut opt, 100) < 1e-6);
    }

    #[test]
    fn sgd_with_momentum_converges() {
        let mut opt = Sgd::new(0.05, 0.9, 0.0);
        assert!(optimize(&mut opt, 150) < 1e-5);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.2);
        assert!(optimize(&mut opt, 300) < 1e-4);
    }

    #[test]
    fn weight_decay_shrinks_parameters() {
        let mut params = Params::new();
        let id = params.register("w", Tensor::ones(&[1]));
        let mut opt = Sgd::new(0.1, 0.0, 1.0);
        // loss ≡ 0 gradient; only decay acts
        let mut tape = Tape::new();
        let mut binding = params.binding();
        let w = params.bind(&mut tape, &mut binding, id);
        let zero = tape.constant(Tensor::zeros(&[1]));
        let prod = tape.mul(w, zero).unwrap();
        let loss = tape.sum_all(prod);
        tape.backward(loss).unwrap();
        opt.step(&mut params, &tape, &binding).unwrap();
        assert!((params.get(id).item() - 0.9).abs() < 1e-6);
    }

    #[test]
    fn lr_getter_setter() {
        let mut opt = Sgd::new(0.1, 0.0, 0.0);
        assert_eq!(opt.lr(), 0.1);
        opt.set_lr(0.01);
        assert_eq!(opt.lr(), 0.01);
        let mut adam = Adam::new(1e-3);
        adam.set_lr(1e-4);
        assert!((adam.lr() - 1e-4).abs() < 1e-9);
    }

    #[test]
    fn unbound_params_untouched() {
        let mut params = Params::new();
        let a = params.register("a", Tensor::ones(&[1]));
        let b = params.register("b", Tensor::ones(&[1]));
        let mut opt = Sgd::new(0.5, 0.0, 0.0);
        let mut tape = Tape::new();
        let mut binding = params.binding();
        let av = params.bind(&mut tape, &mut binding, a);
        let sq = tape.mul(av, av).unwrap();
        let loss = tape.sum_all(sq);
        tape.backward(loss).unwrap();
        opt.step(&mut params, &tape, &binding).unwrap();
        assert!((params.get(a).item() - 0.0).abs() < 1e-6); // 1 − 0.5·2 = 0
        assert_eq!(params.get(b).item(), 1.0);
    }
}
