//! Optimizers: SGD with momentum/weight-decay and Adam.

use membit_autograd::Tape;
use membit_tensor::Tensor;

use crate::params::{Binding, Params};
use crate::Result;

/// A gradient-descent optimizer over a [`Params`] store.
///
/// After `tape.backward(loss)`, call [`step`](Optimizer::step) with the
/// binding of that forward pass; parameters that were bound and received a
/// gradient are updated in place.
pub trait Optimizer {
    /// Applies one update step.
    ///
    /// # Errors
    ///
    /// Propagates shape errors (which indicate parameter/gradient
    /// bookkeeping bugs).
    fn step(&mut self, params: &mut Params, tape: &Tape, binding: &Binding) -> Result<()>;

    /// Sets the learning rate (for schedulers).
    fn set_lr(&mut self, lr: f32);

    /// Current learning rate.
    fn lr(&self) -> f32;

    /// Internal state (momenta, step counters) as named tensors, for
    /// checkpointing. Stateless optimizers return an empty vec.
    fn state_tensors(&self) -> Vec<(String, Tensor)> {
        Vec::new()
    }

    /// Restores state previously captured by
    /// [`state_tensors`](Optimizer::state_tensors). Unknown names are
    /// ignored so checkpoints stay forward-compatible.
    fn restore_state_tensors(&mut self, state: &[(String, Tensor)]) {
        let _ = state;
    }
}

/// Parses the slot index out of a state key like `"m17"` / `"v3"`.
fn slot_index(key: &str, prefix: char) -> Option<usize> {
    key.strip_prefix(prefix).and_then(|s| s.parse().ok())
}

/// Grows `slots` so index `idx` is addressable.
fn ensure_slot(slots: &mut Vec<Option<Tensor>>, idx: usize) -> &mut Option<Tensor> {
    if slots.len() <= idx {
        slots.resize(idx + 1, None);
    }
    &mut slots[idx]
}

/// Stochastic gradient descent with classical momentum and decoupled-style
/// L2 weight decay (`g ← g + wd·θ`), the paper's pre-training optimizer.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<Option<Tensor>>,
}

impl Sgd {
    /// Creates SGD with the given hyperparameters.
    pub fn new(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        Self {
            lr,
            momentum,
            weight_decay,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut Params, tape: &Tape, binding: &Binding) -> Result<()> {
        if self.velocity.len() < params.len() {
            self.velocity.resize(params.len(), None);
        }
        for (idx, var) in binding.bound() {
            let Some(grad) = tape.grad(var) else {
                continue;
            };
            let mut g = grad.clone();
            if self.weight_decay != 0.0 {
                g.axpy(self.weight_decay, params.get_by_index(idx))?;
            }
            let update = if self.momentum != 0.0 {
                let v = self.velocity[idx]
                    .get_or_insert_with(|| Tensor::zeros(g.shape()));
                // v ← μ·v + g
                let mut nv = v.mul_scalar(self.momentum);
                nv.axpy(1.0, &g)?;
                *v = nv.clone();
                nv
            } else {
                g
            };
            params.get_by_index_mut(idx).axpy(-self.lr, &update)?;
        }
        Ok(())
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn state_tensors(&self) -> Vec<(String, Tensor)> {
        self.velocity
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.as_ref().map(|t| (format!("v{i}"), t.clone())))
            .collect()
    }

    fn restore_state_tensors(&mut self, state: &[(String, Tensor)]) {
        for (key, tensor) in state {
            if let Some(idx) = slot_index(key, 'v') {
                *ensure_slot(&mut self.velocity, idx) = Some(tensor.clone());
            }
        }
    }
}

/// Adam (Kingma & Ba), used for the GBO λ-parameter search phase.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Option<Tensor>>,
    v: Vec<Option<Tensor>>,
}

impl Adam {
    /// Creates Adam with standard β = (0.9, 0.999), ε = 1e-8.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut Params, tape: &Tape, binding: &Binding) -> Result<()> {
        if self.m.len() < params.len() {
            self.m.resize(params.len(), None);
            self.v.resize(params.len(), None);
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (idx, var) in binding.bound() {
            let Some(grad) = tape.grad(var) else {
                continue;
            };
            let m = self.m[idx].get_or_insert_with(|| Tensor::zeros(grad.shape()));
            let v = self.v[idx].get_or_insert_with(|| Tensor::zeros(grad.shape()));
            let mut nm = m.mul_scalar(self.beta1);
            nm.axpy(1.0 - self.beta1, grad)?;
            *m = nm;
            let mut nv = v.mul_scalar(self.beta2);
            nv.axpy(1.0 - self.beta2, &grad.square())?;
            *v = nv;
            let mhat = self.m[idx].as_ref().expect("just set").mul_scalar(1.0 / bc1);
            let vhat = self.v[idx].as_ref().expect("just set").mul_scalar(1.0 / bc2);
            let eps = self.eps;
            let update = mhat.zip_map(&vhat, |mv, vv| mv / (vv.sqrt() + eps))?;
            params.get_by_index_mut(idx).axpy(-self.lr, &update)?;
        }
        Ok(())
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn state_tensors(&self) -> Vec<(String, Tensor)> {
        let mut out = vec![(
            "t".to_string(),
            Tensor::from_vec(vec![self.t as f32], &[1]).expect("scalar tensor"),
        )];
        for (i, m) in self.m.iter().enumerate() {
            if let Some(t) = m {
                out.push((format!("m{i}"), t.clone()));
            }
        }
        for (i, v) in self.v.iter().enumerate() {
            if let Some(t) = v {
                out.push((format!("v{i}"), t.clone()));
            }
        }
        out
    }

    fn restore_state_tensors(&mut self, state: &[(String, Tensor)]) {
        for (key, tensor) in state {
            if key == "t" {
                self.t = tensor.item() as u64;
            } else if let Some(idx) = slot_index(key, 'm') {
                *ensure_slot(&mut self.m, idx) = Some(tensor.clone());
            } else if let Some(idx) = slot_index(key, 'v') {
                *ensure_slot(&mut self.v, idx) = Some(tensor.clone());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use membit_autograd::Tape;

    /// Minimizes f(θ) = Σ (θ − target)² with the given optimizer.
    fn optimize(opt: &mut dyn Optimizer, steps: usize) -> f32 {
        let mut params = Params::new();
        let id = params.register("theta", Tensor::from_vec(vec![5.0, -3.0], &[2]).unwrap());
        let target = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        for _ in 0..steps {
            let mut tape = Tape::new();
            let mut binding = params.binding();
            let theta = params.bind(&mut tape, &mut binding, id);
            let t = tape.constant(target.clone());
            let d = tape.sub(theta, t).unwrap();
            let sq = tape.mul(d, d).unwrap();
            let loss = tape.sum_all(sq);
            tape.backward(loss).unwrap();
            opt.step(&mut params, &tape, &binding).unwrap();
        }
        let theta = params.get(id);
        theta
            .sub(&target)
            .unwrap()
            .square()
            .sum()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1, 0.0, 0.0);
        assert!(optimize(&mut opt, 100) < 1e-6);
    }

    #[test]
    fn sgd_with_momentum_converges() {
        let mut opt = Sgd::new(0.05, 0.9, 0.0);
        assert!(optimize(&mut opt, 150) < 1e-5);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.2);
        assert!(optimize(&mut opt, 300) < 1e-4);
    }

    #[test]
    fn weight_decay_shrinks_parameters() {
        let mut params = Params::new();
        let id = params.register("w", Tensor::ones(&[1]));
        let mut opt = Sgd::new(0.1, 0.0, 1.0);
        // loss ≡ 0 gradient; only decay acts
        let mut tape = Tape::new();
        let mut binding = params.binding();
        let w = params.bind(&mut tape, &mut binding, id);
        let zero = tape.constant(Tensor::zeros(&[1]));
        let prod = tape.mul(w, zero).unwrap();
        let loss = tape.sum_all(prod);
        tape.backward(loss).unwrap();
        opt.step(&mut params, &tape, &binding).unwrap();
        assert!((params.get(id).item() - 0.9).abs() < 1e-6);
    }

    #[test]
    fn lr_getter_setter() {
        let mut opt = Sgd::new(0.1, 0.0, 0.0);
        assert_eq!(opt.lr(), 0.1);
        opt.set_lr(0.01);
        assert_eq!(opt.lr(), 0.01);
        let mut adam = Adam::new(1e-3);
        adam.set_lr(1e-4);
        assert!((adam.lr() - 1e-4).abs() < 1e-9);
    }

    /// Runs `steps` optimizer steps on a fresh quadratic problem, starting
    /// from `start` and restoring `state` first if given; returns the
    /// final θ and the optimizer state.
    fn run_from(
        opt: &mut dyn Optimizer,
        start: &Tensor,
        state: Option<&[(String, Tensor)]>,
        steps: usize,
    ) -> (Tensor, Vec<(String, Tensor)>) {
        let mut params = Params::new();
        let id = params.register("theta", start.clone());
        if let Some(s) = state {
            opt.restore_state_tensors(s);
        }
        let target = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        for _ in 0..steps {
            let mut tape = Tape::new();
            let mut binding = params.binding();
            let theta = params.bind(&mut tape, &mut binding, id);
            let t = tape.constant(target.clone());
            let d = tape.sub(theta, t).unwrap();
            let sq = tape.mul(d, d).unwrap();
            let loss = tape.sum_all(sq);
            tape.backward(loss).unwrap();
            opt.step(&mut params, &tape, &binding).unwrap();
        }
        (params.get(id).clone(), opt.state_tensors())
    }

    /// Checkpointed state must make a split run bitwise-identical to an
    /// uninterrupted one (the property resume determinism relies on).
    #[test]
    fn state_roundtrip_matches_uninterrupted_run() {
        let start = Tensor::from_vec(vec![5.0, -3.0], &[2]).unwrap();
        for fresh in [
            || Box::new(Sgd::new(0.05, 0.9, 1e-4)) as Box<dyn Optimizer>,
            || Box::new(Adam::new(0.1)) as Box<dyn Optimizer>,
        ] {
            let (full, _) = run_from(&mut *fresh(), &start, None, 10);
            let (mid, state) = run_from(&mut *fresh(), &start, None, 4);
            let (resumed, _) = run_from(&mut *fresh(), &mid, Some(&state), 6);
            assert_eq!(full.as_slice(), resumed.as_slice());
        }
    }

    #[test]
    fn restore_ignores_unknown_keys() {
        let mut opt = Adam::new(0.1);
        opt.restore_state_tensors(&[
            ("bogus".to_string(), Tensor::ones(&[1])),
            ("q7".to_string(), Tensor::ones(&[1])),
        ]);
        assert_eq!(opt.state_tensors().len(), 1); // just "t"
    }

    #[test]
    fn unbound_params_untouched() {
        let mut params = Params::new();
        let a = params.register("a", Tensor::ones(&[1]));
        let b = params.register("b", Tensor::ones(&[1]));
        let mut opt = Sgd::new(0.5, 0.0, 0.0);
        let mut tape = Tape::new();
        let mut binding = params.binding();
        let av = params.bind(&mut tape, &mut binding, a);
        let sq = tape.mul(av, av).unwrap();
        let loss = tape.sum_all(sq);
        tape.backward(loss).unwrap();
        opt.step(&mut params, &tape, &binding).unwrap();
        assert!((params.get(a).item() - 0.0).abs() < 1e-6); // 1 − 0.5·2 = 0
        assert_eq!(params.get(b).item(), 1.0);
    }
}
