//! A binary-weight residual network with crossbar hooks — the "different
//! network configuration" the paper's generality claim calls for.
//!
//! Architecture: a digital stem conv, then stages of residual blocks
//! (`conv-BN-tanh-quant → conv-BN`, plus a 1×1 projection on channel
//! changes, summed with the skip and re-activated), 2×2 max pools between
//! stages, global average pooling and a digital classifier. Every conv
//! except the stem is a crossbar layer with a pulse-encoded input, so the
//! same GBO machinery that searches the VGG9 searches this topology
//! unchanged.

use membit_autograd::{Tape, VarId};
use membit_tensor::{Rng, TensorError};

use crate::batchnorm::BatchNorm;
use crate::conv::Conv2d;
use crate::hooks::MvmNoiseHook;
use crate::linear::Linear;
use crate::params::{Binding, Params};
use crate::{Phase, Result};

/// Architecture description of a [`ResNet`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResNetConfig {
    /// Input image channels.
    pub in_channels: usize,
    /// Input height (divisible by `2^(stages−1)`).
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Number of classes.
    pub num_classes: usize,
    /// Stem conv output channels (the digital first layer).
    pub stem_channels: usize,
    /// `(channels, blocks)` per stage; 2×2 max pools sit between stages.
    pub stages: Vec<(usize, usize)>,
    /// Activation quantization levels.
    pub act_levels: usize,
    /// Whether weights binarize (the BWNN setting).
    pub binary_weights: bool,
}

impl ResNetConfig {
    /// A compact BWNN ResNet for 3×16×16 inputs: stem 16, stages
    /// (16×1, 32×1), 10 classes.
    pub fn small() -> Self {
        Self {
            in_channels: 3,
            in_h: 16,
            in_w: 16,
            num_classes: 10,
            stem_channels: 16,
            stages: vec![(16, 1), (32, 1)],
            act_levels: 9,
            binary_weights: true,
        }
    }

    /// A miniature for unit tests (8×8 input).
    pub fn tiny() -> Self {
        Self {
            in_channels: 3,
            in_h: 8,
            in_w: 8,
            num_classes: 4,
            stem_channels: 8,
            stages: vec![(8, 1), (16, 1)],
            act_levels: 9,
            binary_weights: true,
        }
    }

    /// Number of crossbar (hooked) layers: per block two 3×3 convs plus a
    /// 1×1 projection when the block changes channel count.
    pub fn crossbar_layers(&self) -> usize {
        let mut count = 0;
        let mut in_ch = self.stem_channels;
        for &(ch, blocks) in &self.stages {
            for _ in 0..blocks {
                count += 2;
                if in_ch != ch {
                    count += 1;
                }
                in_ch = ch;
            }
        }
        count
    }

    fn validate(&self) -> Result<()> {
        if self.stages.is_empty() {
            return Err(TensorError::InvalidArgument(
                "ResNet needs at least one stage".into(),
            ));
        }
        if self.stages.iter().any(|&(c, b)| c == 0 || b == 0) {
            return Err(TensorError::InvalidArgument(
                "stage channels and block counts must be nonzero".into(),
            ));
        }
        let d = 1usize << (self.stages.len() - 1);
        if !self.in_h.is_multiple_of(d) || !self.in_w.is_multiple_of(d) {
            return Err(TensorError::InvalidArgument(format!(
                "input {}x{} not divisible by inter-stage pool factor {d}",
                self.in_h, self.in_w
            )));
        }
        if self.act_levels < 2 {
            return Err(TensorError::InvalidArgument("act_levels must be ≥ 2".into()));
        }
        Ok(())
    }
}

struct Block {
    conv1: Conv2d,
    bn1: BatchNorm,
    conv2: Conv2d,
    bn2: BatchNorm,
    projection: Option<(Conv2d, BatchNorm)>,
}

/// The residual BWNN.
pub struct ResNet {
    config: ResNetConfig,
    stem: Conv2d,
    stem_bn: BatchNorm,
    blocks: Vec<Block>,
    classifier: Linear,
}

impl ResNet {
    /// Builds the model, registering parameters into `params`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] for inconsistent configs.
    pub fn new(config: &ResNetConfig, params: &mut Params, rng: &mut Rng) -> Result<Self> {
        config.validate()?;
        let stem = Conv2d::new(
            "res_stem",
            config.in_channels,
            config.stem_channels,
            3,
            1,
            1,
            config.binary_weights,
            params,
            rng,
        );
        let stem_bn = BatchNorm::new("res_stem_bn", config.stem_channels, params);
        let mut blocks = Vec::new();
        let mut in_ch = config.stem_channels;
        for (si, &(ch, nblocks)) in config.stages.iter().enumerate() {
            for bi in 0..nblocks {
                let tag = format!("res_s{si}b{bi}");
                let conv1 = Conv2d::new(
                    &format!("{tag}_conv1"),
                    in_ch,
                    ch,
                    3,
                    1,
                    1,
                    config.binary_weights,
                    params,
                    rng,
                );
                let bn1 = BatchNorm::new(&format!("{tag}_bn1"), ch, params);
                let conv2 = Conv2d::new(
                    &format!("{tag}_conv2"),
                    ch,
                    ch,
                    3,
                    1,
                    1,
                    config.binary_weights,
                    params,
                    rng,
                );
                let bn2 = BatchNorm::new(&format!("{tag}_bn2"), ch, params);
                let projection = (in_ch != ch).then(|| {
                    (
                        Conv2d::new(
                            &format!("{tag}_proj"),
                            in_ch,
                            ch,
                            1,
                            1,
                            0,
                            config.binary_weights,
                            params,
                            rng,
                        ),
                        BatchNorm::new(&format!("{tag}_proj_bn"), ch, params),
                    )
                });
                blocks.push(Block {
                    conv1,
                    bn1,
                    conv2,
                    bn2,
                    projection,
                });
                in_ch = ch;
            }
        }
        let classifier = Linear::new(
            "res_classifier",
            in_ch,
            config.num_classes,
            true,
            false,
            params,
            rng,
        );
        Ok(Self {
            config: config.clone(),
            stem,
            stem_bn,
            blocks,
            classifier,
        })
    }

    /// The architecture description.
    pub fn config(&self) -> &ResNetConfig {
        &self.config
    }

    /// Number of crossbar (hooked) layers.
    pub fn crossbar_layers(&self) -> usize {
        self.config.crossbar_layers()
    }

    /// Running statistics of every batch-norm layer, keyed by layer name —
    /// part of the checkpoint alongside [`Params`] (mirrors
    /// [`Vgg::running_stats`](crate::Vgg::running_stats)).
    pub fn running_stats(
        &self,
    ) -> Vec<(String, membit_tensor::Tensor, membit_tensor::Tensor)> {
        let stat = |name: String, bn: &BatchNorm| {
            (name, bn.running_mean().clone(), bn.running_var().clone())
        };
        let mut out = vec![stat("res_stem_bn".into(), &self.stem_bn)];
        for (i, block) in self.blocks.iter().enumerate() {
            out.push(stat(format!("res_b{i}_bn1"), &block.bn1));
            out.push(stat(format!("res_b{i}_bn2"), &block.bn2));
            if let Some((_, proj_bn)) = &block.projection {
                out.push(stat(format!("res_b{i}_proj_bn"), proj_bn));
            }
        }
        out
    }

    /// Restores running statistics saved by
    /// [`running_stats`](Self::running_stats). Unknown names are ignored.
    pub fn set_running_stats(
        &mut self,
        stats: &[(String, membit_tensor::Tensor, membit_tensor::Tensor)],
    ) {
        for (name, mean, var) in stats {
            if name == "res_stem_bn" {
                self.stem_bn.set_running_stats(mean.clone(), var.clone());
                continue;
            }
            let Some(rest) = name.strip_prefix("res_b") else {
                continue;
            };
            let Some((idx_str, which)) = rest.split_once('_') else {
                continue;
            };
            let Some(block) = idx_str
                .parse::<usize>()
                .ok()
                .and_then(|i| self.blocks.get_mut(i))
            else {
                continue;
            };
            match which {
                "bn1" => block.bn1.set_running_stats(mean.clone(), var.clone()),
                "bn2" => block.bn2.set_running_stats(mean.clone(), var.clone()),
                "proj_bn" => {
                    if let Some((_, proj_bn)) = &mut block.projection {
                        proj_bn.set_running_stats(mean.clone(), var.clone());
                    }
                }
                _ => {}
            }
        }
    }

    /// Runs the network on `x` (`[N, C, H, W]`), returning logits.
    ///
    /// # Errors
    ///
    /// Propagates shape errors.
    pub fn forward(
        &mut self,
        tape: &mut Tape,
        params: &Params,
        binding: &mut Binding,
        x: VarId,
        phase: Phase,
        hook: &mut dyn MvmNoiseHook,
    ) -> Result<VarId> {
        let levels = self.config.act_levels;
        let mut h = self.stem.forward(tape, params, binding, x)?;
        h = self.stem_bn.forward(tape, params, binding, h, phase)?;
        h = tape.tanh(h);
        h = tape.quantize_ste(h, levels)?;

        let mut layer_idx = 0usize;
        let mut block_iter = 0usize;
        for (si, &(_, nblocks)) in self.config.stages.iter().enumerate() {
            for _ in 0..nblocks {
                let block = &mut self.blocks[block_iter];
                block_iter += 1;
                let skip_input = h;

                let mut m = hook.encode(tape, layer_idx, h)?;
                m = block.conv1.forward(tape, params, binding, m)?;
                m = hook.apply(tape, layer_idx, m)?;
                layer_idx += 1;
                m = block.bn1.forward(tape, params, binding, m, phase)?;
                m = tape.tanh(m);
                m = tape.quantize_ste(m, levels)?;

                let mut m2 = hook.encode(tape, layer_idx, m)?;
                m2 = block.conv2.forward(tape, params, binding, m2)?;
                m2 = hook.apply(tape, layer_idx, m2)?;
                layer_idx += 1;
                m2 = block.bn2.forward(tape, params, binding, m2, phase)?;

                let skip = match &mut block.projection {
                    Some((proj, proj_bn)) => {
                        let mut s = hook.encode(tape, layer_idx, skip_input)?;
                        s = proj.forward(tape, params, binding, s)?;
                        s = hook.apply(tape, layer_idx, s)?;
                        layer_idx += 1;
                        proj_bn.forward(tape, params, binding, s, phase)?
                    }
                    None => skip_input,
                };
                let summed = tape.add(m2, skip)?;
                h = tape.tanh(summed);
                h = tape.quantize_ste(h, levels)?;
            }
            if si + 1 < self.config.stages.len() {
                h = tape.max_pool2d(h, 2)?;
            }
        }
        // global average pool → digital classifier
        let shape = tape.value(h).shape().to_vec();
        let pooled = tape.avg_pool2d(h, shape[2])?;
        let flat = tape.reshape(pooled, &[shape[0], shape[1]])?;
        self.classifier.forward(tape, params, binding, flat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hooks::NoNoise;
    use membit_tensor::Tensor;

    #[test]
    fn config_layer_count() {
        // tiny: stage0 (8ch, same as stem) = 2 layers; stage1 (16ch) =
        // 2 + 1 projection = 3 ⇒ 5 crossbar layers
        assert_eq!(ResNetConfig::tiny().crossbar_layers(), 5);
        assert_eq!(ResNetConfig::small().crossbar_layers(), 5);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut rng = Rng::from_seed(0);
        let mut c = ResNetConfig::tiny();
        c.stages.clear();
        assert!(ResNet::new(&c, &mut Params::new(), &mut rng).is_err());
        let mut c2 = ResNetConfig::tiny();
        c2.in_h = 9;
        assert!(ResNet::new(&c2, &mut Params::new(), &mut rng).is_err());
        let mut c3 = ResNetConfig::tiny();
        c3.stages[0].1 = 0;
        assert!(ResNet::new(&c3, &mut Params::new(), &mut rng).is_err());
    }

    #[test]
    fn forward_shapes_and_hook_coverage() {
        struct Recorder(Vec<usize>);
        impl MvmNoiseHook for Recorder {
            fn apply(&mut self, _t: &mut Tape, l: usize, v: VarId) -> Result<VarId> {
                self.0.push(l);
                Ok(v)
            }
        }
        let mut rng = Rng::from_seed(1);
        let mut params = Params::new();
        let mut net = ResNet::new(&ResNetConfig::tiny(), &mut params, &mut rng).unwrap();
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::zeros(&[2, 3, 8, 8]));
        let mut binding = params.binding();
        let mut rec = Recorder(Vec::new());
        let y = net
            .forward(&mut tape, &params, &mut binding, x, Phase::Train, &mut rec)
            .unwrap();
        assert_eq!(tape.value(y).shape(), &[2, 4]);
        assert_eq!(rec.0, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn gradients_flow_through_skip_connections() {
        let mut rng = Rng::from_seed(2);
        let mut params = Params::new();
        let mut net = ResNet::new(&ResNetConfig::tiny(), &mut params, &mut rng).unwrap();
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::from_fn(&[2, 3, 8, 8], |i| ((i % 9) as f32 - 4.0) / 4.0));
        let mut binding = params.binding();
        let logits = net
            .forward(&mut tape, &params, &mut binding, x, Phase::Train, &mut NoNoise)
            .unwrap();
        let loss = tape.softmax_cross_entropy(logits, &[0, 3]).unwrap();
        tape.backward(loss).unwrap();
        let mut grads = 0;
        for (_, v) in binding.bound() {
            if tape.grad(v).is_some() {
                grads += 1;
            }
        }
        assert_eq!(grads, params.len(), "all parameters reached by gradient");
    }
}
