//! The VGG9 binary-weight network of the paper, with crossbar noise hooks.

use membit_autograd::{Tape, VarId};
use membit_tensor::{Rng, TensorError};

use crate::batchnorm::BatchNorm;
use crate::conv::Conv2d;
use crate::hooks::MvmNoiseHook;
use crate::linear::Linear;
use crate::params::{Binding, Params};
use crate::{Phase, Result};

/// Architecture description of a VGG-style BWNN.
///
/// The network is `conv[0..n]` (3×3, padding 1) with 2×2 max pools after
/// the convs listed in `pool_after`, then one hidden fully-connected layer
/// and a classifier. Every layer except the classifier is followed by
/// batch norm, `tanh`, and `act_levels`-level quantization — the paper's
/// BWNN recipe (binary weights, multi-bit activations).
///
/// **Crossbar layers** — the layers whose input activations are
/// pulse-encoded and whose MVM executes on a (noisy) crossbar — are
/// `conv[1..n]` plus the hidden FC layer: the first conv reads the raw
/// image and the classifier runs digitally, giving the `n` entries of the
/// paper's per-layer pulse table (7 for the paper's VGG9).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VggConfig {
    /// Input image channels.
    pub in_channels: usize,
    /// Input image height.
    pub in_h: usize,
    /// Input image width.
    pub in_w: usize,
    /// Number of classes.
    pub num_classes: usize,
    /// Output channels of each conv layer.
    pub channels: Vec<usize>,
    /// Conv indices (0-based) followed by a 2×2 max pool.
    pub pool_after: Vec<usize>,
    /// Width of the hidden fully-connected layer.
    pub fc_dim: usize,
    /// Activation quantization levels (9 in the paper ⇒ 8-pulse
    /// thermometer codes).
    pub act_levels: usize,
    /// Whether weights are binarized (the paper's setting).
    pub binary_weights: bool,
}

impl VggConfig {
    /// The paper's full-scale VGG9 for 3×32×32 CIFAR-10.
    pub fn paper() -> Self {
        Self {
            in_channels: 3,
            in_h: 32,
            in_w: 32,
            num_classes: 10,
            channels: vec![64, 64, 128, 128, 256, 256, 256],
            pool_after: vec![1, 3, 6],
            fc_dim: 1024,
            act_levels: 9,
            binary_weights: true,
        }
    }

    /// Channel-reduced VGG9 on 3×16×16 inputs — same topology and layer
    /// count as [`paper`](Self::paper) but sized to train on a single CPU
    /// core in minutes. This is the default experiment configuration.
    pub fn small() -> Self {
        Self {
            in_channels: 3,
            in_h: 16,
            in_w: 16,
            num_classes: 10,
            channels: vec![16, 16, 32, 32, 64, 64, 64],
            pool_after: vec![1, 3, 6],
            fc_dim: 128,
            act_levels: 9,
            binary_weights: true,
        }
    }

    /// A mid-scale VGG9 (3×16×16, wider channels) for machines with more
    /// compute headroom.
    pub fn medium() -> Self {
        Self {
            in_channels: 3,
            in_h: 16,
            in_w: 16,
            num_classes: 10,
            channels: vec![32, 32, 64, 64, 128, 128, 128],
            pool_after: vec![1, 3, 6],
            fc_dim: 256,
            act_levels: 9,
            binary_weights: true,
        }
    }

    /// A 3-conv miniature (still one FC + classifier) for fast unit tests.
    pub fn tiny() -> Self {
        Self {
            in_channels: 3,
            in_h: 8,
            in_w: 8,
            num_classes: 4,
            channels: vec![8, 8, 16],
            pool_after: vec![1, 2],
            fc_dim: 32,
            act_levels: 9,
            binary_weights: true,
        }
    }

    /// Number of crossbar (pulse-encoded) layers: `convs − 1 + 1` (the
    /// hidden FC). For [`paper`](Self::paper) this is 7, matching Table I.
    pub fn crossbar_layers(&self) -> usize {
        self.channels.len()
    }

    /// `[C, H, W]` of one input sample — what deployment pipelines and
    /// serving front-ends need to validate and reshape flat payloads.
    pub fn input_shape(&self) -> [usize; 3] {
        [self.in_channels, self.in_h, self.in_w]
    }

    /// Spatial side length after all pools (input must be divisible).
    fn final_spatial(&self) -> (usize, usize) {
        let d = 1usize << self.pool_after.len();
        (self.in_h / d, self.in_w / d)
    }

    /// Flattened feature count entering the hidden FC layer.
    pub fn feature_dim(&self) -> usize {
        let (h, w) = self.final_spatial();
        self.channels.last().copied().unwrap_or(0) * h * w
    }

    fn validate(&self) -> Result<()> {
        if self.channels.is_empty() {
            return Err(TensorError::InvalidArgument(
                "VggConfig needs at least one conv layer".into(),
            ));
        }
        if self.act_levels < 2 {
            return Err(TensorError::InvalidArgument(
                "act_levels must be ≥ 2".into(),
            ));
        }
        let d = 1usize << self.pool_after.len();
        if !self.in_h.is_multiple_of(d) || !self.in_w.is_multiple_of(d) {
            return Err(TensorError::InvalidArgument(format!(
                "input {}x{} not divisible by pool factor {d}",
                self.in_h, self.in_w
            )));
        }
        if let Some(&bad) = self
            .pool_after
            .iter()
            .find(|&&i| i >= self.channels.len())
        {
            return Err(TensorError::InvalidArgument(format!(
                "pool_after index {bad} out of range for {} convs",
                self.channels.len()
            )));
        }
        Ok(())
    }
}

/// The VGG9-BWNN model.
#[derive(Debug, Clone)]
pub struct Vgg {
    config: VggConfig,
    convs: Vec<Conv2d>,
    conv_bns: Vec<BatchNorm>,
    fc_hidden: Linear,
    fc_bn: BatchNorm,
    classifier: Linear,
}

impl Vgg {
    /// Builds the model, registering all parameters into `params`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] for inconsistent configs
    /// (empty conv stack, indivisible pooling, ...).
    pub fn new(config: &VggConfig, params: &mut Params, rng: &mut Rng) -> Result<Self> {
        config.validate()?;
        let mut convs = Vec::with_capacity(config.channels.len());
        let mut conv_bns = Vec::with_capacity(config.channels.len());
        let mut in_ch = config.in_channels;
        for (i, &out_ch) in config.channels.iter().enumerate() {
            convs.push(Conv2d::new(
                &format!("conv{i}"),
                in_ch,
                out_ch,
                3,
                1,
                1,
                config.binary_weights,
                params,
                rng,
            ));
            conv_bns.push(BatchNorm::new(&format!("bn{i}"), out_ch, params));
            in_ch = out_ch;
        }
        let fc_hidden = Linear::new(
            "fc_hidden",
            config.feature_dim(),
            config.fc_dim,
            false,
            config.binary_weights,
            params,
            rng,
        );
        let fc_bn = BatchNorm::new("fc_bn", config.fc_dim, params);
        let classifier = Linear::new(
            "classifier",
            config.fc_dim,
            config.num_classes,
            true,
            false,
            params,
            rng,
        );
        Ok(Self {
            config: config.clone(),
            convs,
            conv_bns,
            fc_hidden,
            fc_bn,
            classifier,
        })
    }

    /// The architecture description.
    pub fn config(&self) -> &VggConfig {
        &self.config
    }

    /// Number of crossbar (hooked) layers.
    pub fn crossbar_layers(&self) -> usize {
        self.config.crossbar_layers()
    }

    /// Runs the network on `x` (`[N, C, H, W]`), returning class logits
    /// (`[N, num_classes]`).
    ///
    /// `hook` intercepts each crossbar layer's MVM output, indexed
    /// `0..crossbar_layers()`.
    ///
    /// # Errors
    ///
    /// Propagates shape mismatches between `x` and the configuration.
    pub fn forward(
        &mut self,
        tape: &mut Tape,
        params: &Params,
        binding: &mut Binding,
        x: VarId,
        phase: Phase,
        hook: &mut dyn MvmNoiseHook,
    ) -> Result<VarId> {
        let mut h = x;
        for i in 0..self.convs.len() {
            if i > 0 {
                // conv0 reads the raw image digitally; conv1.. are crossbar
                // layers with pulse-encoded inputs.
                h = hook.encode(tape, i - 1, h)?;
            }
            h = self.convs[i].forward(tape, params, binding, h)?;
            if i > 0 {
                h = hook.apply(tape, i - 1, h)?;
            }
            h = self.conv_bns[i].forward(tape, params, binding, h, phase)?;
            h = tape.tanh(h);
            h = tape.quantize_ste(h, self.config.act_levels)?;
            if self.config.pool_after.contains(&i) {
                h = tape.max_pool2d(h, 2)?;
            }
        }
        let n = tape.value(h).shape()[0];
        let mut flat = tape.reshape(h, &[n, self.config.feature_dim()])?;
        flat = hook.encode(tape, self.convs.len() - 1, flat)?;
        let mut f = self.fc_hidden.forward(tape, params, binding, flat)?;
        f = hook.apply(tape, self.convs.len() - 1, f)?;
        f = self.fc_bn.forward(tape, params, binding, f, phase)?;
        f = tape.tanh(f);
        f = tape.quantize_ste(f, self.config.act_levels)?;
        self.classifier.forward(tape, params, binding, f)
    }

    /// Borrow the conv layers (for crossbar deployment).
    pub fn convs(&self) -> &[Conv2d] {
        &self.convs
    }

    /// Borrow the per-conv batch-norm layers (for crossbar deployment).
    pub fn conv_bns(&self) -> &[BatchNorm] {
        &self.conv_bns
    }

    /// Effective fan-in of each crossbar layer's MVM (inputs per output:
    /// `C·K²` for convs, `feature_dim` for the hidden FC). Used by
    /// encoding searches that model input-representation error, whose
    /// output-level variance scales with the fan-in under ±1 weights.
    pub fn crossbar_fan_ins(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.config.crossbar_layers());
        for i in 1..self.config.channels.len() {
            out.push((self.config.channels[i - 1] * 9) as f32);
        }
        out.push(self.config.feature_dim() as f32);
        out
    }

    /// Borrow the hidden-FC batch norm (for crossbar deployment).
    pub fn fc_bn(&self) -> &BatchNorm {
        &self.fc_bn
    }

    /// Borrow the hidden FC layer (for crossbar deployment).
    pub fn fc_hidden(&self) -> &Linear {
        &self.fc_hidden
    }

    /// Borrow the classifier layer.
    pub fn classifier(&self) -> &Linear {
        &self.classifier
    }

    /// Running statistics of every batch-norm layer, keyed by layer name —
    /// part of the checkpoint alongside [`Params`].
    pub fn running_stats(&self) -> Vec<(String, membit_tensor::Tensor, membit_tensor::Tensor)> {
        let mut out = Vec::new();
        for (i, bn) in self.conv_bns.iter().enumerate() {
            out.push((
                format!("bn{i}"),
                bn.running_mean().clone(),
                bn.running_var().clone(),
            ));
        }
        out.push((
            "fc_bn".into(),
            self.fc_bn.running_mean().clone(),
            self.fc_bn.running_var().clone(),
        ));
        out
    }

    /// Restores running statistics saved by
    /// [`running_stats`](Self::running_stats). Unknown names are ignored.
    pub fn set_running_stats(
        &mut self,
        stats: &[(String, membit_tensor::Tensor, membit_tensor::Tensor)],
    ) {
        for (name, mean, var) in stats {
            if let Some(idx) = name
                .strip_prefix("bn")
                .and_then(|s| s.parse::<usize>().ok())
            {
                if idx < self.conv_bns.len() {
                    self.conv_bns[idx].set_running_stats(mean.clone(), var.clone());
                }
            } else if name == "fc_bn" {
                self.fc_bn.set_running_stats(mean.clone(), var.clone());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hooks::NoNoise;
    use membit_tensor::Tensor;

    #[test]
    fn config_invariants() {
        let paper = VggConfig::paper();
        assert_eq!(paper.crossbar_layers(), 7);
        assert_eq!(paper.feature_dim(), 256 * 4 * 4);
        let small = VggConfig::small();
        assert_eq!(small.crossbar_layers(), 7);
        assert_eq!(small.feature_dim(), 64 * 2 * 2);
        assert_eq!(VggConfig::medium().feature_dim(), 128 * 2 * 2);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut params = Params::new();
        let mut rng = Rng::from_seed(0);
        let mut c = VggConfig::tiny();
        c.channels.clear();
        assert!(Vgg::new(&c, &mut params, &mut rng).is_err());

        let mut c2 = VggConfig::tiny();
        c2.in_h = 9; // not divisible by pool factor 4
        assert!(Vgg::new(&c2, &mut Params::new(), &mut rng).is_err());

        let mut c3 = VggConfig::tiny();
        c3.pool_after = vec![5];
        assert!(Vgg::new(&c3, &mut Params::new(), &mut rng).is_err());

        let mut c4 = VggConfig::tiny();
        c4.act_levels = 1;
        assert!(Vgg::new(&c4, &mut Params::new(), &mut rng).is_err());
    }

    #[test]
    fn forward_shapes() {
        let mut params = Params::new();
        let mut rng = Rng::from_seed(0);
        let cfg = VggConfig::tiny();
        let mut vgg = Vgg::new(&cfg, &mut params, &mut rng).unwrap();
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::zeros(&[2, 3, 8, 8]));
        let mut binding = params.binding();
        let logits = vgg
            .forward(&mut tape, &params, &mut binding, x, Phase::Train, &mut NoNoise)
            .unwrap();
        assert_eq!(tape.value(logits).shape(), &[2, 4]);
    }

    #[test]
    fn hook_sees_every_crossbar_layer_once() {
        struct Counter(Vec<usize>);
        impl MvmNoiseHook for Counter {
            fn apply(&mut self, _t: &mut Tape, layer: usize, v: VarId) -> Result<VarId> {
                self.0.push(layer);
                Ok(v)
            }
        }
        let mut params = Params::new();
        let mut rng = Rng::from_seed(0);
        let cfg = VggConfig::tiny();
        let mut vgg = Vgg::new(&cfg, &mut params, &mut rng).unwrap();
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::zeros(&[1, 3, 8, 8]));
        let mut binding = params.binding();
        let mut hook = Counter(Vec::new());
        vgg.forward(&mut tape, &params, &mut binding, x, Phase::Eval, &mut hook)
            .unwrap();
        assert_eq!(hook.0, vec![0, 1, 2]); // tiny: 3 crossbar layers
    }

    #[test]
    fn crossbar_fan_ins_match_architecture() {
        let mut params = Params::new();
        let mut rng = Rng::from_seed(0);
        let vgg = Vgg::new(&VggConfig::tiny(), &mut params, &mut rng).unwrap();
        // tiny: channels [8, 8, 16] ⇒ crossbar convs see 8·9 and 8·9
        // inputs; the hidden FC sees feature_dim
        assert_eq!(
            vgg.crossbar_fan_ins(),
            vec![72.0, 72.0, VggConfig::tiny().feature_dim() as f32]
        );
        assert_eq!(vgg.crossbar_fan_ins().len(), vgg.crossbar_layers());
    }

    #[test]
    fn running_stats_roundtrip() {
        let mut params = Params::new();
        let mut rng = Rng::from_seed(0);
        let cfg = VggConfig::tiny();
        let mut vgg = Vgg::new(&cfg, &mut params, &mut rng).unwrap();
        // push non-trivial stats through one training forward
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::from_fn(&[2, 3, 8, 8], |i| (i % 13) as f32 * 0.1));
        let mut binding = params.binding();
        vgg.forward(&mut tape, &params, &mut binding, x, Phase::Train, &mut NoNoise)
            .unwrap();
        let stats = vgg.running_stats();
        assert_eq!(stats.len(), 4); // 3 conv BNs + fc_bn

        let mut vgg2 = Vgg::new(&cfg, &mut Params::new(), &mut rng).unwrap();
        vgg2.set_running_stats(&stats);
        for (a, b) in vgg2.running_stats().iter().zip(&stats) {
            assert_eq!(a.1, b.1);
            assert_eq!(a.2, b.2);
        }
    }

    #[test]
    fn activations_are_quantized_levels() {
        // After tanh + 9-level quantization, all crossbar-layer inputs
        // must be multiples of 0.25 in [-1, 1].
        struct Checker;
        impl MvmNoiseHook for Checker {
            fn apply(&mut self, _t: &mut Tape, _l: usize, v: VarId) -> Result<VarId> {
                Ok(v)
            }
        }
        let mut params = Params::new();
        let mut rng = Rng::from_seed(3);
        let cfg = VggConfig::tiny();
        let mut vgg = Vgg::new(&cfg, &mut params, &mut rng).unwrap();
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::from_fn(&[1, 3, 8, 8], |i| ((i % 7) as f32 - 3.0) / 3.0));
        let mut binding = params.binding();
        let logits = vgg
            .forward(&mut tape, &params, &mut binding, x, Phase::Eval, &mut Checker)
            .unwrap();
        assert!(tape.value(logits).as_slice().iter().all(|v| v.is_finite()));
    }
}
