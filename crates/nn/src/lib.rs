//! # membit-nn
//!
//! Neural-network building blocks over [`membit_autograd`]: a central
//! parameter store, convolution / linear / batch-norm layers with optional
//! **binary weights** (straight-through `sign`), k-level activation
//! quantization, SGD/Adam optimizers with step LR schedules, metrics, and
//! the VGG9 binary-weight network the GBO paper evaluates.
//!
//! The key extension point for the crossbar work is [`MvmNoiseHook`]:
//! every layer whose matrix-vector product would execute on a memristive
//! crossbar passes its raw MVM output through the hook, which is where the
//! paper's Gaussian noise (Eq. 1), the GBO mixture (Eq. 5) and NIA noise
//! injection are implemented by downstream crates.
//!
//! ```
//! use membit_nn::{Mlp, MlpConfig, NoNoise, Params, Phase};
//! use membit_autograd::Tape;
//! use membit_tensor::{Rng, Tensor};
//!
//! # fn main() -> Result<(), membit_tensor::TensorError> {
//! let mut params = Params::new();
//! let mut rng = Rng::from_seed(0);
//! let mut mlp = Mlp::new(&MlpConfig::new(4, &[8], 3), &mut params, &mut rng)?;
//! let mut tape = Tape::new();
//! let x = tape.constant(Tensor::zeros(&[2, 4]));
//! let mut binding = params.binding();
//! let logits = mlp.forward(&mut tape, &params, &mut binding, x, Phase::Eval, &mut NoNoise)?;
//! assert_eq!(tape.value(logits).shape(), &[2, 3]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batchnorm;
pub mod checkpoint;
mod conv;
mod hooks;
mod linear;
mod metrics;
mod mlp;
mod optim;
mod params;
mod resnet;
mod schedule;
mod vgg;

pub use batchnorm::BatchNorm;
pub use checkpoint::{load_params, save_params, Checkpoint, CheckpointError};
pub use conv::Conv2d;
pub use hooks::{GuardedHook, MvmNoiseHook, NoNoise};
pub use linear::Linear;
pub use metrics::{accuracy, confusion_matrix};
pub use mlp::{Mlp, MlpConfig};
pub use optim::{Adam, Optimizer, Sgd};
pub use params::{Binding, ParamId, Params};
pub use resnet::{ResNet, ResNetConfig};
pub use schedule::StepLr;
pub use vgg::{Vgg, VggConfig};

/// Forward-pass phase: training (batch statistics, STE quantizers active)
/// or evaluation (running statistics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Training mode.
    Train,
    /// Inference mode.
    Eval,
}

/// Convenience alias matching [`membit_tensor::Result`].
pub type Result<T> = std::result::Result<T, membit_tensor::TensorError>;
