//! Fully-connected layer with optional binary weights.

use membit_autograd::{Tape, VarId};
use membit_tensor::{Rng, Tensor};

use crate::params::{Binding, ParamId, Params};
use crate::Result;

/// A fully-connected layer `y = x·Wᵀ (+ b)`.
///
/// Weights are stored `[out, in]`. With `binary = true` the weights pass
/// through a straight-through `sign` each forward, as in the crossbar
/// mapping of the paper's BWNN.
#[derive(Debug, Clone)]
pub struct Linear {
    weight: ParamId,
    bias: Option<ParamId>,
    in_features: usize,
    out_features: usize,
    binary: bool,
}

impl Linear {
    /// Creates the layer, registering `{name}.weight` (and `{name}.bias`
    /// when `bias` is set) with Kaiming-scaled init.
    pub fn new(
        name: &str,
        in_features: usize,
        out_features: usize,
        bias: bool,
        binary: bool,
        params: &mut Params,
        rng: &mut Rng,
    ) -> Self {
        let w = rng.kaiming_tensor(&[out_features, in_features], in_features);
        let weight = params.register(format!("{name}.weight"), w);
        let bias = bias.then(|| params.register(format!("{name}.bias"), Tensor::zeros(&[out_features])));
        Self {
            weight,
            bias,
            in_features,
            out_features,
            binary,
        }
    }

    /// Handle of the weight matrix.
    pub fn weight(&self) -> ParamId {
        self.weight
    }

    /// Handle of the bias vector, if any.
    pub fn bias(&self) -> Option<ParamId> {
        self.bias
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Whether forward binarizes the weights.
    pub fn is_binary(&self) -> bool {
        self.binary
    }

    /// The effective (deployed) weight matrix: ±1 if binary.
    pub fn deployed_weight(&self, params: &Params) -> Tensor {
        let w = params.get(self.weight);
        if self.binary {
            w.map(|v| if v >= 0.0 { 1.0 } else { -1.0 })
        } else {
            w.clone()
        }
    }

    /// Runs the layer on `x` (`[N, in]`).
    ///
    /// # Errors
    ///
    /// Propagates shape errors (wrong feature count).
    pub fn forward(
        &self,
        tape: &mut Tape,
        params: &Params,
        binding: &mut Binding,
        x: VarId,
    ) -> Result<VarId> {
        let mut w = params.bind(tape, binding, self.weight);
        if self.binary {
            w = tape.sign_ste(w, 1.0);
        }
        let y = tape.matmul_transposed(x, w)?;
        match self.bias {
            Some(b) => {
                let bv = params.bind(tape, binding, b);
                tape.add(y, bv)
            }
            None => Ok(y),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shapes_and_bias() {
        let mut params = Params::new();
        let mut rng = Rng::from_seed(0);
        let lin = Linear::new("fc", 4, 3, true, false, &mut params, &mut rng);
        assert_eq!(lin.in_features(), 4);
        assert_eq!(lin.out_features(), 3);
        assert!(lin.bias().is_some());
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::ones(&[5, 4]));
        let mut binding = params.binding();
        let y = lin.forward(&mut tape, &params, &mut binding, x).unwrap();
        assert_eq!(tape.value(y).shape(), &[5, 3]);
    }

    #[test]
    fn forward_matches_manual_matmul() {
        let mut params = Params::new();
        let mut rng = Rng::from_seed(0);
        let lin = Linear::new("fc", 2, 2, false, false, &mut params, &mut rng);
        // overwrite with known weights
        params.assign("fc.weight", Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap());
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::from_vec(vec![1.0, 1.0], &[1, 2]).unwrap());
        let mut binding = params.binding();
        let y = lin.forward(&mut tape, &params, &mut binding, x).unwrap();
        // y = x·Wᵀ = [1+2, 3+4]
        assert_eq!(tape.value(y).as_slice(), &[3.0, 7.0]);
    }

    #[test]
    fn binary_deployed_weight() {
        let mut params = Params::new();
        let mut rng = Rng::from_seed(0);
        let lin = Linear::new("fc", 8, 8, false, true, &mut params, &mut rng);
        let dep = lin.deployed_weight(&params);
        assert!(dep.as_slice().iter().all(|&v| v.abs() == 1.0));
        assert!(lin.is_binary());
    }

    #[test]
    fn wrong_input_features_error() {
        let mut params = Params::new();
        let mut rng = Rng::from_seed(0);
        let lin = Linear::new("fc", 4, 3, false, false, &mut params, &mut rng);
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::ones(&[5, 7]));
        let mut binding = params.binding();
        assert!(lin.forward(&mut tape, &params, &mut binding, x).is_err());
    }
}
