//! Learning-rate schedules.

use crate::optim::Optimizer;

/// Step decay: multiplies the base LR by `factor` at each listed epoch
/// milestone — the paper uses decay ×0.1 at 50 %, 70 % and 90 % of
/// training.
#[derive(Debug, Clone, PartialEq)]
pub struct StepLr {
    base_lr: f32,
    factor: f32,
    milestones: Vec<usize>,
}

impl StepLr {
    /// Creates a schedule with explicit epoch milestones.
    pub fn new(base_lr: f32, factor: f32, milestones: Vec<usize>) -> Self {
        Self {
            base_lr,
            factor,
            milestones,
        }
    }

    /// The paper's schedule: decay ×0.1 at 50 %, 70 % and 90 % of
    /// `total_epochs`.
    pub fn paper(base_lr: f32, total_epochs: usize) -> Self {
        Self::new(
            base_lr,
            0.1,
            vec![
                total_epochs * 50 / 100,
                total_epochs * 70 / 100,
                total_epochs * 90 / 100,
            ],
        )
    }

    /// Learning rate for `epoch` (0-based).
    pub fn lr_at(&self, epoch: usize) -> f32 {
        let passed = self.milestones.iter().filter(|&&m| epoch >= m).count();
        self.base_lr * self.factor.powi(passed as i32)
    }

    /// Applies the schedule to an optimizer for the given epoch.
    pub fn apply(&self, opt: &mut dyn Optimizer, epoch: usize) {
        opt.set_lr(self.lr_at(epoch));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Sgd;

    #[test]
    fn paper_schedule_milestones() {
        let s = StepLr::paper(1e-3, 60);
        assert_eq!(s.lr_at(0), 1e-3);
        assert_eq!(s.lr_at(29), 1e-3);
        assert!((s.lr_at(30) - 1e-4).abs() < 1e-10);
        assert!((s.lr_at(42) - 1e-5).abs() < 1e-11);
        assert!((s.lr_at(54) - 1e-6).abs() < 1e-12);
        assert!((s.lr_at(59) - 1e-6).abs() < 1e-12);
    }

    #[test]
    fn apply_updates_optimizer() {
        let s = StepLr::new(0.1, 0.5, vec![2]);
        let mut opt = Sgd::new(0.1, 0.0, 0.0);
        s.apply(&mut opt, 5);
        assert!((opt.lr() - 0.05).abs() < 1e-8);
    }

    #[test]
    fn empty_milestones_is_constant() {
        let s = StepLr::new(0.3, 0.1, vec![]);
        assert_eq!(s.lr_at(1000), 0.3);
    }
}
