//! Central parameter store and per-forward tape bindings.

use membit_autograd::{Tape, VarId};
use membit_tensor::Tensor;

/// Handle to a parameter registered in a [`Params`] store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(usize);

/// Owns every trainable tensor of a model.
///
/// Layers hold [`ParamId`]s; each forward pass *binds* the parameters it
/// uses onto the tape (creating leaves) and records the mapping in a
/// [`Binding`], which optimizers later use to pull gradients.
#[derive(Debug, Default, Clone)]
pub struct Params {
    names: Vec<String>,
    tensors: Vec<Tensor>,
}

impl Params {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a named parameter, returning its handle.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered — parameter names are the
    /// checkpoint keys and must be unique.
    pub fn register(&mut self, name: impl Into<String>, tensor: Tensor) -> ParamId {
        let name = name.into();
        assert!(
            !self.names.contains(&name),
            "duplicate parameter name {name:?}"
        );
        self.names.push(name);
        self.tensors.push(tensor);
        ParamId(self.tensors.len() - 1)
    }

    /// Number of registered parameters.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.tensors.len()
    }

    /// Total number of scalar weights.
    pub fn num_scalars(&self) -> usize {
        self.tensors.iter().map(Tensor::len).sum()
    }

    /// Borrow a parameter tensor.
    pub fn get(&self, id: ParamId) -> &Tensor {
        &self.tensors[id.0]
    }

    /// Mutably borrow a parameter tensor.
    pub fn get_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.tensors[id.0]
    }

    /// Borrow a parameter by its flat index (as yielded by
    /// [`Binding::bound`]).
    pub fn get_by_index(&self, index: usize) -> &Tensor {
        &self.tensors[index]
    }

    /// Mutably borrow a parameter by its flat index.
    pub fn get_by_index_mut(&mut self, index: usize) -> &mut Tensor {
        &mut self.tensors[index]
    }

    /// The registered name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Iterates over `(name, tensor)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Tensor)> {
        self.names.iter().map(String::as_str).zip(&self.tensors)
    }

    /// Looks a parameter up by name.
    pub fn find(&self, name: &str) -> Option<ParamId> {
        self.names.iter().position(|n| n == name).map(ParamId)
    }

    /// Overwrites a parameter by name (used when loading checkpoints).
    ///
    /// Returns `false` if no such name exists or shapes differ.
    pub fn assign(&mut self, name: &str, tensor: Tensor) -> bool {
        match self.find(name) {
            Some(id) if self.tensors[id.0].shape() == tensor.shape() => {
                self.tensors[id.0] = tensor;
                true
            }
            _ => false,
        }
    }

    /// Creates an empty binding sized for this store.
    pub fn binding(&self) -> Binding {
        Binding {
            vars: vec![None; self.tensors.len()],
            trainable: true,
        }
    }

    /// Creates a binding that registers every parameter as frozen
    /// (`requires_grad = false`) — the GBO search phase configuration.
    pub fn frozen_binding(&self) -> Binding {
        Binding {
            vars: vec![None; self.tensors.len()],
            trainable: false,
        }
    }

    /// Binds parameter `id` onto `tape` (once per binding; repeat calls
    /// return the cached handle).
    pub fn bind(&self, tape: &mut Tape, binding: &mut Binding, id: ParamId) -> VarId {
        if let Some(v) = binding.vars[id.0] {
            return v;
        }
        let v = tape.leaf(self.tensors[id.0].clone(), binding.trainable);
        binding.vars[id.0] = Some(v);
        v
    }
}

/// Records which tape leaf each parameter was bound to during one forward
/// pass.
#[derive(Debug, Clone)]
pub struct Binding {
    vars: Vec<Option<VarId>>,
    trainable: bool,
}

impl Binding {
    /// The tape handle of `id`, if it was bound this pass.
    pub fn var(&self, id: ParamId) -> Option<VarId> {
        self.vars[id.0]
    }

    /// Whether leaves are created with `requires_grad`.
    pub fn is_trainable(&self) -> bool {
        self.trainable
    }

    /// Iterates `(flat parameter index, VarId)` for every bound parameter.
    pub fn bound(&self) -> impl Iterator<Item = (usize, VarId)> + '_ {
        self.vars
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.map(|v| (i, v)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut p = Params::new();
        let id = p.register("conv1.w", Tensor::zeros(&[2, 3]));
        assert_eq!(p.len(), 1);
        assert_eq!(p.num_scalars(), 6);
        assert_eq!(p.name(id), "conv1.w");
        assert_eq!(p.find("conv1.w"), Some(id));
        assert_eq!(p.find("nope"), None);
    }

    #[test]
    #[should_panic(expected = "duplicate parameter name")]
    fn duplicate_name_panics() {
        let mut p = Params::new();
        p.register("w", Tensor::zeros(&[1]));
        p.register("w", Tensor::zeros(&[1]));
    }

    #[test]
    fn assign_checks_shape() {
        let mut p = Params::new();
        p.register("w", Tensor::zeros(&[2]));
        assert!(p.assign("w", Tensor::ones(&[2])));
        assert_eq!(p.get(p.find("w").unwrap()).as_slice(), &[1.0, 1.0]);
        assert!(!p.assign("w", Tensor::ones(&[3])));
        assert!(!p.assign("missing", Tensor::ones(&[2])));
    }

    #[test]
    fn bind_caches_and_respects_trainability() {
        let mut p = Params::new();
        let id = p.register("w", Tensor::ones(&[2]));
        let mut tape = Tape::new();

        let mut b = p.binding();
        let v1 = p.bind(&mut tape, &mut b, id);
        let v2 = p.bind(&mut tape, &mut b, id);
        assert_eq!(v1, v2);
        assert!(tape.requires_grad(v1));

        let mut frozen = p.frozen_binding();
        let vf = p.bind(&mut tape, &mut frozen, id);
        assert!(!tape.requires_grad(vf));
        assert!(!frozen.is_trainable());
    }

    #[test]
    fn bound_iterates_only_bound() {
        let mut p = Params::new();
        let a = p.register("a", Tensor::ones(&[1]));
        let _b = p.register("b", Tensor::ones(&[1]));
        let mut tape = Tape::new();
        let mut binding = p.binding();
        p.bind(&mut tape, &mut binding, a);
        let bound: Vec<_> = binding.bound().collect();
        assert_eq!(bound.len(), 1);
        assert_eq!(bound[0].0, 0);
    }
}
