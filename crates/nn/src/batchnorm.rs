//! Batch normalization layer with running statistics.

use membit_autograd::{Tape, VarId};
use membit_tensor::Tensor;

use crate::params::{Binding, ParamId, Params};
use crate::{Phase, Result};

/// Channel batch normalization for `[N, C]` or `[N, C, H, W]` tensors.
///
/// Training mode normalizes with batch statistics and folds them into
/// exponential running averages; evaluation mode uses the running
/// statistics (the configuration frozen during the GBO search).
#[derive(Debug, Clone)]
pub struct BatchNorm {
    gamma: ParamId,
    beta: ParamId,
    running_mean: Tensor,
    running_var: Tensor,
    momentum: f32,
    eps: f32,
    channels: usize,
}

impl BatchNorm {
    /// Creates the layer with γ=1, β=0, running stats (0, 1).
    pub fn new(name: &str, channels: usize, params: &mut Params) -> Self {
        let gamma = params.register(format!("{name}.gamma"), Tensor::ones(&[channels]));
        let beta = params.register(format!("{name}.beta"), Tensor::zeros(&[channels]));
        Self {
            gamma,
            beta,
            running_mean: Tensor::zeros(&[channels]),
            running_var: Tensor::ones(&[channels]),
            momentum: 0.1,
            eps: 1e-5,
            channels,
        }
    }

    /// Channel count.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Handles of the affine parameters `(γ, β)`.
    pub fn affine_params(&self) -> (ParamId, ParamId) {
        (self.gamma, self.beta)
    }

    /// Current running mean (for checkpointing).
    pub fn running_mean(&self) -> &Tensor {
        &self.running_mean
    }

    /// Current running variance (for checkpointing).
    pub fn running_var(&self) -> &Tensor {
        &self.running_var
    }

    /// Overwrites the running statistics (checkpoint restore).
    ///
    /// # Panics
    ///
    /// Panics on a channel-count mismatch.
    pub fn set_running_stats(&mut self, mean: Tensor, var: Tensor) {
        assert_eq!(mean.shape(), [self.channels]);
        assert_eq!(var.shape(), [self.channels]);
        self.running_mean = mean;
        self.running_var = var;
    }

    /// Folds the evaluation-mode transform into per-channel `(scale,
    /// shift)` vectors: `y = x·s + t` with `s = γ/√(σ²+ε)`,
    /// `t = β − μ·s`. Used when deploying the network onto hardware
    /// (digital peripheral logic next to the crossbar).
    pub fn fold_eval(&self, params: &Params) -> (Tensor, Tensor) {
        let gamma = params.get(self.gamma);
        let beta = params.get(self.beta);
        let eps = self.eps;
        let scale = gamma
            .zip_map(&self.running_var, |g, v| g / (v + eps).sqrt())
            .expect("gamma/var same shape");
        let shift = beta
            .zip_map(
                &self.running_mean.zip_map(&scale, |m, s| m * s).expect("same shape"),
                |b, ms| b - ms,
            )
            .expect("beta same shape");
        (scale, shift)
    }

    /// Runs the layer. Training mode mutates the running statistics.
    ///
    /// # Errors
    ///
    /// Propagates shape errors (channel mismatch, rank < 2).
    pub fn forward(
        &mut self,
        tape: &mut Tape,
        params: &Params,
        binding: &mut Binding,
        x: VarId,
        phase: Phase,
    ) -> Result<VarId> {
        let gamma = params.bind(tape, binding, self.gamma);
        let beta = params.bind(tape, binding, self.beta);
        match phase {
            Phase::Train => {
                let (y, mean, var) = tape.batch_norm(x, gamma, beta, self.eps)?;
                let m = self.momentum;
                self.running_mean = self
                    .running_mean
                    .mul_scalar(1.0 - m)
                    .add(&mean.mul_scalar(m))?;
                self.running_var = self
                    .running_var
                    .mul_scalar(1.0 - m)
                    .add(&var.mul_scalar(m))?;
                Ok(y)
            }
            Phase::Eval => tape.batch_norm_inference(
                x,
                gamma,
                beta,
                &self.running_mean,
                &self.running_var,
                self.eps,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn input() -> Tensor {
        Tensor::from_vec(vec![1.0, 5.0, 3.0, 5.0], &[2, 2]).unwrap()
    }

    #[test]
    fn train_normalizes_and_updates_running_stats() {
        let mut params = Params::new();
        let mut bn = BatchNorm::new("bn", 2, &mut params);
        let mut tape = Tape::new();
        let x = tape.constant(input());
        let mut binding = params.binding();
        let y = bn
            .forward(&mut tape, &params, &mut binding, x, Phase::Train)
            .unwrap();
        // batch means: [2, 5]; running = 0.9·0 + 0.1·batch
        assert!(bn
            .running_mean()
            .allclose(&Tensor::from_vec(vec![0.2, 0.5], &[2]).unwrap(), 1e-6));
        // channel 0 normalized: (1-2)/1 = -1, (3-2)/1 = 1
        let out = tape.value(y);
        assert!((out.get(&[0, 0]) + 1.0).abs() < 1e-2);
        assert!((out.get(&[1, 0]) - 1.0).abs() < 1e-2);
    }

    #[test]
    fn eval_uses_running_stats() {
        let mut params = Params::new();
        let mut bn = BatchNorm::new("bn", 1, &mut params);
        bn.set_running_stats(
            Tensor::from_vec(vec![2.0], &[1]).unwrap(),
            Tensor::from_vec(vec![4.0], &[1]).unwrap(),
        );
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::from_vec(vec![6.0], &[1, 1]).unwrap());
        let mut binding = params.binding();
        let y = bn
            .forward(&mut tape, &params, &mut binding, x, Phase::Eval)
            .unwrap();
        // (6−2)/2 = 2
        assert!((tape.value(y).item() - 2.0).abs() < 1e-3);
    }

    #[test]
    fn eval_does_not_touch_running_stats() {
        let mut params = Params::new();
        let mut bn = BatchNorm::new("bn", 2, &mut params);
        let before = bn.running_mean().clone();
        let mut tape = Tape::new();
        let x = tape.constant(input());
        let mut binding = params.binding();
        bn.forward(&mut tape, &params, &mut binding, x, Phase::Eval)
            .unwrap();
        assert_eq!(bn.running_mean(), &before);
    }

    #[test]
    #[should_panic]
    fn set_running_stats_checks_channels() {
        let mut params = Params::new();
        let mut bn = BatchNorm::new("bn", 2, &mut params);
        bn.set_running_stats(Tensor::zeros(&[3]), Tensor::ones(&[3]));
    }

    #[test]
    fn fold_eval_matches_forward() {
        let mut params = Params::new();
        let mut bn = BatchNorm::new("bn", 1, &mut params);
        bn.set_running_stats(
            Tensor::from_vec(vec![2.0], &[1]).unwrap(),
            Tensor::from_vec(vec![4.0], &[1]).unwrap(),
        );
        params.assign("bn.gamma", Tensor::from_vec(vec![3.0], &[1]).unwrap());
        params.assign("bn.beta", Tensor::from_vec(vec![0.5], &[1]).unwrap());
        let (scale, shift) = bn.fold_eval(&params);
        let x = 6.0f32;
        let folded = x * scale.item() + shift.item();
        // direct: (6−2)/2·3 + 0.5 = 6.5
        assert!((folded - 6.5).abs() < 1e-3);
    }

    #[test]
    fn works_on_nchw() {
        let mut params = Params::new();
        let mut bn = BatchNorm::new("bn", 3, &mut params);
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::from_fn(&[2, 3, 4, 4], |i| i as f32));
        let mut binding = params.binding();
        let y = bn
            .forward(&mut tape, &params, &mut binding, x, Phase::Train)
            .unwrap();
        let out = tape.value(y);
        assert_eq!(out.shape(), &[2, 3, 4, 4]);
        // each channel of the output is zero-mean
        let means = out.mean_channels().unwrap();
        for &m in means.as_slice() {
            assert!(m.abs() < 1e-3);
        }
    }
}
