//! The MVM noise-hook extension point.

use membit_autograd::{Tape, VarId};

use crate::Result;

/// Intercepts the raw matrix-vector-multiply output of every layer that
/// would execute on a memristive crossbar.
///
/// `layer` is the *crossbar layer index* (0-based over the layers whose
/// input activations are pulse-encoded — for the paper's VGG9 these are
/// the 7 entries of Table I). Implementations add crossbar noise
/// ([`Eq. 1`]: plain Gaussian; Eq. 5: the GBO α-mixture) or pass the value
/// through unchanged.
///
/// [`Eq. 1`]: https://doi.org/10.23919/DATE54114.2022
pub trait MvmNoiseHook {
    /// Transforms the MVM output `mvm_out` of crossbar layer `layer`.
    ///
    /// # Errors
    ///
    /// Implementations propagate tape/tensor errors.
    fn apply(&mut self, tape: &mut Tape, layer: usize, mvm_out: VarId) -> Result<VarId>;

    /// Transforms the *input activations* of crossbar layer `layer` before
    /// its MVM — the point where the pulse encoding's representation
    /// limits bite. The default is the identity; the PLA hooks override it
    /// to snap activations onto the `q + 1` levels a `q`-pulse thermometer
    /// code can carry (paper §III-B).
    ///
    /// # Errors
    ///
    /// Implementations propagate tape/tensor errors.
    fn encode(&mut self, _tape: &mut Tape, _layer: usize, input: VarId) -> Result<VarId> {
        Ok(input)
    }

    /// The hook's RNG stream, if it draws randomness — lets checkpointing
    /// freeze and restore the stream so an interrupted noise-injected run
    /// resumes bit-for-bit. Deterministic hooks return `None`.
    fn state_rng(&self) -> Option<&membit_tensor::Rng> {
        None
    }

    /// Mutable access to the hook's RNG stream (see
    /// [`state_rng`](MvmNoiseHook::state_rng)).
    fn state_rng_mut(&mut self) -> Option<&mut membit_tensor::Rng> {
        None
    }
}

/// The identity hook: an ideal, noise-free crossbar.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoNoise;

impl MvmNoiseHook for NoNoise {
    fn apply(&mut self, _tape: &mut Tape, _layer: usize, mvm_out: VarId) -> Result<VarId> {
        Ok(mvm_out)
    }
}

/// Functional-model counterpart of the device-level ABFT guard: wraps
/// any noise hook and sum-checks each noisy MVM output against the clean
/// value — the same invariant the crossbar's checksum column digitizes.
/// A non-finite output, or a per-sample output-sum deviation beyond
/// `tolerance`, demotes that layer call to the clean (digital) value and
/// counts a fallback, mirroring the engine ladder's final stage.
///
/// This is a *training/evaluation-loop* guard: it protects functional
/// noise-model runs (where the clean value is free) rather than device
/// runs, so there is no retry ladder — the clean value is already the
/// best available answer.
#[derive(Debug, Clone)]
pub struct GuardedHook<H> {
    inner: H,
    tolerance: f32,
    checks: u64,
    fallbacks: u64,
}

impl<H> GuardedHook<H> {
    /// Guards `inner` with a per-sample output-sum tolerance.
    pub fn new(inner: H, tolerance: f32) -> Self {
        Self {
            inner,
            tolerance,
            checks: 0,
            fallbacks: 0,
        }
    }

    /// Sum-checks performed (one per sample per guarded MVM).
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// Layer calls demoted to the clean value.
    pub fn fallbacks(&self) -> u64 {
        self.fallbacks
    }

    /// The wrapped hook.
    pub fn inner(&self) -> &H {
        &self.inner
    }
}

impl<H: MvmNoiseHook> MvmNoiseHook for GuardedHook<H> {
    fn apply(&mut self, tape: &mut Tape, layer: usize, mvm_out: VarId) -> Result<VarId> {
        let noisy = self.inner.apply(tape, layer, mvm_out)?;
        if noisy == mvm_out {
            return Ok(noisy); // identity inner hook: nothing to check
        }
        let clean = tape.value(mvm_out);
        let dirty = tape.value(noisy);
        // one sum-check per sample row (a 1-D output is one sample)
        let cols = *clean.shape().last().unwrap_or(&1);
        let rows = clean.as_slice().len() / cols.max(1);
        let mut violated = false;
        for r in 0..rows {
            let (a, b) = (
                &clean.as_slice()[r * cols..(r + 1) * cols],
                &dirty.as_slice()[r * cols..(r + 1) * cols],
            );
            let delta: f32 =
                b.iter().sum::<f32>() - a.iter().sum::<f32>();
            if !delta.is_finite() || delta.abs() > self.tolerance {
                violated = true;
            }
        }
        self.checks += rows as u64;
        if violated {
            self.fallbacks += 1;
            return Ok(mvm_out);
        }
        Ok(noisy)
    }

    fn encode(&mut self, tape: &mut Tape, layer: usize, input: VarId) -> Result<VarId> {
        self.inner.encode(tape, layer, input)
    }

    fn state_rng(&self) -> Option<&membit_tensor::Rng> {
        self.inner.state_rng()
    }

    fn state_rng_mut(&mut self) -> Option<&mut membit_tensor::Rng> {
        self.inner.state_rng_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use membit_tensor::Tensor;

    #[test]
    fn no_noise_is_identity() {
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::ones(&[2]));
        let y = NoNoise.apply(&mut tape, 0, x).unwrap();
        assert_eq!(x, y);
    }

    #[test]
    fn hooks_are_object_safe() {
        fn take(_h: &mut dyn MvmNoiseHook) {}
        take(&mut NoNoise);
    }

    /// Adds a constant `bias` to every output element — a controllable
    /// stand-in for a noise hook.
    struct Offset(f32);

    impl MvmNoiseHook for Offset {
        fn apply(&mut self, tape: &mut Tape, _layer: usize, mvm_out: VarId) -> Result<VarId> {
            let b = self.0;
            let shifted = tape.value(mvm_out).map(|v| v + b);
            Ok(tape.constant(shifted))
        }
    }

    #[test]
    fn guarded_hook_passes_in_tolerance_noise_through() {
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::ones(&[2, 3]));
        // Σ-shift per sample = 3·0.01 = 0.03, under the 0.5 budget
        let mut hook = GuardedHook::new(Offset(0.01), 0.5);
        let y = hook.apply(&mut tape, 0, x).unwrap();
        assert_ne!(x, y, "in-budget noise must flow through");
        assert_eq!(hook.checks(), 2);
        assert_eq!(hook.fallbacks(), 0);
    }

    #[test]
    fn guarded_hook_demotes_out_of_budget_output_to_clean() {
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::ones(&[2, 3]));
        // Σ-shift per sample = 3·10 = 30 ≫ 0.5
        let mut hook = GuardedHook::new(Offset(10.0), 0.5);
        let y = hook.apply(&mut tape, 0, x).unwrap();
        assert_eq!(x, y, "violating output must fall back to the clean value");
        assert_eq!(hook.fallbacks(), 1);
    }

    #[test]
    fn guarded_hook_demotes_non_finite_output() {
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::ones(&[4]));
        let mut hook = GuardedHook::new(Offset(f32::NAN), f32::MAX);
        let y = hook.apply(&mut tape, 0, x).unwrap();
        assert_eq!(x, y);
        assert_eq!(hook.checks(), 1, "1-D output is a single sample");
        assert_eq!(hook.fallbacks(), 1);
    }

    #[test]
    fn guarded_hook_skips_identity_inner() {
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::ones(&[2]));
        let mut hook = GuardedHook::new(NoNoise, 0.0);
        let y = hook.apply(&mut tape, 0, x).unwrap();
        assert_eq!(x, y);
        assert_eq!(hook.checks(), 0, "identity hooks are not checked");
    }
}
