//! The MVM noise-hook extension point.

use membit_autograd::{Tape, VarId};

use crate::Result;

/// Intercepts the raw matrix-vector-multiply output of every layer that
/// would execute on a memristive crossbar.
///
/// `layer` is the *crossbar layer index* (0-based over the layers whose
/// input activations are pulse-encoded — for the paper's VGG9 these are
/// the 7 entries of Table I). Implementations add crossbar noise
/// ([`Eq. 1`]: plain Gaussian; Eq. 5: the GBO α-mixture) or pass the value
/// through unchanged.
///
/// [`Eq. 1`]: https://doi.org/10.23919/DATE54114.2022
pub trait MvmNoiseHook {
    /// Transforms the MVM output `mvm_out` of crossbar layer `layer`.
    ///
    /// # Errors
    ///
    /// Implementations propagate tape/tensor errors.
    fn apply(&mut self, tape: &mut Tape, layer: usize, mvm_out: VarId) -> Result<VarId>;

    /// Transforms the *input activations* of crossbar layer `layer` before
    /// its MVM — the point where the pulse encoding's representation
    /// limits bite. The default is the identity; the PLA hooks override it
    /// to snap activations onto the `q + 1` levels a `q`-pulse thermometer
    /// code can carry (paper §III-B).
    ///
    /// # Errors
    ///
    /// Implementations propagate tape/tensor errors.
    fn encode(&mut self, _tape: &mut Tape, _layer: usize, input: VarId) -> Result<VarId> {
        Ok(input)
    }

    /// The hook's RNG stream, if it draws randomness — lets checkpointing
    /// freeze and restore the stream so an interrupted noise-injected run
    /// resumes bit-for-bit. Deterministic hooks return `None`.
    fn state_rng(&self) -> Option<&membit_tensor::Rng> {
        None
    }

    /// Mutable access to the hook's RNG stream (see
    /// [`state_rng`](MvmNoiseHook::state_rng)).
    fn state_rng_mut(&mut self) -> Option<&mut membit_tensor::Rng> {
        None
    }
}

/// The identity hook: an ideal, noise-free crossbar.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoNoise;

impl MvmNoiseHook for NoNoise {
    fn apply(&mut self, _tape: &mut Tape, _layer: usize, mvm_out: VarId) -> Result<VarId> {
        Ok(mvm_out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use membit_tensor::Tensor;

    #[test]
    fn no_noise_is_identity() {
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::ones(&[2]));
        let y = NoNoise.apply(&mut tape, 0, x).unwrap();
        assert_eq!(x, y);
    }

    #[test]
    fn hooks_are_object_safe() {
        fn take(_h: &mut dyn MvmNoiseHook) {}
        take(&mut NoNoise);
    }
}
