//! Classification metrics.

use membit_tensor::Tensor;

use crate::Result;

/// Fraction of rows of `logits` (`[N, K]`) whose argmax equals the label.
///
/// # Errors
///
/// Propagates a rank error for non-matrix logits.
///
/// # Panics
///
/// Panics if `labels.len()` differs from the batch size.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> Result<f32> {
    let preds = logits.argmax_rows()?;
    assert_eq!(preds.len(), labels.len(), "label count mismatch");
    if labels.is_empty() {
        return Ok(0.0);
    }
    let correct = preds
        .iter()
        .zip(labels)
        .filter(|(p, y)| p == y)
        .count();
    Ok(correct as f32 / labels.len() as f32)
}

/// `K×K` confusion matrix (`rows = true class`, `cols = predicted`).
///
/// # Errors
///
/// Propagates a rank error for non-matrix logits.
///
/// # Panics
///
/// Panics on a label-count mismatch or an out-of-range label.
pub fn confusion_matrix(logits: &Tensor, labels: &[usize], num_classes: usize) -> Result<Vec<Vec<usize>>> {
    let preds = logits.argmax_rows()?;
    assert_eq!(preds.len(), labels.len(), "label count mismatch");
    let mut m = vec![vec![0usize; num_classes]; num_classes];
    for (&p, &y) in preds.iter().zip(labels) {
        assert!(y < num_classes, "label {y} out of range");
        if p < num_classes {
            m[y][p] += 1;
        }
    }
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_matches() {
        let logits = Tensor::from_vec(
            vec![0.9, 0.1, 0.2, 0.8, 0.6, 0.4],
            &[3, 2],
        )
        .unwrap();
        assert_eq!(accuracy(&logits, &[0, 1, 1]).unwrap(), 2.0 / 3.0);
        assert_eq!(accuracy(&logits, &[0, 1, 0]).unwrap(), 1.0);
    }

    #[test]
    fn empty_batch_is_zero() {
        let logits = Tensor::zeros(&[0, 3]);
        assert_eq!(accuracy(&logits, &[]).unwrap(), 0.0);
    }

    #[test]
    fn confusion_matrix_diagonal() {
        let logits = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]).unwrap();
        let m = confusion_matrix(&logits, &[0, 1], 2).unwrap();
        assert_eq!(m, vec![vec![1, 0], vec![0, 1]]);
    }

    #[test]
    #[should_panic(expected = "label count mismatch")]
    fn mismatched_labels_panic() {
        let logits = Tensor::zeros(&[2, 2]);
        let _ = accuracy(&logits, &[0]);
    }
}
