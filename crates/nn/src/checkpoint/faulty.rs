//! Deterministic checkpoint fault injection for tests.
//!
//! The recovery paths in [`super`] (CRC verification, bounded loads,
//! atomic renames) only earn their keep if something exercises them.
//! This module damages checkpoint files in the precise ways real systems
//! do — power loss mid-write, a flipped bit on flash, a full disk — so
//! the test suite can prove each failure is *detected*, never silently
//! absorbed into a model's weights.
//!
//! Everything here is deterministic: faults are addressed by byte offset
//! or write-count, not sampled, so a failing case replays exactly.

use std::fs::File;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use super::{tmp_sibling, CheckpointError, Checkpoint, CkptResult};

/// Flips bit `bit` (0–7) of the byte at `offset` in the file at `path`.
///
/// # Errors
///
/// Returns an error if the file cannot be read/written or `offset` is out
/// of range.
pub fn flip_bit(path: impl AsRef<Path>, offset: usize, bit: u8) -> io::Result<()> {
    let path = path.as_ref();
    let mut bytes = std::fs::read(path)?;
    let byte = bytes.get_mut(offset).ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("offset {offset} beyond end of file"),
        )
    })?;
    *byte ^= 1 << (bit % 8);
    std::fs::write(path, bytes)
}

/// Truncates the file at `path` to its first `keep` bytes (no-op if it is
/// already shorter) — the shape a crash mid-append leaves behind.
///
/// # Errors
///
/// Returns an error if the file cannot be opened or truncated.
pub fn truncate(path: impl AsRef<Path>, keep: u64) -> io::Result<()> {
    let file = std::fs::OpenOptions::new().write(true).open(path)?;
    let len = file.metadata()?.len();
    if keep < len {
        file.set_len(keep)?;
    }
    Ok(())
}

/// Simulates a crash (power loss / SIGKILL) during [`Checkpoint::save`]:
/// performs the same serialization into the same sibling temporary file,
/// then *stops* — no fsync, no rename. Returns the temp path so tests can
/// assert on the litter.
///
/// The invariant under test: the target at `path` is untouched — an old
/// complete checkpoint still loads, a missing one is still missing.
///
/// # Errors
///
/// Returns an error if the temporary file cannot be written.
pub fn save_crashing_before_rename(
    ckpt: &Checkpoint,
    path: impl AsRef<Path>,
) -> CkptResult<PathBuf> {
    let path = path.as_ref();
    let tmp = tmp_sibling(path);
    let mut file = File::create(&tmp)?;
    let mut buf = io::BufWriter::new(&mut file);
    ckpt.write_to(&mut buf)?;
    buf.flush()?;
    Ok(tmp)
}

/// A writer that fails with the given error kind after passing through
/// `ok_bytes` bytes — a deterministic stand-in for a disk filling up or a
/// flaky device mid-write.
pub struct FailingWriter<W> {
    inner: W,
    ok_bytes: usize,
    written: usize,
    kind: io::ErrorKind,
}

impl<W: Write> FailingWriter<W> {
    /// Wraps `inner`, allowing `ok_bytes` through before every write
    /// errors with `kind`.
    pub fn new(inner: W, ok_bytes: usize, kind: io::ErrorKind) -> Self {
        Self {
            inner,
            ok_bytes,
            written: 0,
            kind,
        }
    }
}

impl<W: Write> Write for FailingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.written >= self.ok_bytes {
            return Err(io::Error::new(self.kind, "injected write fault"));
        }
        let allowed = (self.ok_bytes - self.written).min(buf.len());
        let n = self.inner.write(&buf[..allowed])?;
        self.written += n;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Serializes `ckpt` through a [`FailingWriter`] that errors after
/// `ok_bytes`, returning the typed error the save path surfaces. The
/// target file at `path` must remain untouched; only a temp file may be
/// created (and is removed before returning, mirroring
/// [`Checkpoint::save`]'s cleanup).
///
/// # Errors
///
/// Always returns `Err` when `ok_bytes` is smaller than the serialized
/// size; `Ok(())` means the checkpoint fit under the fault threshold.
pub fn save_with_io_fault(
    ckpt: &Checkpoint,
    path: impl AsRef<Path>,
    ok_bytes: usize,
    kind: io::ErrorKind,
) -> CkptResult<()> {
    let path = path.as_ref();
    let tmp = tmp_sibling(path);
    let result = (|| -> CkptResult<()> {
        let file = File::create(&tmp)?;
        let mut w = FailingWriter::new(file, ok_bytes, kind);
        ckpt.write_to(&mut w)?;
        w.flush()?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    })();
    if result.is_err() {
        std::fs::remove_file(&tmp).ok();
    }
    result
}

/// The serialized `MBCKPT2` byte image of `ckpt` (for offset arithmetic
/// in corruption tests).
///
/// # Errors
///
/// Never fails in practice (writes to a `Vec`); the `Result` mirrors the
/// serializer's signature.
pub fn to_bytes(ckpt: &Checkpoint) -> CkptResult<Vec<u8>> {
    let mut out = Vec::new();
    ckpt.write_to(&mut out)?;
    Ok(out)
}

/// Loads a checkpoint whose bytes are already in memory (round-trip
/// helper for property tests that never touch disk).
///
/// # Errors
///
/// Same contract as [`Checkpoint::load`].
pub fn from_bytes(bytes: &[u8]) -> CkptResult<Checkpoint> {
    // Reuse the file-based loader by staging through a temp file: the
    // loader's bounded reads are driven by real file metadata, which is
    // exactly the code path production takes.
    let path = std::env::temp_dir().join(format!(
        "membit-ckpt-frombytes-{}-{:x}",
        std::process::id(),
        super::crc32(bytes)
    ));
    std::fs::write(&path, bytes).map_err(CheckpointError::from)?;
    let result = Checkpoint::load(&path);
    std::fs::remove_file(&path).ok();
    result
}

/// Reads the file at `path` fully (test convenience).
///
/// # Errors
///
/// Propagates I/O failures.
pub fn read_file(path: impl AsRef<Path>) -> io::Result<Vec<u8>> {
    let mut buf = Vec::new();
    File::open(path)?.read_to_end(&mut buf)?;
    Ok(buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use membit_tensor::Tensor;

    fn sample() -> Checkpoint {
        let mut c = Checkpoint::new();
        c.put_tensor("w", Tensor::from_fn(&[3], |i| i as f32));
        c.put_u64("epoch", 5);
        c
    }

    fn temp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("membit-faulty-{tag}-{}", std::process::id()))
    }

    #[test]
    fn crash_before_rename_preserves_target() {
        let path = temp("crash");
        let mut old = Checkpoint::new();
        old.put_u64("gen", 1);
        old.save(&path).unwrap();
        let tmp = save_crashing_before_rename(&sample(), &path).unwrap();
        assert!(tmp.exists(), "crash should leave the temp file");
        let loaded = Checkpoint::load(&path).unwrap();
        assert_eq!(loaded.get_u64("gen"), Some(1), "target must be untouched");
        std::fs::remove_file(&tmp).ok();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn io_fault_leaves_no_file() {
        let path = temp("iofault");
        std::fs::remove_file(&path).ok();
        let err = save_with_io_fault(&sample(), &path, 10, io::ErrorKind::WriteZero).unwrap_err();
        assert!(matches!(err, CheckpointError::Io(io::ErrorKind::WriteZero, _)));
        assert!(!path.exists(), "failed save must not create the target");
    }

    #[test]
    fn flip_and_truncate_are_detected() {
        let path = temp("flip");
        sample().save(&path).unwrap();
        flip_bit(&path, 20, 3).unwrap();
        assert!(Checkpoint::load(&path).is_err());
        sample().save(&path).unwrap();
        truncate(&path, 15).unwrap();
        assert!(Checkpoint::load(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn byte_roundtrip() {
        let bytes = to_bytes(&sample()).unwrap();
        let loaded = from_bytes(&bytes).unwrap();
        assert_eq!(loaded, sample());
    }
}
