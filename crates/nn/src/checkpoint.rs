//! Minimal binary checkpoint format for parameters and running statistics.
//!
//! Layout (all little-endian): the magic `MBCKPT1\n`, a `u32` entry count,
//! then per entry a length-prefixed UTF-8 name, a `u32` rank, `u64` dims,
//! and the raw `f32` payload. No external dependencies.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use membit_tensor::Tensor;

use crate::params::Params;

const MAGIC: &[u8; 8] = b"MBCKPT1\n";

/// Saves every parameter of `params` plus the `extra` named tensors
/// (typically batch-norm running statistics) to `path`.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn save_params(
    path: impl AsRef<Path>,
    params: &Params,
    extra: &[(String, Tensor)],
) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    let count = params.len() + extra.len();
    w.write_all(&(count as u32).to_le_bytes())?;
    for (name, tensor) in params
        .iter()
        .map(|(n, t)| (n.to_owned(), t))
        .chain(extra.iter().map(|(n, t)| (n.clone(), t)))
    {
        write_entry(&mut w, &name, tensor)?;
    }
    w.flush()
}

fn write_entry(w: &mut impl Write, name: &str, tensor: &Tensor) -> io::Result<()> {
    let bytes = name.as_bytes();
    w.write_all(&(bytes.len() as u32).to_le_bytes())?;
    w.write_all(bytes)?;
    w.write_all(&(tensor.rank() as u32).to_le_bytes())?;
    for &d in tensor.shape() {
        w.write_all(&(d as u64).to_le_bytes())?;
    }
    for &v in tensor.as_slice() {
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

/// Loads every `(name, tensor)` entry from a checkpoint written by
/// [`save_params`].
///
/// # Errors
///
/// Returns [`io::ErrorKind::InvalidData`] for a bad magic or truncated
/// file, or any underlying I/O error.
pub fn load_params(path: impl AsRef<Path>) -> io::Result<Vec<(String, Tensor)>> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a membit checkpoint (bad magic)",
        ));
    }
    let count = read_u32(&mut r)? as usize;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let name_len = read_u32(&mut r)? as usize;
        let mut name_bytes = vec![0u8; name_len];
        r.read_exact(&mut name_bytes)?;
        let name = String::from_utf8(name_bytes)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        let rank = read_u32(&mut r)? as usize;
        let mut shape = Vec::with_capacity(rank);
        for _ in 0..rank {
            let mut b = [0u8; 8];
            r.read_exact(&mut b)?;
            shape.push(u64::from_le_bytes(b) as usize);
        }
        let volume: usize = shape.iter().product();
        let mut data = Vec::with_capacity(volume);
        let mut b = [0u8; 4];
        for _ in 0..volume {
            r.read_exact(&mut b)?;
            data.push(f32::from_le_bytes(b));
        }
        let tensor = Tensor::from_vec(data, &shape)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        out.push((name, tensor));
    }
    Ok(out)
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("membit-ckpt-test-{tag}-{}", std::process::id()))
    }

    #[test]
    fn roundtrip_params_and_extras() {
        let mut params = Params::new();
        params.register("a.weight", Tensor::from_vec(vec![1.0, -2.0, 3.5], &[3]).unwrap());
        params.register("b.weight", Tensor::from_fn(&[2, 2], |i| i as f32));
        let extra = vec![(
            "bn0.running_mean".to_string(),
            Tensor::from_vec(vec![0.25], &[1]).unwrap(),
        )];
        let path = temp_path("roundtrip");
        save_params(&path, &params, &extra).unwrap();
        let loaded = load_params(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.len(), 3);
        assert_eq!(loaded[0].0, "a.weight");
        assert_eq!(loaded[0].1.as_slice(), &[1.0, -2.0, 3.5]);
        assert_eq!(loaded[1].1.shape(), &[2, 2]);
        assert_eq!(loaded[2].0, "bn0.running_mean");
    }

    #[test]
    fn bad_magic_rejected() {
        let path = temp_path("badmagic");
        std::fs::write(&path, b"NOTACKPT....").unwrap();
        let err = load_params(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_file_errors() {
        let mut params = Params::new();
        params.register("w", Tensor::ones(&[100]));
        let path = temp_path("trunc");
        save_params(&path, &params, &[]).unwrap();
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert!(load_params(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn assign_restores_into_store() {
        let mut params = Params::new();
        params.register("w", Tensor::zeros(&[2]));
        let path = temp_path("assign");
        {
            let mut donor = Params::new();
            donor.register("w", Tensor::from_vec(vec![7.0, 8.0], &[2]).unwrap());
            save_params(&path, &donor, &[]).unwrap();
        }
        for (name, tensor) in load_params(&path).unwrap() {
            assert!(params.assign(&name, tensor));
        }
        std::fs::remove_file(&path).ok();
        let id = params.find("w").unwrap();
        assert_eq!(params.get(id).as_slice(), &[7.0, 8.0]);
    }
}
