//! Crash-safe, versioned binary checkpoints.
//!
//! Two on-disk formats are understood:
//!
//! * **`MBCKPT2`** (written) — a typed key/value container with a CRC32
//!   per entry and a CRC32 over the header, so *any* single flipped or
//!   truncated byte is detected at load time. Besides tensors it carries
//!   raw byte strings (RNG streams), `u64` counters and `f64` scalars, so
//!   an interrupted training run is fully reconstructible: parameters,
//!   batch-norm statistics, optimizer moments, λ logits and RNG states
//!   all live in one file.
//! * **`MBCKPT1`** (legacy, read-only) — the original tensor-only format;
//!   [`load`](Checkpoint::load) and [`load_params`] read it
//!   transparently.
//!
//! Writes are atomic: the checkpoint is serialized into a temporary file
//! in the destination directory, fsynced, then renamed over the target.
//! A crash (or SIGKILL) at any instant leaves either the complete old
//! file or the complete new file — never a truncated hybrid.
//!
//! `MBCKPT2` wire layout (little-endian):
//!
//! ```text
//! magic "MBCKPT2\n" | u32 entry_count | u32 crc32(magic ‖ entry_count)
//! per entry:
//!   u8 kind | u32 name_len | name | u64 payload_len | payload
//!   | u32 crc32(kind ‖ name ‖ payload)
//! tensor payload: u32 rank | rank × u64 dims | f32 data
//! ```
//!
//! Loads are allocation-bounded: every length field is validated against
//! the bytes actually remaining in the file before a buffer is reserved,
//! so a corrupt or adversarial header cannot trigger a huge allocation.

use std::fmt;
use std::fs::File;
use std::io::{self, BufReader, Read, Write};
use std::path::{Path, PathBuf};

use membit_tensor::Tensor;

use crate::params::Params;

pub mod faulty;

const MAGIC_V1: &[u8; 8] = b"MBCKPT1\n";
const MAGIC_V2: &[u8; 8] = b"MBCKPT2\n";

/// Hard cap on entry-name length — names are human-chosen keys, never
/// megabytes.
const MAX_NAME_LEN: usize = 4096;
/// Hard cap on tensor rank.
const MAX_RANK: usize = 32;

/// Typed failure of a checkpoint load or save.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CheckpointError {
    /// An underlying I/O failure (kind + rendered message).
    Io(io::ErrorKind, String),
    /// The file does not start with a known magic.
    BadMagic,
    /// The magic names a format revision this build cannot read.
    UnsupportedVersion(u8),
    /// A structural invariant was violated (with a description of what).
    Corrupt(String),
    /// An entry's CRC32 does not match its contents.
    CrcMismatch {
        /// Name of the damaged entry, or a location note when the name
        /// itself is unreadable.
        entry: String,
    },
    /// A length field exceeds the bytes remaining in the file.
    Oversized {
        /// Which field overflowed.
        what: String,
        /// The claimed size.
        claimed: u64,
        /// Bytes actually available.
        available: u64,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(kind, msg) => write!(f, "checkpoint io ({kind:?}): {msg}"),
            CheckpointError::BadMagic => write!(f, "not a membit checkpoint (bad magic)"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint format revision {v}")
            }
            CheckpointError::Corrupt(what) => write!(f, "corrupt checkpoint: {what}"),
            CheckpointError::CrcMismatch { entry } => {
                write!(f, "checkpoint entry {entry:?} failed its CRC32 check")
            }
            CheckpointError::Oversized {
                what,
                claimed,
                available,
            } => write!(
                f,
                "checkpoint field {what} claims {claimed} bytes but only {available} remain"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e.kind(), e.to_string())
    }
}

impl From<CheckpointError> for io::Error {
    fn from(e: CheckpointError) -> Self {
        match e {
            CheckpointError::Io(kind, msg) => io::Error::new(kind, msg),
            other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
        }
    }
}

/// Checkpoint result alias.
pub type CkptResult<T> = std::result::Result<T, CheckpointError>;

/// One typed value stored in a checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// A shaped `f32` tensor (parameters, statistics, moments, logits).
    Tensor(Tensor),
    /// Raw bytes (frozen RNG streams, format-private blobs).
    Bytes(Vec<u8>),
    /// An unsigned counter (epoch index, optimizer step).
    U64(u64),
    /// A scalar (learning-rate scale, last accuracy).
    F64(f64),
}

impl Payload {
    fn kind(&self) -> u8 {
        match self {
            Payload::Tensor(_) => 0,
            Payload::Bytes(_) => 1,
            Payload::U64(_) => 2,
            Payload::F64(_) => 3,
        }
    }
}

/// An in-memory `MBCKPT2` checkpoint: an ordered list of named, typed
/// entries with atomic persistence.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Checkpoint {
    entries: Vec<(String, Payload)>,
}

impl Checkpoint {
    /// Creates an empty checkpoint.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of entries.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Appends a tensor entry.
    pub fn put_tensor(&mut self, name: impl Into<String>, tensor: Tensor) {
        self.entries.push((name.into(), Payload::Tensor(tensor)));
    }

    /// Appends a raw-bytes entry.
    pub fn put_bytes(&mut self, name: impl Into<String>, bytes: Vec<u8>) {
        self.entries.push((name.into(), Payload::Bytes(bytes)));
    }

    /// Appends a counter entry.
    pub fn put_u64(&mut self, name: impl Into<String>, value: u64) {
        self.entries.push((name.into(), Payload::U64(value)));
    }

    /// Appends a scalar entry.
    pub fn put_f64(&mut self, name: impl Into<String>, value: f64) {
        self.entries.push((name.into(), Payload::F64(value)));
    }

    fn get(&self, name: &str) -> Option<&Payload> {
        self.entries
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, p)| p)
    }

    /// The tensor stored under `name`, if present and tensor-typed.
    pub fn tensor(&self, name: &str) -> Option<&Tensor> {
        match self.get(name) {
            Some(Payload::Tensor(t)) => Some(t),
            _ => None,
        }
    }

    /// The byte string stored under `name`, if present and byte-typed.
    pub fn bytes(&self, name: &str) -> Option<&[u8]> {
        match self.get(name) {
            Some(Payload::Bytes(b)) => Some(b),
            _ => None,
        }
    }

    /// The counter stored under `name`, if present and `u64`-typed.
    pub fn get_u64(&self, name: &str) -> Option<u64> {
        match self.get(name) {
            Some(Payload::U64(v)) => Some(*v),
            _ => None,
        }
    }

    /// The scalar stored under `name`, if present and `f64`-typed.
    pub fn get_f64(&self, name: &str) -> Option<f64> {
        match self.get(name) {
            Some(Payload::F64(v)) => Some(*v),
            _ => None,
        }
    }

    /// Iterates over every `(name, tensor)` entry, in file order.
    pub fn tensors(&self) -> impl Iterator<Item = (&str, &Tensor)> {
        self.entries.iter().filter_map(|(n, p)| match p {
            Payload::Tensor(t) => Some((n.as_str(), t)),
            _ => None,
        })
    }

    /// Iterates over tensor entries whose name starts with `prefix`,
    /// yielding the name with the prefix stripped.
    pub fn tensors_with_prefix<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = (&'a str, &'a Tensor)> + 'a {
        self.tensors()
            .filter_map(move |(n, t)| n.strip_prefix(prefix).map(|rest| (rest, t)))
    }

    /// Serializes into `w` (the `MBCKPT2` byte stream, no atomicity).
    fn write_to(&self, w: &mut impl Write) -> CkptResult<()> {
        let mut header = Vec::with_capacity(12);
        header.extend_from_slice(MAGIC_V2);
        header.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        w.write_all(&header)?;
        w.write_all(&crc32(&header).to_le_bytes())?;
        for (name, payload) in &self.entries {
            let mut body = Vec::new();
            body.push(payload.kind());
            body.extend_from_slice(&(name.len() as u32).to_le_bytes());
            body.extend_from_slice(name.as_bytes());
            let bytes = encode_payload(payload);
            body.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
            // CRC covers kind ‖ name ‖ payload (not the length fields,
            // which are validated structurally against the file size).
            let mut crc = Crc32::new();
            crc.update(&[payload.kind()]);
            crc.update(name.as_bytes());
            crc.update(&bytes);
            body.extend_from_slice(&bytes);
            body.extend_from_slice(&crc.finish().to_le_bytes());
            w.write_all(&body)?;
        }
        Ok(())
    }

    /// Atomically persists the checkpoint to `path`: serialize to a
    /// sibling temporary file, fsync, rename over the target, fsync the
    /// directory. A crash at any point leaves either the old complete
    /// file or the new complete file.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O error; on error the target file is
    /// untouched.
    pub fn save(&self, path: impl AsRef<Path>) -> CkptResult<()> {
        let path = path.as_ref();
        let tmp = tmp_sibling(path);
        let result = (|| -> CkptResult<()> {
            let mut file = File::create(&tmp)?;
            let mut buf = io::BufWriter::new(&mut file);
            self.write_to(&mut buf)?;
            buf.flush()?;
            drop(buf);
            file.sync_all()?;
            std::fs::rename(&tmp, path)?;
            sync_parent_dir(path);
            Ok(())
        })();
        if result.is_err() {
            std::fs::remove_file(&tmp).ok();
        }
        result
    }

    /// Loads a checkpoint from `path`, reading `MBCKPT2` natively and
    /// legacy `MBCKPT1` files as tensor-only checkpoints.
    ///
    /// # Errors
    ///
    /// Returns a typed [`CheckpointError`] for I/O failures, bad magic,
    /// truncation, oversized length fields or CRC mismatches.
    pub fn load(path: impl AsRef<Path>) -> CkptResult<Self> {
        let path = path.as_ref();
        let file_len = std::fs::metadata(path)?.len();
        let mut r = BoundedReader {
            inner: BufReader::new(File::open(path)?),
            remaining: file_len,
        };
        let mut magic = [0u8; 8];
        r.read_exact_bounded(&mut magic, "magic")?;
        match &magic {
            m if m == MAGIC_V2 => Self::load_v2(&mut r),
            m if m == MAGIC_V1 => Self::load_v1(&mut r),
            m if m.starts_with(b"MBCKPT") && m[7] == b'\n' && m[6].is_ascii_digit() => {
                Err(CheckpointError::UnsupportedVersion(m[6] - b'0'))
            }
            _ => Err(CheckpointError::BadMagic),
        }
    }

    fn load_v2(r: &mut BoundedReader) -> CkptResult<Self> {
        let count_bytes = r.read_array::<4>("entry count")?;
        let count = u32::from_le_bytes(count_bytes) as usize;
        let stored_header_crc = u32::from_le_bytes(r.read_array::<4>("header crc")?);
        let mut header = Vec::with_capacity(12);
        header.extend_from_slice(MAGIC_V2);
        header.extend_from_slice(&count_bytes);
        if crc32(&header) != stored_header_crc {
            return Err(CheckpointError::CrcMismatch {
                entry: "<header>".into(),
            });
        }
        // Every entry needs ≥ 17 bytes of framing; cheap sanity bound on
        // the declared count before reserving anything.
        if (count as u64) * 17 > r.remaining {
            return Err(CheckpointError::Oversized {
                what: "entry count".into(),
                claimed: count as u64,
                available: r.remaining / 17,
            });
        }
        let mut entries = Vec::with_capacity(count);
        for idx in 0..count {
            let kind = r.read_array::<1>("entry kind")?[0];
            let name_len = u32::from_le_bytes(r.read_array::<4>("name length")?) as usize;
            if name_len > MAX_NAME_LEN {
                return Err(CheckpointError::Oversized {
                    what: format!("entry {idx} name length"),
                    claimed: name_len as u64,
                    available: MAX_NAME_LEN as u64,
                });
            }
            let name_bytes = r.read_vec(name_len, &format!("entry {idx} name"))?;
            let name = String::from_utf8(name_bytes)
                .map_err(|_| CheckpointError::Corrupt(format!("entry {idx} name is not UTF-8")))?;
            let payload_len = u64::from_le_bytes(r.read_array::<8>("payload length")?);
            if payload_len + 4 > r.remaining {
                return Err(CheckpointError::Oversized {
                    what: format!("entry {name:?} payload"),
                    claimed: payload_len,
                    available: r.remaining.saturating_sub(4),
                });
            }
            let payload_bytes = r.read_vec(payload_len as usize, &format!("entry {name:?}"))?;
            let stored_crc = u32::from_le_bytes(r.read_array::<4>("entry crc")?);
            let mut crc = Crc32::new();
            crc.update(&[kind]);
            crc.update(name.as_bytes());
            crc.update(&payload_bytes);
            if crc.finish() != stored_crc {
                return Err(CheckpointError::CrcMismatch { entry: name });
            }
            let payload = decode_payload(kind, &payload_bytes, &name)?;
            entries.push((name, payload));
        }
        if r.remaining != 0 {
            return Err(CheckpointError::Corrupt(format!(
                "{} trailing bytes after the last entry",
                r.remaining
            )));
        }
        Ok(Self { entries })
    }

    /// Legacy `MBCKPT1`: `u32 count`, then per entry a length-prefixed
    /// name, `u32 rank`, `u64` dims and raw `f32` data. No CRCs — only
    /// structural bounds are enforced.
    fn load_v1(r: &mut BoundedReader) -> CkptResult<Self> {
        let count = u32::from_le_bytes(r.read_array::<4>("entry count")?) as usize;
        // each v1 entry needs ≥ 12 bytes of framing
        if (count as u64) * 12 > r.remaining {
            return Err(CheckpointError::Oversized {
                what: "entry count".into(),
                claimed: count as u64,
                available: r.remaining / 12,
            });
        }
        let mut entries = Vec::with_capacity(count);
        for idx in 0..count {
            let name_len = u32::from_le_bytes(r.read_array::<4>("name length")?) as usize;
            if name_len > MAX_NAME_LEN {
                return Err(CheckpointError::Oversized {
                    what: format!("entry {idx} name length"),
                    claimed: name_len as u64,
                    available: MAX_NAME_LEN as u64,
                });
            }
            let name_bytes = r.read_vec(name_len, &format!("entry {idx} name"))?;
            let name = String::from_utf8(name_bytes)
                .map_err(|_| CheckpointError::Corrupt(format!("entry {idx} name is not UTF-8")))?;
            let rank = u32::from_le_bytes(r.read_array::<4>("rank")?) as usize;
            let tensor = read_shaped_tensor(r, rank, &name)?;
            entries.push((name, Payload::Tensor(tensor)));
        }
        Ok(Self { entries })
    }
}

fn encode_payload(payload: &Payload) -> Vec<u8> {
    match payload {
        Payload::Tensor(t) => {
            let mut out = Vec::with_capacity(4 + t.rank() * 8 + t.len() * 4);
            out.extend_from_slice(&(t.rank() as u32).to_le_bytes());
            for &d in t.shape() {
                out.extend_from_slice(&(d as u64).to_le_bytes());
            }
            for &v in t.as_slice() {
                out.extend_from_slice(&v.to_le_bytes());
            }
            out
        }
        Payload::Bytes(b) => b.clone(),
        Payload::U64(v) => v.to_le_bytes().to_vec(),
        Payload::F64(v) => v.to_le_bytes().to_vec(),
    }
}

fn decode_payload(kind: u8, bytes: &[u8], name: &str) -> CkptResult<Payload> {
    let corrupt = |what: &str| CheckpointError::Corrupt(format!("entry {name:?}: {what}"));
    match kind {
        0 => {
            if bytes.len() < 4 {
                return Err(corrupt("tensor payload shorter than its rank field"));
            }
            let rank = u32::from_le_bytes(bytes[..4].try_into().expect("4 bytes")) as usize;
            if rank > MAX_RANK {
                return Err(corrupt(&format!("tensor rank {rank} exceeds cap {MAX_RANK}")));
            }
            let dims_end = 4 + rank * 8;
            if bytes.len() < dims_end {
                return Err(corrupt("tensor payload truncated inside its dims"));
            }
            let mut shape = Vec::with_capacity(rank);
            let mut volume: u64 = 1;
            for d in 0..rank {
                let dim = u64::from_le_bytes(
                    bytes[4 + d * 8..4 + (d + 1) * 8].try_into().expect("8 bytes"),
                );
                volume = volume.saturating_mul(dim.max(1));
                shape.push(dim as usize);
            }
            let data_bytes = &bytes[dims_end..];
            if volume.saturating_mul(4) != data_bytes.len() as u64 {
                return Err(corrupt(&format!(
                    "shape {shape:?} implies {volume} values but payload carries {}",
                    data_bytes.len() / 4
                )));
            }
            let data: Vec<f32> = data_bytes
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
                .collect();
            let tensor = Tensor::from_vec(data, &shape)
                .map_err(|e| corrupt(&format!("invalid tensor: {e}")))?;
            Ok(Payload::Tensor(tensor))
        }
        1 => Ok(Payload::Bytes(bytes.to_vec())),
        2 => {
            let arr: [u8; 8] = bytes
                .try_into()
                .map_err(|_| corrupt("u64 payload is not 8 bytes"))?;
            Ok(Payload::U64(u64::from_le_bytes(arr)))
        }
        3 => {
            let arr: [u8; 8] = bytes
                .try_into()
                .map_err(|_| corrupt("f64 payload is not 8 bytes"))?;
            Ok(Payload::F64(f64::from_le_bytes(arr)))
        }
        other => Err(corrupt(&format!("unknown payload kind {other}"))),
    }
}

/// Reads `rank` dims and the `f32` data of a v1 tensor, bounding every
/// allocation by the bytes remaining in the file.
fn read_shaped_tensor(r: &mut BoundedReader, rank: usize, name: &str) -> CkptResult<Tensor> {
    if rank > MAX_RANK {
        return Err(CheckpointError::Oversized {
            what: format!("entry {name:?} rank"),
            claimed: rank as u64,
            available: MAX_RANK as u64,
        });
    }
    if (rank as u64) * 8 > r.remaining {
        return Err(CheckpointError::Oversized {
            what: format!("entry {name:?} dims"),
            claimed: rank as u64 * 8,
            available: r.remaining,
        });
    }
    let mut shape = Vec::with_capacity(rank);
    let mut volume: u64 = 1;
    for _ in 0..rank {
        let dim = u64::from_le_bytes(r.read_array::<8>("dim")?);
        volume = volume.saturating_mul(dim.max(1));
        shape.push(dim as usize);
    }
    let data_bytes = volume.saturating_mul(4);
    if data_bytes > r.remaining {
        return Err(CheckpointError::Oversized {
            what: format!("entry {name:?} data ({shape:?})"),
            claimed: data_bytes,
            available: r.remaining,
        });
    }
    let raw = r.read_vec(data_bytes as usize, &format!("entry {name:?} data"))?;
    let data: Vec<f32> = raw
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
        .collect();
    Tensor::from_vec(data, &shape)
        .map_err(|e| CheckpointError::Corrupt(format!("entry {name:?}: invalid tensor: {e}")))
}

/// A reader that tracks how many bytes remain in the file, so length
/// fields can be validated *before* any allocation.
struct BoundedReader {
    inner: BufReader<File>,
    remaining: u64,
}

impl BoundedReader {
    fn read_exact_bounded(&mut self, buf: &mut [u8], what: &str) -> CkptResult<()> {
        if buf.len() as u64 > self.remaining {
            return Err(CheckpointError::Corrupt(format!(
                "file truncated reading {what}"
            )));
        }
        self.inner.read_exact(buf)?;
        self.remaining -= buf.len() as u64;
        Ok(())
    }

    fn read_array<const N: usize>(&mut self, what: &str) -> CkptResult<[u8; N]> {
        let mut buf = [0u8; N];
        self.read_exact_bounded(&mut buf, what)?;
        Ok(buf)
    }

    fn read_vec(&mut self, len: usize, what: &str) -> CkptResult<Vec<u8>> {
        if len as u64 > self.remaining {
            return Err(CheckpointError::Oversized {
                what: what.to_string(),
                claimed: len as u64,
                available: self.remaining,
            });
        }
        let mut buf = vec![0u8; len];
        self.inner.read_exact(&mut buf)?;
        self.remaining -= len as u64;
        Ok(buf)
    }
}

fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "checkpoint".into());
    name.push_str(&format!(".tmp.{}", std::process::id()));
    path.with_file_name(name)
}

/// Best-effort fsync of `path`'s parent directory so the rename itself is
/// durable. Failures are ignored: some filesystems refuse directory
/// fsyncs, and the data file is already synced.
fn sync_parent_dir(path: &Path) {
    if let Some(parent) = path.parent() {
        let parent = if parent.as_os_str().is_empty() {
            Path::new(".")
        } else {
            parent
        };
        if let Ok(dir) = File::open(parent) {
            dir.sync_all().ok();
        }
    }
}

// ---------------------------------------------------------------------------
// CRC32 (IEEE, reflected) — implemented in-crate; the workspace is
// dependency-free.
// ---------------------------------------------------------------------------

struct Crc32 {
    state: u32,
}

impl Crc32 {
    fn new() -> Self {
        Self { state: !0 }
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u32::from(b);
            for _ in 0..8 {
                let mask = (self.state & 1).wrapping_neg();
                self.state = (self.state >> 1) ^ (0xEDB8_8320 & mask);
            }
        }
    }

    fn finish(self) -> u32 {
        !self.state
    }
}

/// CRC32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(bytes);
    crc.finish()
}

// ---------------------------------------------------------------------------
// Params-level convenience API (back-compatible surface)
// ---------------------------------------------------------------------------

/// Saves every parameter of `params` plus the `extra` named tensors
/// (typically batch-norm running statistics) to `path`, atomically, in
/// the `MBCKPT2` format.
///
/// # Errors
///
/// Returns any underlying I/O error; the previous file at `path` (if any)
/// survives intact on failure.
pub fn save_params(
    path: impl AsRef<Path>,
    params: &Params,
    extra: &[(String, Tensor)],
) -> io::Result<()> {
    let mut ckpt = Checkpoint::new();
    for (name, tensor) in params.iter() {
        ckpt.put_tensor(name, tensor.clone());
    }
    for (name, tensor) in extra {
        ckpt.put_tensor(name.clone(), tensor.clone());
    }
    ckpt.save(path).map_err(io::Error::from)
}

/// Loads every `(name, tensor)` entry from a checkpoint written by
/// [`save_params`] (either format revision).
///
/// # Errors
///
/// Returns [`io::ErrorKind::InvalidData`] for a damaged file, or any
/// underlying I/O error. Use [`Checkpoint::load`] for typed errors.
pub fn load_params(path: impl AsRef<Path>) -> io::Result<Vec<(String, Tensor)>> {
    let ckpt = Checkpoint::load(path).map_err(io::Error::from)?;
    Ok(ckpt
        .tensors()
        .map(|(n, t)| (n.to_string(), t.clone()))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("membit-ckpt-test-{tag}-{}", std::process::id()))
    }

    fn write_v1(path: &Path, entries: &[(&str, &Tensor)]) {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC_V1);
        bytes.extend_from_slice(&(entries.len() as u32).to_le_bytes());
        for (name, tensor) in entries {
            bytes.extend_from_slice(&(name.len() as u32).to_le_bytes());
            bytes.extend_from_slice(name.as_bytes());
            bytes.extend_from_slice(&(tensor.rank() as u32).to_le_bytes());
            for &d in tensor.shape() {
                bytes.extend_from_slice(&(d as u64).to_le_bytes());
            }
            for &v in tensor.as_slice() {
                bytes.extend_from_slice(&v.to_le_bytes());
            }
        }
        std::fs::write(path, bytes).unwrap();
    }

    #[test]
    fn roundtrip_params_and_extras() {
        let mut params = Params::new();
        params.register("a.weight", Tensor::from_vec(vec![1.0, -2.0, 3.5], &[3]).unwrap());
        params.register("b.weight", Tensor::from_fn(&[2, 2], |i| i as f32));
        let extra = vec![(
            "bn0.running_mean".to_string(),
            Tensor::from_vec(vec![0.25], &[1]).unwrap(),
        )];
        let path = temp_path("roundtrip");
        save_params(&path, &params, &extra).unwrap();
        let loaded = load_params(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.len(), 3);
        assert_eq!(loaded[0].0, "a.weight");
        assert_eq!(loaded[0].1.as_slice(), &[1.0, -2.0, 3.5]);
        assert_eq!(loaded[1].1.shape(), &[2, 2]);
        assert_eq!(loaded[2].0, "bn0.running_mean");
    }

    #[test]
    fn roundtrip_all_payload_kinds() {
        let mut ckpt = Checkpoint::new();
        ckpt.put_tensor("t", Tensor::from_fn(&[3, 2], |i| i as f32 - 2.5));
        ckpt.put_bytes("rng", vec![1, 2, 3, 255, 0, 7]);
        ckpt.put_u64("epoch", u64::MAX - 3);
        ckpt.put_f64("lr_scale", -0.125);
        ckpt.put_bytes("empty", Vec::new());
        let path = temp_path("kinds");
        ckpt.save(&path).unwrap();
        let loaded = Checkpoint::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded, ckpt);
        assert_eq!(loaded.tensor("t").unwrap().shape(), &[3, 2]);
        assert_eq!(loaded.bytes("rng").unwrap(), &[1, 2, 3, 255, 0, 7]);
        assert_eq!(loaded.get_u64("epoch"), Some(u64::MAX - 3));
        assert_eq!(loaded.get_f64("lr_scale"), Some(-0.125));
        assert_eq!(loaded.bytes("empty").unwrap(), &[] as &[u8]);
        // type confusion returns None rather than reinterpreting
        assert!(loaded.tensor("epoch").is_none());
        assert!(loaded.get_u64("t").is_none());
    }

    #[test]
    fn prefix_iteration() {
        let mut ckpt = Checkpoint::new();
        ckpt.put_tensor("param.w", Tensor::ones(&[1]));
        ckpt.put_tensor("param.b", Tensor::zeros(&[1]));
        ckpt.put_tensor("opt.v0", Tensor::zeros(&[1]));
        let names: Vec<_> = ckpt
            .tensors_with_prefix("param.")
            .map(|(n, _)| n.to_string())
            .collect();
        assert_eq!(names, vec!["w", "b"]);
    }

    #[test]
    fn legacy_v1_reads_transparently() {
        let a = Tensor::from_vec(vec![4.0, 5.0], &[2]).unwrap();
        let b = Tensor::from_fn(&[2, 3], |i| i as f32);
        let path = temp_path("v1");
        write_v1(&path, &[("w", &a), ("conv.weight", &b)]);
        let loaded = load_params(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[0].0, "w");
        assert_eq!(loaded[0].1.as_slice(), &[4.0, 5.0]);
        assert_eq!(loaded[1].1.shape(), &[2, 3]);
    }

    #[test]
    fn bad_magic_rejected() {
        let path = temp_path("badmagic");
        std::fs::write(&path, b"NOTACKPT....").unwrap();
        let err = Checkpoint::load(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert_eq!(err, CheckpointError::BadMagic);
        // io-level API maps to InvalidData
        std::fs::write(&path, b"NOTACKPT....").unwrap();
        let err = load_params(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn future_revision_rejected_with_version() {
        let path = temp_path("future");
        std::fs::write(&path, b"MBCKPT9\n garbage").unwrap();
        let err = Checkpoint::load(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert_eq!(err, CheckpointError::UnsupportedVersion(9));
    }

    #[test]
    fn truncated_file_errors() {
        let mut params = Params::new();
        params.register("w", Tensor::ones(&[100]));
        let path = temp_path("trunc");
        save_params(&path, &params, &[]).unwrap();
        let full = std::fs::read(&path).unwrap();
        for keep in [full.len() / 2, 9, 13, full.len() - 1] {
            std::fs::write(&path, &full[..keep]).unwrap();
            assert!(load_params(&path).is_err(), "length {keep} loaded");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn oversized_header_fields_bounded() {
        // v1 file claiming 2^31 entries in a 20-byte file: must reject
        // before allocating.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC_V1);
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 8]);
        let path = temp_path("hugecount");
        std::fs::write(&path, &bytes).unwrap();
        let err = Checkpoint::load(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, CheckpointError::Oversized { .. }), "{err}");

        // v1 entry with absurd dims: name "w", rank 2, dims (2^40, 2^40)
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC_V1);
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.push(b'w');
        bytes.extend_from_slice(&2u32.to_le_bytes());
        bytes.extend_from_slice(&(1u64 << 40).to_le_bytes());
        bytes.extend_from_slice(&(1u64 << 40).to_le_bytes());
        let path = temp_path("hugedims");
        std::fs::write(&path, &bytes).unwrap();
        let err = Checkpoint::load(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, CheckpointError::Oversized { .. }), "{err}");
    }

    #[test]
    fn single_bit_flip_detected_everywhere() {
        let mut ckpt = Checkpoint::new();
        ckpt.put_tensor("w", Tensor::from_fn(&[4], |i| i as f32));
        ckpt.put_u64("epoch", 3);
        let path = temp_path("bitflip");
        ckpt.save(&path).unwrap();
        let clean = std::fs::read(&path).unwrap();
        for byte in 0..clean.len() {
            let mut dirty = clean.clone();
            dirty[byte] ^= 0x10;
            std::fs::write(&path, &dirty).unwrap();
            assert!(
                Checkpoint::load(&path).is_err(),
                "flip at byte {byte}/{} loaded silently",
                clean.len()
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut ckpt = Checkpoint::new();
        ckpt.put_u64("x", 1);
        let path = temp_path("trailing");
        ckpt.save(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(b"junk");
        std::fs::write(&path, &bytes).unwrap();
        let err = Checkpoint::load(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, CheckpointError::Corrupt(_)), "{err}");
    }

    #[test]
    fn save_overwrites_atomically() {
        let path = temp_path("atomic");
        let mut first = Checkpoint::new();
        first.put_u64("gen", 1);
        first.save(&path).unwrap();
        let mut second = Checkpoint::new();
        second.put_u64("gen", 2);
        second.save(&path).unwrap();
        let loaded = Checkpoint::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.get_u64("gen"), Some(2));
        // no temp litter left behind
        let dir = path.parent().unwrap();
        let stem = path.file_name().unwrap().to_string_lossy().into_owned();
        let leftovers: Vec<_> = std::fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| {
                let n = e.file_name().to_string_lossy().into_owned();
                n.starts_with(&stem) && n.contains(".tmp.")
            })
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
    }

    #[test]
    fn assign_restores_into_store() {
        let mut params = Params::new();
        params.register("w", Tensor::zeros(&[2]));
        let path = temp_path("assign");
        {
            let mut donor = Params::new();
            donor.register("w", Tensor::from_vec(vec![7.0, 8.0], &[2]).unwrap());
            save_params(&path, &donor, &[]).unwrap();
        }
        for (name, tensor) in load_params(&path).unwrap() {
            assert!(params.assign(&name, tensor));
        }
        std::fs::remove_file(&path).ok();
        let id = params.find("w").unwrap();
        assert_eq!(params.get(id).as_slice(), &[7.0, 8.0]);
    }

    #[test]
    fn crc32_matches_reference_vector() {
        // IEEE CRC32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
