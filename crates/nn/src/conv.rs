//! 2-D convolution layer with optional binary weights.

use membit_autograd::{Tape, VarId};
use membit_tensor::{Conv2dGeometry, Rng, Tensor};

use crate::params::{Binding, ParamId, Params};
use crate::Result;

/// A bias-free 2-D convolution (bias is subsumed by the following batch
/// norm, as in the paper's VGG9-BWNN).
///
/// With `binary = true` the stored full-precision ("latent") weights are
/// binarized to ±1 through a straight-through `sign` on every forward —
/// BinaryConnect-style training, matching the binary conductance states of
/// the crossbar.
#[derive(Debug, Clone)]
pub struct Conv2d {
    weight: ParamId,
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    binary: bool,
}

impl Conv2d {
    /// Creates the layer, registering its kernel under `name` with
    /// Kaiming-scaled Gaussian init.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: &str,
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        binary: bool,
        params: &mut Params,
        rng: &mut Rng,
    ) -> Self {
        let fan_in = in_channels * kernel * kernel;
        let w = rng.kaiming_tensor(&[out_channels, in_channels, kernel, kernel], fan_in);
        let weight = params.register(format!("{name}.weight"), w);
        Self {
            weight,
            in_channels,
            out_channels,
            kernel,
            stride,
            padding,
            binary,
        }
    }

    /// Handle of the kernel parameter.
    pub fn weight(&self) -> ParamId {
        self.weight
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Whether forward binarizes the weights.
    pub fn is_binary(&self) -> bool {
        self.binary
    }

    /// The effective (deployed) weight tensor: ±1 if binary, latent
    /// otherwise. This is what gets programmed into crossbar conductances.
    pub fn deployed_weight(&self, params: &Params) -> Tensor {
        let w = params.get(self.weight);
        if self.binary {
            w.map(|v| if v >= 0.0 { 1.0 } else { -1.0 })
        } else {
            w.clone()
        }
    }

    /// Runs the convolution on `x` (`[N, C, H, W]`).
    ///
    /// # Errors
    ///
    /// Propagates geometry/shape errors (wrong channel count, kernel larger
    /// than the padded input, ...).
    pub fn forward(
        &self,
        tape: &mut Tape,
        params: &Params,
        binding: &mut Binding,
        x: VarId,
    ) -> Result<VarId> {
        let shape = tape.value(x).shape().to_vec();
        let geom = Conv2dGeometry::new(
            self.in_channels,
            shape[2],
            shape[3],
            self.kernel,
            self.kernel,
            self.stride,
            self.padding,
        )?;
        let mut w = params.bind(tape, binding, self.weight);
        if self.binary {
            w = tape.sign_ste(w, 1.0);
        }
        tape.conv2d(x, w, &geom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(binary: bool) -> (Conv2d, Params, Rng) {
        let mut params = Params::new();
        let mut rng = Rng::from_seed(1);
        let conv = Conv2d::new("c", 3, 8, 3, 1, 1, binary, &mut params, &mut rng);
        (conv, params, rng)
    }

    #[test]
    fn forward_shape_preserving_padding() {
        let (conv, params, _) = setup(false);
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::zeros(&[2, 3, 8, 8]));
        let mut binding = params.binding();
        let y = conv.forward(&mut tape, &params, &mut binding, x).unwrap();
        assert_eq!(tape.value(y).shape(), &[2, 8, 8, 8]);
    }

    #[test]
    fn binary_mode_binarizes_deployed_weights() {
        let (conv, params, _) = setup(true);
        let dep = conv.deployed_weight(&params);
        assert!(dep.as_slice().iter().all(|&v| v == 1.0 || v == -1.0));
        assert!(conv.is_binary());
        // latent weights stay full-precision
        assert!(params
            .get(conv.weight())
            .as_slice()
            .iter()
            .any(|&v| v != 1.0 && v != -1.0));
    }

    #[test]
    fn binary_forward_uses_sign() {
        let (conv, params, _) = setup(true);
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::ones(&[1, 3, 4, 4]));
        let mut binding = params.binding();
        let y = conv.forward(&mut tape, &params, &mut binding, x).unwrap();
        // interior outputs are sums of ±1 over 27 taps ⇒ odd integers
        let v = tape.value(y).get(&[0, 0, 1, 1]);
        assert!((v - v.round()).abs() < 1e-4);
        assert!((v.round() as i32) % 2 != 0);
    }

    #[test]
    fn gradient_reaches_latent_weights_through_sign() {
        let (conv, params, _) = setup(true);
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::ones(&[1, 3, 4, 4]));
        let mut binding = params.binding();
        let y = conv.forward(&mut tape, &params, &mut binding, x).unwrap();
        let l = tape.sum_all(y);
        tape.backward(l).unwrap();
        let wv = binding.var(conv.weight()).unwrap();
        let g = tape.grad(wv).unwrap();
        assert!(g.abs().sum() > 0.0);
    }

    #[test]
    fn channel_mismatch_errors() {
        let (conv, params, _) = setup(false);
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::zeros(&[1, 4, 8, 8])); // 4 ≠ 3 channels
        let mut binding = params.binding();
        assert!(conv.forward(&mut tape, &params, &mut binding, x).is_err());
    }
}
