//! Pulse trains: the temporal sequence of binary input vectors a crossbar
//! consumes.

use membit_tensor::{Tensor, TensorError};

use crate::Result;

/// Structural class of a [`PulseTrain`], used by execution engines to
/// pick specialized evaluation paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrainKind {
    /// No structure guaranteed beyond the [`PulseTrain`] invariants.
    Generic,
    /// Unit-weight train whose pulses are *nested*: per element, every
    /// pulse entry is ±1 and the sequence is monotonically non-increasing
    /// (`+1…+1, −1…−1`), so each element switches `+1 → −1` at most once.
    /// Thermometer/unary codes have exactly this shape (paper Eq. 3),
    /// which lets an engine evaluate pulse `t+1` as a sparse delta on
    /// pulse `t`.
    NestedUnary,
}

/// A sequence of same-shaped ±1 pulse tensors plus their accumulation
/// weights.
///
/// For thermometer coding all weights are 1; for bit slicing they are
/// `2^i`. The decoded value is `Σ w_i·x_i / Σ w_i`, and a crossbar
/// executes one analog MVM per pulse.
#[derive(Debug, Clone, PartialEq)]
pub struct PulseTrain {
    pulses: Vec<Tensor>,
    weights: Vec<f32>,
    kind: TrainKind,
}

impl PulseTrain {
    /// Bundles pulses with their weights.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] for an empty train, a
    /// weight-count mismatch, or inconsistent pulse shapes.
    pub fn new(pulses: Vec<Tensor>, weights: Vec<f32>) -> Result<Self> {
        if pulses.is_empty() {
            return Err(TensorError::InvalidArgument(
                "pulse train cannot be empty".into(),
            ));
        }
        if pulses.len() != weights.len() {
            return Err(TensorError::InvalidArgument(format!(
                "{} pulses but {} weights",
                pulses.len(),
                weights.len()
            )));
        }
        let shape = pulses[0].shape().to_vec();
        if let Some(bad) = pulses.iter().find(|p| p.shape() != shape) {
            return Err(TensorError::ShapeMismatch {
                op: "pulse train",
                lhs: shape,
                rhs: bad.shape().to_vec(),
            });
        }
        Ok(Self {
            pulses,
            weights,
            kind: TrainKind::Generic,
        })
    }

    /// Bundles unit-weight pulses as a [`TrainKind::NestedUnary`] train,
    /// validating the nesting invariant (every entry ±1, per-element
    /// monotonically non-increasing over pulses). Thermometer-family
    /// encoders produce their trains through this constructor so engines
    /// can trust the tag.
    ///
    /// # Errors
    ///
    /// Returns the [`new`](Self::new) errors, plus
    /// [`TensorError::InvalidArgument`] when the pulses are not nested
    /// unary.
    pub fn nested_unary(pulses: Vec<Tensor>) -> Result<Self> {
        let weights = vec![1.0; pulses.len()];
        let mut train = Self::new(pulses, weights)?;
        for (pi, pulse) in train.pulses.iter().enumerate() {
            for (flat, &v) in pulse.as_slice().iter().enumerate() {
                if v != 1.0 && v != -1.0 {
                    return Err(TensorError::InvalidArgument(format!(
                        "nested unary train has non-binary entry {v} (pulse {pi})"
                    )));
                }
                if pi > 0 && v > train.pulses[pi - 1].as_slice()[flat] {
                    return Err(TensorError::InvalidArgument(format!(
                        "nested unary train rises at pulse {pi}, element {flat}"
                    )));
                }
            }
        }
        train.kind = TrainKind::NestedUnary;
        Ok(train)
    }

    /// The structural class of this train.
    pub fn kind(&self) -> TrainKind {
        self.kind
    }

    /// Number of pulses (crossbar time steps).
    pub fn num_pulses(&self) -> usize {
        self.pulses.len()
    }

    /// Shape of each pulse tensor.
    pub fn shape(&self) -> &[usize] {
        self.pulses[0].shape()
    }

    /// The pulse tensors, in temporal order.
    pub fn pulses(&self) -> &[Tensor] {
        &self.pulses
    }

    /// The accumulation weights.
    pub fn weights(&self) -> &[f32] {
        &self.weights
    }

    /// Sum of the accumulation weights (the decode normalizer).
    pub fn weight_norm(&self) -> f32 {
        self.weights.iter().sum()
    }

    /// Iterates `(weight, pulse)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f32, &Tensor)> {
        self.weights.iter().copied().zip(&self.pulses)
    }

    /// Decodes the train back to values: `Σ w_i·x_i / Σ w_i`.
    ///
    /// # Errors
    ///
    /// Propagates shape errors (impossible for a validated train).
    pub fn decode(&self) -> Result<Tensor> {
        let mut acc = Tensor::zeros(self.shape());
        for (w, p) in self.iter() {
            acc.axpy(w, p)?;
        }
        Ok(acc.mul_scalar(1.0 / self.weight_norm()))
    }

    /// Total pulse-weighted latency proxy: the number of pulses (all
    /// pulses take one time step regardless of weight).
    pub fn latency(&self) -> usize {
        self.pulses.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: &[f32]) -> Tensor {
        Tensor::from_vec(v.to_vec(), &[v.len()]).unwrap()
    }

    #[test]
    fn validates_construction() {
        assert!(PulseTrain::new(vec![], vec![]).is_err());
        assert!(PulseTrain::new(vec![t(&[1.0])], vec![1.0, 2.0]).is_err());
        assert!(PulseTrain::new(vec![t(&[1.0]), t(&[1.0, 1.0])], vec![1.0, 1.0]).is_err());
    }

    #[test]
    fn decode_weighted_average() {
        let train = PulseTrain::new(
            vec![t(&[1.0, -1.0]), t(&[1.0, 1.0]), t(&[-1.0, 1.0])],
            vec![1.0, 2.0, 4.0],
        )
        .unwrap();
        let d = train.decode().unwrap();
        // (1+2−4)/7, (−1+2+4)/7
        assert!(d.allclose(&t(&[-1.0 / 7.0, 5.0 / 7.0]), 1e-6));
        assert_eq!(train.latency(), 3);
        assert_eq!(train.weight_norm(), 7.0);
    }

    #[test]
    fn nested_unary_tags_and_validates() {
        // monotone +1→−1 per element: valid
        let train = PulseTrain::nested_unary(vec![
            t(&[1.0, 1.0]),
            t(&[1.0, -1.0]),
            t(&[-1.0, -1.0]),
        ])
        .unwrap();
        assert_eq!(train.kind(), TrainKind::NestedUnary);
        assert_eq!(train.weights(), &[1.0, 1.0, 1.0]);
        // the plain constructor never claims structure
        let generic = PulseTrain::new(vec![t(&[1.0]), t(&[-1.0])], vec![1.0, 1.0]).unwrap();
        assert_eq!(generic.kind(), TrainKind::Generic);
        // rising sequence rejected
        assert!(PulseTrain::nested_unary(vec![t(&[-1.0]), t(&[1.0])]).is_err());
        // non-binary entry rejected
        assert!(PulseTrain::nested_unary(vec![t(&[0.5])]).is_err());
        // empty rejected (inherits the base validation)
        assert!(PulseTrain::nested_unary(vec![]).is_err());
    }

    #[test]
    fn iter_pairs_weights_with_pulses() {
        let train = PulseTrain::new(vec![t(&[1.0]), t(&[-1.0])], vec![0.5, 1.5]).unwrap();
        let collected: Vec<f32> = train.iter().map(|(w, p)| w * p.at(0)).collect();
        assert_eq!(collected, vec![0.5, -1.5]);
    }
}
