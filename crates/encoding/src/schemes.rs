//! The bit-encoding schemes compared by the paper.

use membit_tensor::{Tensor, TensorError};

use crate::train::PulseTrain;
use crate::Result;

/// A scheme for converting a quantized activation in `[-1, 1]` into a
/// sequence of binary (±1) voltage pulses.
///
/// Implementations define the pulse count, the per-pulse accumulation
/// weight (1 for unary schemes, `2^i` for bit slicing), and therefore the
/// closed-form accumulated noise variance when each pulse's analog MVM
/// picks up independent `N(0, σ²)` noise.
pub trait BitEncoder {
    /// Number of pulses per encoded value.
    fn num_pulses(&self) -> usize;

    /// Number of representable levels.
    fn num_levels(&self) -> usize;

    /// Accumulation weight of pulse `i`.
    fn pulse_weight(&self, i: usize) -> f32;

    /// Sum of all pulse weights (the decode normalizer).
    fn weight_norm(&self) -> f32 {
        (0..self.num_pulses()).map(|i| self.pulse_weight(i)).sum()
    }

    /// Encodes one value in `[-1, 1]` into its pulse sequence (each entry
    /// ±1). Values are snapped to the nearest representable level.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] for non-finite input.
    fn encode_value(&self, value: f32) -> Result<Vec<f32>>;

    /// Decodes a pulse sequence back to its value:
    /// `Σ w_i·x_i / Σ w_i`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] on a pulse-count mismatch.
    fn decode(&self, pulses: &[f32]) -> Result<f32> {
        if pulses.len() != self.num_pulses() {
            return Err(TensorError::InvalidArgument(format!(
                "expected {} pulses, got {}",
                self.num_pulses(),
                pulses.len()
            )));
        }
        let acc: f32 = pulses
            .iter()
            .enumerate()
            .map(|(i, &x)| self.pulse_weight(i) * x)
            .sum();
        Ok(acc / self.weight_norm())
    }

    /// Accumulated output noise variance when each pulse contributes
    /// independent `N(0, σ²)`: `Σw_i² / (Σw_i)² · σ²`.
    fn noise_variance(&self, sigma2: f32) -> f32 {
        let norm = self.weight_norm();
        let sq: f32 = (0..self.num_pulses())
            .map(|i| self.pulse_weight(i).powi(2))
            .sum();
        sq / (norm * norm) * sigma2
    }

    /// Whether this encoder's trains are nested unary codes
    /// ([`TrainKind::NestedUnary`](crate::TrainKind::NestedUnary)):
    /// unit-weight pulses where each element runs `+1…+1, −1…−1`.
    /// Thermometer-family encoders override this so
    /// [`encode_tensor`](Self::encode_tensor) tags their trains and
    /// execution engines can use the incremental pulse-delta fast path.
    fn emits_nested_unary(&self) -> bool {
        false
    }

    /// Encodes a whole activation tensor (any shape) into a
    /// [`PulseTrain`]: one ±1 tensor per pulse plus the weights. Trains
    /// from encoders with [`emits_nested_unary`](Self::emits_nested_unary)
    /// are built through [`PulseTrain::nested_unary`] and carry its tag.
    ///
    /// # Errors
    ///
    /// Propagates per-value encoding errors.
    fn encode_tensor(&self, values: &Tensor) -> Result<PulseTrain>
    where
        Self: Sized,
    {
        let p = self.num_pulses();
        let mut pulses = vec![Tensor::zeros(values.shape()); p];
        for (flat, &v) in values.as_slice().iter().enumerate() {
            let code = self.encode_value(v)?;
            for (i, &bit) in code.iter().enumerate() {
                pulses[i].as_mut_slice()[flat] = bit;
            }
        }
        if self.emits_nested_unary() {
            return PulseTrain::nested_unary(pulses);
        }
        let weights = (0..p).map(|i| self.pulse_weight(i)).collect();
        PulseTrain::new(pulses, weights)
    }
}

fn check_finite(value: f32) -> Result<()> {
    if value.is_finite() {
        Ok(())
    } else {
        Err(TensorError::InvalidArgument(format!(
            "cannot encode non-finite value {value}"
        )))
    }
}

/// Snaps `v ∈ [-1, 1]` to the index of the nearest of `levels` uniform
/// levels.
pub(crate) fn level_index(v: f32, levels: usize) -> usize {
    let l = (levels - 1) as f32;
    (((v.clamp(-1.0, 1.0) + 1.0) / 2.0 * l).round() as usize).min(levels - 1)
}

/// Thermometer (unary) coding: `p` equally-weighted ±1 pulses representing
/// `p + 1` levels. The paper's baseline scheme (Eq. 3) — noise variance
/// `σ²/p`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Thermometer {
    pulses: usize,
}

impl Thermometer {
    /// Creates a `pulses`-pulse thermometer code.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] for zero pulses.
    pub fn new(pulses: usize) -> Result<Self> {
        if pulses == 0 {
            return Err(TensorError::InvalidArgument(
                "thermometer code needs ≥ 1 pulse".into(),
            ));
        }
        Ok(Self { pulses })
    }

    /// Number of `+1` pulses used to represent `value`.
    pub fn high_count(&self, value: f32) -> usize {
        level_index(value, self.pulses + 1)
    }
}

impl BitEncoder for Thermometer {
    fn num_pulses(&self) -> usize {
        self.pulses
    }

    fn num_levels(&self) -> usize {
        self.pulses + 1
    }

    fn pulse_weight(&self, _i: usize) -> f32 {
        1.0
    }

    fn emits_nested_unary(&self) -> bool {
        true
    }

    fn encode_value(&self, value: f32) -> Result<Vec<f32>> {
        check_finite(value)?;
        let high = self.high_count(value);
        Ok((0..self.pulses)
            .map(|i| if i < high { 1.0 } else { -1.0 })
            .collect())
    }
}

/// Bit slicing: `p` pulses weighted by bit position (`2^i`), representing
/// `2^p` levels. Eq. 2 — the weighted accumulation amplifies noise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitSlicing {
    bits: usize,
}

impl BitSlicing {
    /// Creates a `bits`-pulse bit-sliced code.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] for zero bits or more than
    /// 23 bits (f32 mantissa limit for exact level arithmetic).
    pub fn new(bits: usize) -> Result<Self> {
        if bits == 0 || bits > 23 {
            return Err(TensorError::InvalidArgument(format!(
                "bit slicing supports 1..=23 bits, got {bits}"
            )));
        }
        Ok(Self { bits })
    }
}

impl BitEncoder for BitSlicing {
    fn num_pulses(&self) -> usize {
        self.bits
    }

    fn num_levels(&self) -> usize {
        1 << self.bits
    }

    fn pulse_weight(&self, i: usize) -> f32 {
        (1u32 << i) as f32
    }

    fn encode_value(&self, value: f32) -> Result<Vec<f32>> {
        check_finite(value)?;
        let level = level_index(value, self.num_levels());
        Ok((0..self.bits)
            .map(|i| if level & (1 << i) != 0 { 1.0 } else { -1.0 })
            .collect())
    }
}

/// Amplitude (multi-level DAC) encoding: a single analog "pulse" carrying
/// the full value. The high-precision-DAC reference the paper's §II-B
/// argues against; noise variance is the full `σ²`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Amplitude {
    levels: usize,
}

impl Amplitude {
    /// Creates an amplitude encoder with the given resolution.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] for fewer than 2 levels.
    pub fn new(levels: usize) -> Result<Self> {
        if levels < 2 {
            return Err(TensorError::InvalidArgument(
                "amplitude encoding needs ≥ 2 levels".into(),
            ));
        }
        Ok(Self { levels })
    }
}

impl BitEncoder for Amplitude {
    fn num_pulses(&self) -> usize {
        1
    }

    fn num_levels(&self) -> usize {
        self.levels
    }

    fn pulse_weight(&self, _i: usize) -> f32 {
        1.0
    }

    fn encode_value(&self, value: f32) -> Result<Vec<f32>> {
        check_finite(value)?;
        let l = (self.levels - 1) as f32;
        let idx = level_index(value, self.levels) as f32;
        Ok(vec![idx / l * 2.0 - 1.0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thermometer_roundtrip_all_levels() {
        let enc = Thermometer::new(8).unwrap();
        assert_eq!(enc.num_levels(), 9);
        for k in 0..=8 {
            let v = k as f32 / 8.0 * 2.0 - 1.0;
            let code = enc.encode_value(v).unwrap();
            assert_eq!(code.iter().filter(|&&x| x == 1.0).count(), k);
            assert!((enc.decode(&code).unwrap() - v).abs() < 1e-6);
        }
    }

    #[test]
    fn thermometer_snaps_to_nearest_level() {
        let enc = Thermometer::new(4).unwrap(); // levels at -1,-.5,0,.5,1
        assert_eq!(enc.high_count(0.1), 2);
        assert_eq!(enc.high_count(0.3), 3);
        assert_eq!(enc.high_count(-2.0), 0);
        assert_eq!(enc.high_count(2.0), 4);
    }

    #[test]
    fn bit_slicing_roundtrip_all_levels() {
        let enc = BitSlicing::new(3).unwrap();
        assert_eq!(enc.num_levels(), 8);
        for level in 0..8 {
            let v = level as f32 / 7.0 * 2.0 - 1.0;
            let code = enc.encode_value(v).unwrap();
            assert!((enc.decode(&code).unwrap() - v).abs() < 1e-6, "level {level}");
        }
    }

    #[test]
    fn bit_slicing_weights_are_powers_of_two() {
        let enc = BitSlicing::new(4).unwrap();
        assert_eq!(
            (0..4).map(|i| enc.pulse_weight(i)).collect::<Vec<_>>(),
            vec![1.0, 2.0, 4.0, 8.0]
        );
        assert_eq!(enc.weight_norm(), 15.0);
    }

    #[test]
    fn eq2_eq3_noise_variance() {
        // Eq. 3: thermometer σ²/p
        let tc = Thermometer::new(8).unwrap();
        assert!((tc.noise_variance(4.0) - 0.5).abs() < 1e-6);
        // Eq. 2: bit slicing Σ4^i/(Σ2^i)²·σ², b=3 → 21/49
        let bs = BitSlicing::new(3).unwrap();
        assert!((bs.noise_variance(1.0) - 21.0 / 49.0).abs() < 1e-6);
    }

    #[test]
    fn thermometer_beats_bit_slicing_at_equal_information() {
        // at b-bit information: thermometer needs 2^b − 1 pulses
        for b in 2..=6usize {
            let bs = BitSlicing::new(b).unwrap();
            let tc = Thermometer::new((1 << b) - 1).unwrap();
            assert_eq!(bs.num_levels(), tc.num_levels());
            assert!(
                tc.noise_variance(1.0) < bs.noise_variance(1.0),
                "b = {b}"
            );
        }
    }

    #[test]
    fn amplitude_single_pulse_full_variance() {
        let enc = Amplitude::new(9).unwrap();
        assert_eq!(enc.num_pulses(), 1);
        assert_eq!(enc.noise_variance(2.5), 2.5);
        let code = enc.encode_value(0.25).unwrap();
        assert_eq!(code, vec![0.25]);
    }

    #[test]
    fn constructors_validate() {
        assert!(Thermometer::new(0).is_err());
        assert!(BitSlicing::new(0).is_err());
        assert!(BitSlicing::new(24).is_err());
        assert!(Amplitude::new(1).is_err());
    }

    #[test]
    fn non_finite_rejected() {
        let enc = Thermometer::new(4).unwrap();
        assert!(enc.encode_value(f32::NAN).is_err());
        assert!(enc.encode_value(f32::INFINITY).is_err());
    }

    #[test]
    fn decode_validates_length() {
        let enc = Thermometer::new(4).unwrap();
        assert!(enc.decode(&[1.0, 1.0]).is_err());
    }

    #[test]
    fn encode_tensor_builds_pulse_train() {
        let enc = Thermometer::new(4).unwrap();
        let x = Tensor::from_vec(vec![-1.0, 0.0, 1.0], &[3]).unwrap();
        let train = enc.encode_tensor(&x).unwrap();
        assert_eq!(train.num_pulses(), 4);
        let decoded = train.decode().unwrap();
        assert!(decoded.allclose(&x, 1e-6));
    }
}
