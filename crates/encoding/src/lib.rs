//! # membit-encoding
//!
//! Binary input bit-encoding schemes for memristive crossbars and their
//! noise analysis, exactly as formalized in the GBO paper:
//!
//! * [`Thermometer`] coding — `p` unary ±1 pulses representing `p + 1`
//!   levels; accumulated noise variance `σ²/p` (Eq. 3).
//! * [`BitSlicing`] — `p` binary-weighted pulses; variance
//!   `Σ(2^i)²/(Σ2^i)²·σ²` (Eq. 2), strictly worse at equal information.
//! * [`Amplitude`] — the multi-level DAC reference point (one "pulse",
//!   full `σ²`).
//! * [`pla`] — Pulse Length Approximation (§III-B): re-expressing a
//!   thermometer code at any pulse count by adding/removing pulses toward
//!   the ±1 saturation values, enabling the fine-grained search space GBO
//!   optimizes over.
//!
//! The [`variance`] module gives the closed forms used for Fig. 1(b) and
//! validated Monte-Carlo in `membit-xbar`.
//!
//! ```
//! use membit_encoding::{BitEncoder, Thermometer};
//!
//! # fn main() -> Result<(), membit_tensor::TensorError> {
//! let enc = Thermometer::new(8)?; // 8 pulses ⇒ 9 levels
//! let pulses = enc.encode_value(0.5)?;
//! assert_eq!(pulses.iter().sum::<f32>() / 8.0, 0.5);
//! assert_eq!(enc.noise_variance(1.0), 1.0 / 8.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pla;
mod schemes;
mod train;
pub mod variance;

pub use schemes::{Amplitude, BitEncoder, BitSlicing, Thermometer};
pub use train::{PulseTrain, TrainKind};

/// Convenience alias matching [`membit_tensor::Result`].
pub type Result<T> = std::result::Result<T, membit_tensor::TensorError>;
