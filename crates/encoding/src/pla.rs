//! Pulse Length Approximation (PLA, paper §III-B).
//!
//! The GBO ensemble strategy only reaches pulse counts that are integer
//! multiples of the base code (`8, 16, 24, …` for `p = 8`). PLA
//! re-expresses a thermometer code at *any* pulse count `q` by scaling the
//! number of `+1` pulses to `round(frac·q)` — operationally, adding or
//! removing pulses toward the −1/+1 saturation values that deep-layer
//! activations concentrate on (batch norm + bounded `tanh`). The snap
//! introduces a bounded representation error which the paper reports (and
//! we verify) to be negligible.

use membit_tensor::{Tensor, TensorError};

use crate::schemes::{level_index, Thermometer};
use crate::train::PulseTrain;
use crate::{BitEncoder, Result};

/// A thermometer code re-expressed at an arbitrary pulse count.
///
/// `PlaThermometer::new(9, 10)` takes 9-level activations (the base
/// 8-pulse code of the paper) and emits 10-pulse codes — the paper's
/// `PLA₁₀`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlaThermometer {
    /// Number of source quantization levels (base pulses + 1).
    levels: usize,
    /// Emitted pulse count.
    pulses: usize,
}

impl PlaThermometer {
    /// Creates a PLA encoder from `levels`-level activations to `pulses`
    /// pulses.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] for `levels < 2` or zero
    /// pulses.
    pub fn new(levels: usize, pulses: usize) -> Result<Self> {
        if levels < 2 {
            return Err(TensorError::InvalidArgument(
                "PLA needs ≥ 2 source levels".into(),
            ));
        }
        if pulses == 0 {
            return Err(TensorError::InvalidArgument(
                "PLA needs ≥ 1 output pulse".into(),
            ));
        }
        Ok(Self { levels, pulses })
    }

    /// Emitted pulse count `q`.
    pub fn pulses(&self) -> usize {
        self.pulses
    }

    /// Source level count.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Number of `+1` pulses representing `value` at this pulse count.
    ///
    /// Rounding is to the nearest representable level, with exact ties
    /// broken **toward the saturation value of the input's sign** — the
    /// paper's "approximate x̂ towards −1 or 1 according to its sign"
    /// (§III-B). Sign-directed tie-breaking keeps the approximation
    /// bias-free over a symmetric activation distribution, where naive
    /// round-half-away-from-zero would shift every tied level toward +1
    /// and visibly corrupt the batch-norm statistics downstream.
    pub fn high_count(&self, value: f32) -> usize {
        let frac = level_index(value, self.levels) as f32 / (self.levels - 1) as f32;
        let t = frac * self.pulses as f32;
        let is_tie = (t - t.floor() - 0.5).abs() < 1e-4;
        let high = if is_tie {
            if value > 0.0 {
                t.ceil()
            } else if value < 0.0 {
                t.floor()
            } else {
                // dead-center value: round half to even
                let fl = t.floor();
                if (fl as i64) % 2 == 0 {
                    fl
                } else {
                    t.ceil()
                }
            }
        } else {
            t.round()
        };
        high as usize
    }

    /// The value actually represented after the PLA snap of `value`.
    pub fn approximate(&self, value: f32) -> f32 {
        self.high_count(value) as f32 / self.pulses as f32 * 2.0 - 1.0
    }

    /// Worst-case absolute representation error over all source levels.
    pub fn max_representation_error(&self) -> f32 {
        (0..self.levels)
            .map(|k| {
                let v = k as f32 / (self.levels - 1) as f32 * 2.0 - 1.0;
                (self.approximate(v) - v).abs()
            })
            .fold(0.0, f32::max)
    }

    /// Mean absolute representation error over all source levels.
    pub fn mean_representation_error(&self) -> f32 {
        let total: f32 = (0..self.levels)
            .map(|k| {
                let v = k as f32 / (self.levels - 1) as f32 * 2.0 - 1.0;
                (self.approximate(v) - v).abs()
            })
            .sum();
        total / self.levels as f32
    }
}

impl BitEncoder for PlaThermometer {
    fn num_pulses(&self) -> usize {
        self.pulses
    }

    fn num_levels(&self) -> usize {
        self.levels
    }

    fn pulse_weight(&self, _i: usize) -> f32 {
        1.0
    }

    fn emits_nested_unary(&self) -> bool {
        true
    }

    fn encode_value(&self, value: f32) -> Result<Vec<f32>> {
        if !value.is_finite() {
            return Err(TensorError::InvalidArgument(format!(
                "cannot encode non-finite value {value}"
            )));
        }
        let high = self.high_count(value);
        Ok((0..self.pulses)
            .map(|i| if i < high { 1.0 } else { -1.0 })
            .collect())
    }
}

/// Re-expresses an existing base thermometer [`PulseTrain`] at pulse count
/// `q` by adding/removing pulses toward saturation — the hardware-level
/// view of PLA.
///
/// # Errors
///
/// Propagates construction errors; the input train must be unit-weighted
/// (thermometer), otherwise returns
/// [`TensorError::InvalidArgument`].
pub fn approximate_train(train: &PulseTrain, q: usize) -> Result<PulseTrain> {
    if train.weights().iter().any(|&w| w != 1.0) {
        return Err(TensorError::InvalidArgument(
            "PLA applies to unit-weight (thermometer) trains only".into(),
        ));
    }
    let p = train.num_pulses();
    let base = Thermometer::new(p)?;
    let target = PlaThermometer::new(p + 1, q)?;
    // decode each element's high count, re-encode at q pulses
    let decoded = train.decode()?;
    let mut pulses = vec![Tensor::zeros(decoded.shape()); q];
    for (flat, &v) in decoded.as_slice().iter().enumerate() {
        debug_assert!(base.high_count(v) <= p);
        let code = target.encode_value(v)?;
        for (i, &bit) in code.iter().enumerate() {
            pulses[i].as_mut_slice()[flat] = bit;
        }
    }
    PulseTrain::nested_unary(pulses)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_multiples_are_exact() {
        // q = 2·(levels−1): every source level is exactly representable
        let pla = PlaThermometer::new(9, 16).unwrap();
        assert_eq!(pla.max_representation_error(), 0.0);
        let pla24 = PlaThermometer::new(9, 24).unwrap();
        assert_eq!(pla24.max_representation_error(), 0.0);
    }

    #[test]
    fn fractional_counts_have_bounded_error() {
        // the paper's PLA₁₀/PLA₁₂/PLA₁₄ grid over 9-level activations
        for q in [10usize, 12, 14] {
            let pla = PlaThermometer::new(9, q).unwrap();
            let err = pla.max_representation_error();
            assert!(err > 0.0, "q={q} should be approximate");
            // error is at most half an output step
            assert!(err <= 1.0 / q as f32 + 1e-6, "q={q}, err={err}");
        }
    }

    #[test]
    fn saturation_values_always_exact() {
        // ±1 are exactly representable at every pulse count — the
        // observation PLA exploits.
        for q in 1..40usize {
            let pla = PlaThermometer::new(9, q).unwrap();
            assert_eq!(pla.approximate(1.0), 1.0, "q={q}");
            assert_eq!(pla.approximate(-1.0), -1.0, "q={q}");
        }
    }

    #[test]
    fn encode_decode_is_the_approximation() {
        let pla = PlaThermometer::new(9, 10).unwrap();
        for k in 0..9 {
            let v = k as f32 / 8.0 * 2.0 - 1.0;
            let code = pla.encode_value(v).unwrap();
            let decoded = pla.decode(&code).unwrap();
            assert!((decoded - pla.approximate(v)).abs() < 1e-6);
        }
    }

    #[test]
    fn noise_variance_scales_inverse_with_pulses() {
        // more pulses at the same information ⇒ lower variance (Eq. 4)
        let base = PlaThermometer::new(9, 8).unwrap();
        let longer = PlaThermometer::new(9, 16).unwrap();
        assert!((base.noise_variance(1.0) - 1.0 / 8.0).abs() < 1e-7);
        assert!((longer.noise_variance(1.0) - 1.0 / 16.0).abs() < 1e-7);
    }

    #[test]
    fn approximate_train_roundtrip() {
        let base = Thermometer::new(8).unwrap();
        let x = Tensor::from_vec(vec![-1.0, -0.5, 0.0, 0.5, 1.0], &[5]).unwrap();
        let train = base.encode_tensor(&x).unwrap();
        let approx = approximate_train(&train, 10).unwrap();
        assert_eq!(approx.num_pulses(), 10);
        let decoded = approx.decode().unwrap();
        let pla = PlaThermometer::new(9, 10).unwrap();
        for (i, &v) in x.as_slice().iter().enumerate() {
            assert!((decoded.at(i) - pla.approximate(v)).abs() < 1e-6);
        }
    }

    #[test]
    fn approximate_train_rejects_weighted() {
        let train = PulseTrain::new(
            vec![Tensor::ones(&[2]), Tensor::ones(&[2])],
            vec![1.0, 2.0],
        )
        .unwrap();
        assert!(approximate_train(&train, 4).is_err());
    }

    #[test]
    fn constructors_validate() {
        assert!(PlaThermometer::new(1, 4).is_err());
        assert!(PlaThermometer::new(9, 0).is_err());
    }

    #[test]
    fn snap_is_bias_free_over_symmetric_levels() {
        // sign-directed tie-breaking: the signed approximation error must
        // sum to (near) zero over the symmetric 9-level grid for every
        // pulse count of the paper's search space.
        for q in [4usize, 6, 8, 10, 12, 14, 16] {
            let pla = PlaThermometer::new(9, q).unwrap();
            let bias: f32 = (0..9)
                .map(|k| {
                    let v = k as f32 / 8.0 * 2.0 - 1.0;
                    pla.approximate(v) - v
                })
                .sum();
            assert!(bias.abs() < 1e-5, "q={q}: bias {bias}");
        }
    }

    #[test]
    fn snap_is_odd_symmetric() {
        // approximate(−v) == −approximate(v) for every level
        for q in [10usize, 12, 14] {
            let pla = PlaThermometer::new(9, q).unwrap();
            for k in 0..9 {
                let v = k as f32 / 8.0 * 2.0 - 1.0;
                assert!(
                    (pla.approximate(v) + pla.approximate(-v)).abs() < 1e-6,
                    "q={q}, v={v}"
                );
            }
        }
    }

    #[test]
    fn mean_error_below_max_error() {
        let pla = PlaThermometer::new(9, 10).unwrap();
        assert!(pla.mean_representation_error() <= pla.max_representation_error());
    }
}
