//! Closed-form accumulated-noise variances (paper Eqs. 2–4, Fig. 1b).

/// Eq. 2: bit-slicing output noise variance for `bits` pulses —
/// `Σ(2^i)² / (Σ2^i)² · σ²`.
///
/// # Panics
///
/// Panics for `bits == 0`.
pub fn bit_slicing_variance(bits: usize, sigma2: f64) -> f64 {
    assert!(bits > 0, "bit slicing needs ≥ 1 bit");
    let sum: f64 = (0..bits).map(|i| 2f64.powi(i as i32)).sum();
    let sum_sq: f64 = (0..bits).map(|i| 4f64.powi(i as i32)).sum();
    sum_sq / (sum * sum) * sigma2
}

/// Eq. 3: thermometer output noise variance for `pulses` pulses — `σ²/p`.
///
/// # Panics
///
/// Panics for `pulses == 0`.
pub fn thermometer_variance(pulses: usize, sigma2: f64) -> f64 {
    assert!(pulses > 0, "thermometer needs ≥ 1 pulse");
    sigma2 / pulses as f64
}

/// Eq. 4: variance of a pulse-scaled thermometer code — `σ²/(n·p)` for
/// scaling factor `n` applied to a `p`-pulse base code.
///
/// # Panics
///
/// Panics for non-positive `n` or `p == 0`.
pub fn scaled_thermometer_variance(base_pulses: usize, scale: f64, sigma2: f64) -> f64 {
    assert!(base_pulses > 0 && scale > 0.0, "invalid pulse scaling");
    sigma2 / (scale * base_pulses as f64)
}

/// One row of the Fig. 1(b) comparison: both schemes carrying `bits` bits
/// of information, normalized to a 1-bit baseline variance of 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig1bRow {
    /// Information content in bits.
    pub bits: usize,
    /// Bit-slicing pulse count (= bits).
    pub bs_pulses: usize,
    /// Thermometer pulse count (= 2^bits − 1).
    pub tc_pulses: usize,
    /// Normalized bit-slicing variance.
    pub bs_variance: f64,
    /// Normalized thermometer variance.
    pub tc_variance: f64,
}

/// Computes the Fig. 1(b) series for `1..=max_bits` bits with `σ² = 1`.
pub fn fig1b_series(max_bits: usize) -> Vec<Fig1bRow> {
    (1..=max_bits)
        .map(|bits| Fig1bRow {
            bits,
            bs_pulses: bits,
            tc_pulses: (1usize << bits) - 1,
            bs_variance: bit_slicing_variance(bits, 1.0),
            tc_variance: thermometer_variance((1usize << bits) - 1, 1.0),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_pulse_baseline_is_sigma2() {
        assert_eq!(bit_slicing_variance(1, 2.0), 2.0);
        assert_eq!(thermometer_variance(1, 2.0), 2.0);
    }

    #[test]
    fn closed_forms_match_hand_computation() {
        // b = 3: Σ4^i = 21, Σ2^i = 7 ⇒ 21/49
        assert!((bit_slicing_variance(3, 1.0) - 21.0 / 49.0).abs() < 1e-12);
        assert!((thermometer_variance(7, 1.0) - 1.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn eq4_inverse_scaling() {
        let base = scaled_thermometer_variance(8, 1.0, 1.0);
        let doubled = scaled_thermometer_variance(8, 2.0, 1.0);
        assert!((base / doubled - 2.0).abs() < 1e-12);
        // non-integer n (PLA-enabled) also valid
        let frac = scaled_thermometer_variance(8, 1.25, 1.0);
        assert!((frac - 0.1).abs() < 1e-12);
    }

    #[test]
    fn bit_slicing_variance_flattens_to_one_third() {
        // as b → ∞, Σ4^i/(Σ2^i)² → (4^b/3)/(4^b) = 1/3
        let v = bit_slicing_variance(20, 1.0);
        assert!((v - 1.0 / 3.0).abs() < 1e-4, "v = {v}");
    }

    #[test]
    fn fig1b_thermometer_always_wins_beyond_one_bit() {
        let series = fig1b_series(8);
        assert_eq!(series.len(), 8);
        assert_eq!(series[0].bs_variance, series[0].tc_variance); // b = 1 tie
        for row in &series[1..] {
            assert!(
                row.tc_variance < row.bs_variance,
                "bits = {}: tc {} !< bs {}",
                row.bits,
                row.tc_variance,
                row.bs_variance
            );
        }
    }

    #[test]
    fn fig1b_both_monotone_decreasing() {
        let series = fig1b_series(8);
        for w in series.windows(2) {
            assert!(w[1].bs_variance <= w[0].bs_variance);
            assert!(w[1].tc_variance < w[0].tc_variance);
        }
    }

    #[test]
    #[should_panic(expected = "bit slicing")]
    fn zero_bits_panics() {
        bit_slicing_variance(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "invalid pulse scaling")]
    fn zero_scale_panics() {
        scaled_thermometer_variance(8, 0.0, 1.0);
    }
}
