//! Property-based tests for the encoding crate: round-trips, monotonicity
//! in the represented level, variance formulas, and PLA error bounds.

use membit_encoding::pla::PlaThermometer;
use membit_encoding::{Amplitude, BitEncoder, BitSlicing, Thermometer};
use membit_tensor::Tensor;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn thermometer_roundtrip_any_level(pulses in 1usize..32, level in 0usize..33) {
        let enc = Thermometer::new(pulses).unwrap();
        let level = level.min(pulses);
        let v = level as f32 / pulses as f32 * 2.0 - 1.0;
        let code = enc.encode_value(v).unwrap();
        let decoded = enc.decode(&code).unwrap();
        prop_assert!((decoded - v).abs() < 1e-5, "p={pulses} level={level}: {decoded} vs {v}");
    }

    #[test]
    fn thermometer_monotone_in_value(pulses in 2usize..24, a in -1.0f32..1.0, b in -1.0f32..1.0) {
        let enc = Thermometer::new(pulses).unwrap();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(enc.high_count(lo) <= enc.high_count(hi));
    }

    #[test]
    fn bit_slicing_roundtrip_any_level(bits in 1usize..10, level in 0usize..1024) {
        let enc = BitSlicing::new(bits).unwrap();
        let level = level % enc.num_levels();
        let v = level as f32 / (enc.num_levels() - 1) as f32 * 2.0 - 1.0;
        let code = enc.encode_value(v).unwrap();
        prop_assert!((enc.decode(&code).unwrap() - v).abs() < 1e-4);
    }

    #[test]
    fn decode_is_bounded(bits in 1usize..8, v in -2.0f32..2.0) {
        // any encodable value decodes into [-1, 1]
        for enc in [&BitSlicing::new(bits).unwrap() as &dyn BitEncoder,
                    &Thermometer::new(bits + 1).unwrap()] {
            let code = enc.encode_value(v).unwrap();
            let d = enc.decode(&code).unwrap();
            prop_assert!((-1.0 - 1e-6..=1.0 + 1e-6).contains(&d));
        }
    }

    #[test]
    fn noise_variance_positive_and_decreasing_for_thermometer(
        p in 1usize..60, sigma2 in 0.01f32..25.0
    ) {
        let a = Thermometer::new(p).unwrap().noise_variance(sigma2);
        let b = Thermometer::new(p + 1).unwrap().noise_variance(sigma2);
        prop_assert!(a > 0.0);
        prop_assert!(b < a);
        prop_assert!((a - sigma2 / p as f32).abs() < 1e-5);
    }

    #[test]
    fn thermometer_never_loses_to_bit_slicing(bits in 1usize..12, sigma2 in 0.1f32..10.0) {
        let bs = BitSlicing::new(bits).unwrap();
        let tc = Thermometer::new((1usize << bits) - 1).unwrap();
        prop_assert!(tc.noise_variance(sigma2) <= bs.noise_variance(sigma2) + 1e-7);
    }

    #[test]
    fn amplitude_decodes_to_nearest_level(levels in 2usize..64, v in -1.0f32..1.0) {
        let enc = Amplitude::new(levels).unwrap();
        let code = enc.encode_value(v).unwrap();
        let step = 2.0 / (levels - 1) as f32;
        prop_assert!((code[0] - v).abs() <= step / 2.0 + 1e-5);
    }

    #[test]
    fn pla_error_bounded_by_half_output_step(
        levels in 2usize..12, pulses in 1usize..40, k in 0usize..12
    ) {
        let pla = PlaThermometer::new(levels, pulses).unwrap();
        let k = k % levels;
        let v = k as f32 / (levels - 1) as f32 * 2.0 - 1.0;
        let err = (pla.approximate(v) - v).abs();
        prop_assert!(err <= 1.0 / pulses as f32 + 1e-5, "levels={levels} q={pulses} v={v}: err {err}");
    }

    #[test]
    fn pla_bias_bounded_by_midpoint_error(levels in 3usize..11, pulses in 1usize..24) {
        // Sign-directed tie-breaking pairs ±v errors symmetrically, so the
        // only possible net bias comes from the v = 0 midpoint when an odd
        // pulse count cannot represent it (|error| ≤ 1/q). With an even
        // pulse count — the paper's entire search space — the snap is
        // exactly bias-free.
        let pla = PlaThermometer::new(levels, pulses).unwrap();
        let bias: f32 = (0..levels)
            .map(|k| {
                let v = k as f32 / (levels - 1) as f32 * 2.0 - 1.0;
                pla.approximate(v) - v
            })
            .sum();
        prop_assert!(
            bias.abs() <= 1.0 / pulses as f32 + 1e-4,
            "levels={levels} q={pulses}: bias {bias}"
        );
        if pulses % 2 == 0 {
            prop_assert!(bias.abs() < 1e-4, "even q must be bias-free: {bias}");
        }
    }

    #[test]
    fn pla_saturations_always_exact(levels in 2usize..12, pulses in 1usize..40) {
        let pla = PlaThermometer::new(levels, pulses).unwrap();
        prop_assert_eq!(pla.approximate(1.0), 1.0);
        prop_assert_eq!(pla.approximate(-1.0), -1.0);
    }

    #[test]
    fn encode_tensor_decode_roundtrip(pulses in 1usize..16, seed in 0u64..1000) {
        let mut rng = membit_tensor::Rng::from_seed(seed);
        let enc = Thermometer::new(pulses).unwrap();
        // values snapped to the representable grid
        let x = Tensor::from_fn(&[8], |_| {
            let k = rng.below(pulses + 1);
            k as f32 / pulses as f32 * 2.0 - 1.0
        });
        let train = enc.encode_tensor(&x).unwrap();
        prop_assert_eq!(train.num_pulses(), pulses);
        prop_assert!(train.decode().unwrap().allclose(&x, 1e-5));
    }

    #[test]
    fn pulse_weights_sum_matches_norm(bits in 1usize..16) {
        let enc = BitSlicing::new(bits).unwrap();
        let manual: f32 = (0..bits).map(|i| enc.pulse_weight(i)).sum();
        prop_assert_eq!(manual, enc.weight_norm());
        prop_assert_eq!(manual, ((1u64 << bits) - 1) as f32);
    }
}
