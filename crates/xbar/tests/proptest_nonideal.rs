//! Property-based tests for the physical non-ideality layer: IR-drop
//! attenuation geometry, kernel equivalence under wire resistance, and
//! guard-tolerance soundness across the rated temperature range.

use membit_encoding::{BitEncoder, BitSlicing, Thermometer};
use membit_tensor::{Rng, Tensor};
use membit_xbar::{
    CrossbarLinear, GuardPolicy, MvmKernel, NonIdealitySpec, XbarConfig, T_MAX, T_MIN,
};
use proptest::prelude::*;

fn pm1_matrix(rows: usize, cols: usize, seed: u64) -> Tensor {
    let mut rng = Rng::from_seed(seed);
    Tensor::from_fn(&[rows, cols], |_| if rng.coin(0.5) { 1.0 } else { -1.0 })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// IR-drop attenuation is a pure geometric map: every factor lies in
    /// (0, 1] and grows monotonically *weaker* (non-increasing) with
    /// distance from the row driver and from the column sense amp.
    #[test]
    fn attenuation_is_monotone_in_driver_distance(
        gwire in 1e3f32..1e7,
        gload in 1e4f32..1e8,
        rows in 2usize..96,
        cols in 2usize..96,
        g_on in 10.0f32..500.0,
    ) {
        let spec = NonIdealitySpec { gwire, gload, ..NonIdealitySpec::ideal() };
        spec.validate().unwrap();
        let map = spec.attenuation_map(rows, cols, g_on).unwrap();
        prop_assert_eq!(map.len(), rows * cols);
        for (idx, &a) in map.iter().enumerate() {
            prop_assert!(a > 0.0 && a <= 1.0, "map[{idx}] = {a}");
            let (i, j) = (idx / cols, idx % cols);
            if i > 0 {
                prop_assert!(a <= map[(i - 1) * cols + j], "rows not monotone at ({i},{j})");
            }
            if j > 0 {
                prop_assert!(a <= map[idx - 1], "cols not monotone at ({i},{j})");
            }
        }
    }

    /// The attenuation map is folded into the weight cache at program
    /// time, so IR drop must not loosen the kernel-equivalence contract:
    /// Cached and Reference stay *bitwise* identical on per-pulse
    /// execution (bit-sliced trains) and within the usual 1e-5 relative
    /// envelope on the incremental pulse-delta schedule, whose only
    /// divergence is floating-point accumulation order.
    #[test]
    fn kernels_agree_bitwise_under_ir_drop(
        seed in 0u64..200,
        gwire in 1e4f32..1e6,
        tile in 4usize..12,
    ) {
        let mut cfg = XbarConfig::functional(0.15);
        cfg.tile_rows = tile;
        cfg.tile_cols = tile;
        cfg.noise.device.c2c_sigma = 0.02;
        cfg.noise.device.on_off_ratio = 20.0;
        cfg.nonideal = NonIdealitySpec { gwire, ..NonIdealitySpec::realistic() };
        let w = pm1_matrix(10, 14, seed);
        let x = pm1_matrix(3, 14, seed + 1);

        let run = |kernel: MvmKernel, train: &membit_encoding::PulseTrain| {
            let mut cfg = cfg;
            cfg.exec = cfg.exec.with_kernel(kernel);
            let mut rng = Rng::from_seed(seed + 2);
            let engine = CrossbarLinear::program(&w, &cfg, &mut rng).unwrap();
            engine.execute(train, &mut rng).unwrap()
        };

        // per-pulse path: bitwise
        let sliced = BitSlicing::new(4).unwrap().encode_tensor(&x).unwrap();
        let y_fast = run(MvmKernel::Cached, &sliced);
        let y_ref = run(MvmKernel::Reference, &sliced);
        prop_assert_eq!(y_fast.as_slice(), y_ref.as_slice());

        // pulse-delta path: accumulation-order envelope
        let thermo = Thermometer::new(6).unwrap().encode_tensor(&x).unwrap();
        let d_fast = run(MvmKernel::Cached, &thermo);
        let d_ref = run(MvmKernel::Reference, &thermo);
        for (i, (a, b)) in d_fast.as_slice().iter().zip(d_ref.as_slice()).enumerate() {
            prop_assert!(
                (a - b).abs() <= 1e-5 * (1.0 + b.abs()),
                "element {}: cached {} vs reference {}", i, a, b
            );
        }
    }

    /// The guard arms its checksum against the *resolved* (temperature-
    /// scaled) noise spec, so a fault-free array must never escalate at
    /// any rated operating temperature: zero false positives across the
    /// whole [T_MIN, T_MAX] envelope.
    #[test]
    fn guard_never_false_escalates_across_temperatures(
        seed in 0u64..100,
        frac in 0.0f32..1.0,
    ) {
        let kelvin = T_MIN + frac * (T_MAX - T_MIN);
        let mut cfg = XbarConfig::functional(0.2).with_guard(GuardPolicy::standard());
        cfg.tile_rows = 8;
        cfg.tile_cols = 8;
        cfg.noise.device.c2c_sigma = 0.03;
        cfg.noise.device.on_off_ratio = 20.0;
        cfg.nonideal = NonIdealitySpec::realistic().at_temperature(kelvin);
        let w = pm1_matrix(10, 12, seed);
        let x = pm1_matrix(4, 12, seed + 1);
        let train = Thermometer::new(6).unwrap().encode_tensor(&x).unwrap();
        let mut rng = Rng::from_seed(seed + 2);
        let mut xbar = CrossbarLinear::program(&w, &cfg, &mut rng).unwrap();
        let (_, stats) = xbar.execute_guarded(&train, &mut rng).unwrap();
        prop_assert!(stats.guard.checks > 0);
        prop_assert_eq!(stats.guard.violations, 0, "false escalation at {kelvin} K");
        prop_assert!(!xbar.is_degraded());
    }
}
