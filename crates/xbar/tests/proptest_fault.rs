//! Property tests for the fault-tolerance subsystem: march-test recall
//! degrades monotonically with read noise, remapping is idempotent, and
//! fault-free tiles round-trip through recovery unchanged.

use membit_tensor::{Rng, Tensor};
use membit_xbar::{
    remap_tile, CellHealth, CellSide, DeviceModel, MarchTestConfig, RecoveryPolicy, Tile,
};
use proptest::prelude::*;

fn pm1_matrix(rows: usize, cols: usize, seed: u64) -> Tensor {
    let mut rng = Rng::from_seed(seed);
    Tensor::from_fn(&[rows, cols], |_| if rng.coin(0.5) { 1.0 } else { -1.0 })
}

/// Ground-truth march-test recall: the fraction of genuinely stuck cells
/// (known from the tile's health arrays, which recovery code never sees)
/// that the test flagged.
fn detection_recall(tile: &Tile, cfg: &MarchTestConfig, rng: &mut Rng) -> f64 {
    let map = tile.march_test(cfg, rng).unwrap();
    let (rows, cols) = tile.dims();
    let mut stuck = 0u64;
    let mut caught = 0u64;
    for r in 0..rows {
        for c in 0..cols {
            let (hp, hn) = tile.health(r, c);
            for (side, health) in [(CellSide::Pos, hp), (CellSide::Neg, hn)] {
                if !health.is_stuck() {
                    continue;
                }
                // only adversely stuck cells deviate from their target;
                // a StuckOn cell targeted ON is indistinguishable from
                // healthy and not expected to be flagged
                let on_target = match side {
                    CellSide::Pos => tile.logical_weight(r, c) * tile.col_sign(c) >= 0.0,
                    CellSide::Neg => tile.logical_weight(r, c) * tile.col_sign(c) < 0.0,
                };
                let adverse = matches!(
                    (health, on_target),
                    (CellHealth::StuckOn, false) | (CellHealth::StuckOff, true)
                );
                if !adverse {
                    continue;
                }
                stuck += 1;
                if map
                    .faults()
                    .iter()
                    .any(|f| f.row == r && f.col == c && f.side == side)
                {
                    caught += 1;
                }
            }
        }
    }
    if stuck == 0 {
        1.0
    } else {
        caught as f64 / stuck as f64
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// More read noise can only hurt detection: recall at a small
    /// `c2c_sigma` is at least the recall at a much larger one.
    #[test]
    fn detection_recall_monotone_in_read_noise(seed in 0u64..10_000) {
        let mut device = DeviceModel::ideal();
        device.on_off_ratio = 20.0;
        device.stuck_on_rate = 0.03;
        device.stuck_off_rate = 0.03;
        let w = pm1_matrix(48, 48, seed);
        let cfg = MarchTestConfig { reads: 2, threshold: 0.45 };

        let mut recalls = Vec::new();
        for &sigma in &[0.01f32, 0.8] {
            let mut d = device;
            d.c2c_sigma = sigma;
            // same seed ⇒ identical health draws; only the read noise
            // during the march test differs between the two tiles
            let mut rng = Rng::from_seed(seed.wrapping_mul(31).wrapping_add(5));
            let tile = Tile::program(&w, &d, &mut rng).unwrap();
            recalls.push(detection_recall(&tile, &cfg, &mut rng));
        }
        prop_assert!(
            recalls[0] >= recalls[1],
            "recall must not improve with noise: quiet {} vs noisy {}",
            recalls[0],
            recalls[1]
        );
        // sanity: near-noiseless read-back catches every adverse fault
        prop_assert!(recalls[0] > 0.99, "quiet recall {}", recalls[0]);
    }

    /// With no spare budget (spares draw fresh random cells), running the
    /// remapper twice is the same as running it once: the second pass
    /// flips nothing, escalates only what stays broken, and leaves every
    /// effective weight bit-identical.
    #[test]
    fn remapping_is_idempotent(seed in 0u64..10_000, stuck_pct in 0u32..6) {
        let mut device = DeviceModel::ideal();
        device.on_off_ratio = 20.0;
        device.stuck_on_rate = stuck_pct as f32 / 100.0;
        device.stuck_off_rate = stuck_pct as f32 / 100.0;
        let policy = RecoveryPolicy {
            spare_rows: 0,
            spare_cols: 0,
            ..RecoveryPolicy::standard()
        };
        let mut rng = Rng::from_seed(seed.wrapping_add(17));
        let mut tile = Tile::program(&pm1_matrix(24, 24, seed), &device, &mut rng).unwrap();

        let first = remap_tile(&mut tile, &policy, &mut rng).unwrap();
        let snapshot: Vec<f32> = (0..24)
            .flat_map(|r| (0..24).map(move |c| (r, c)))
            .map(|(r, c)| tile.effective_weight(r, c))
            .collect();
        let second = remap_tile(&mut tile, &policy, &mut rng).unwrap();
        let after: Vec<f32> = (0..24)
            .flat_map(|r| (0..24).map(move |c| (r, c)))
            .map(|(r, c)| tile.effective_weight(r, c))
            .collect();

        prop_assert_eq!(second.columns_flipped, 0);
        prop_assert_eq!(second.unrecoverable_cells, first.unrecoverable_cells);
        prop_assert_eq!(snapshot, after);
    }

    /// A tile with no faults and no variation passes through the full
    /// recovery pipeline untouched: nothing detected, nothing repaired,
    /// weights exactly equal to the logical matrix.
    #[test]
    fn zero_fault_tile_round_trips_unchanged(
        seed in 0u64..10_000,
        rows in 2usize..20,
        cols in 2usize..20,
    ) {
        let w = pm1_matrix(rows, cols, seed);
        let mut rng = Rng::from_seed(seed.wrapping_add(3));
        let mut tile = Tile::program(&w, &DeviceModel::ideal(), &mut rng).unwrap();
        let report = remap_tile(&mut tile, &RecoveryPolicy::standard(), &mut rng).unwrap();

        prop_assert_eq!(report.faults_detected, 0);
        prop_assert_eq!(report.columns_flipped, 0);
        prop_assert_eq!(report.spare_rows_used + report.spare_cols_used, 0);
        prop_assert_eq!(report.cells_escalated, 0);
        prop_assert_eq!(report.unrecoverable_cells, 0);
        prop_assert_eq!(report.degraded_tiles, 0);
        for r in 0..rows {
            for c in 0..cols {
                prop_assert_eq!(tile.effective_weight(r, c), tile.logical_weight(r, c));
                prop_assert_eq!(tile.col_sign(c), 1.0);
            }
        }
    }
}
