//! Thread-count determinism of the parallel execution engine.
//!
//! The engine derives every noise draw from substreams keyed by
//! `(pulse, sample, row_tile, col_tile)` (programming: `(row_tile,
//! col_tile)`), so programming + execution must be **bitwise identical**
//! for every `max_threads` setting — across tile geometries, encoders,
//! noise models **and all three MVM kernels** (the cached and packed fast
//! paths reorder their loops but not their substream keys) — and the closed-form variance
//! laws (paper Eqs. 2/3) must keep holding when the Monte-Carlo runs
//! through the parallel path.

use membit_encoding::pla::PlaThermometer;
use membit_encoding::{BitEncoder, BitSlicing, Thermometer};
use membit_tensor::{Rng, Tensor};
use membit_xbar::{
    CellHealth, CellSide, CrossbarLinear, ExecOptions, ExecutionStats, GuardPolicy, MvmKernel,
    XbarConfig,
};
use proptest::prelude::*;

fn pm1_matrix(rows: usize, cols: usize, seed: u64) -> Tensor {
    let mut rng = Rng::from_seed(seed);
    Tensor::from_fn(&[rows, cols], |_| if rng.coin(0.5) { 1.0 } else { -1.0 })
}

/// Programs and executes under the given thread cap, returning the raw
/// output bits and stats.
fn run(
    w: &Tensor,
    train: &membit_encoding::PulseTrain,
    mut cfg: XbarConfig,
    seed: u64,
    threads: usize,
    kernel: MvmKernel,
) -> (Vec<f32>, ExecutionStats) {
    cfg.exec = ExecOptions {
        max_threads: threads,
        samples_per_thread: 1,
        kernel,
    };
    let mut rng = Rng::from_seed(seed);
    let engine = CrossbarLinear::program(w, &cfg, &mut rng).unwrap();
    let (y, stats) = engine.execute_with_stats(train, &mut rng).unwrap();
    (y.as_slice().to_vec(), stats)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn execution_is_bitwise_identical_across_thread_counts(
        seed in 0u64..300,
        tile_rows in 3usize..12,
        tile_cols in 3usize..12,
        encoder in 0usize..3,
        noise_kind in 0usize..3,
        batch in 1usize..7,
    ) {
        let w = pm1_matrix(10, 14, seed);
        let x = Tensor::from_fn(&[batch, 14], |i| {
            (((i * 5 + seed as usize) % 9) as f32 / 4.0 - 1.0).clamp(-1.0, 1.0)
        });
        let train = match encoder {
            0 => Thermometer::new(6).unwrap().encode_tensor(&x).unwrap(),
            1 => BitSlicing::new(3).unwrap().encode_tensor(&x).unwrap(),
            _ => PlaThermometer::new(9, 6).unwrap().encode_tensor(&x).unwrap(),
        };
        let mut cfg = match noise_kind {
            0 => XbarConfig::ideal(),
            1 => XbarConfig::functional(0.3),
            _ => XbarConfig::realistic(0.2), // ADC + variation + write-verify
        };
        cfg.tile_rows = tile_rows;
        cfg.tile_cols = tile_cols;

        for kernel in [MvmKernel::Cached, MvmKernel::Packed, MvmKernel::Reference] {
            let (y1, s1) = run(&w, &train, cfg, seed + 1000, 1, kernel);
            for threads in [2usize, 8] {
                let (yt, st) = run(&w, &train, cfg, seed + 1000, threads, kernel);
                // outputs bitwise identical, stats exactly equal
                prop_assert_eq!(
                    &y1, &yt,
                    "outputs diverged at {} threads ({:?})", threads, kernel
                );
                prop_assert_eq!(s1, st, "stats diverged at {} threads ({:?})", threads, kernel);
            }
        }
    }

    #[test]
    fn guarded_execution_is_bitwise_identical_across_thread_counts(
        seed in 0u64..300,
        tile_rows in 3usize..12,
        tile_cols in 3usize..12,
        noise_kind in 0usize..3,
        batch in 1usize..7,
        faults in proptest::collection::vec((0usize..14, 0usize..10), 0..6),
    ) {
        // the guard's checksum, retry, and ladder noise all come from
        // substreams keyed by (pulse, sample, tile, stream-tag, attempt),
        // and ladder decisions depend only on order-independent per-tile
        // violation counts — so guarded execution, including detections
        // triggered by mid-inference fault injection, must stay bitwise
        // identical for every thread count
        let w = pm1_matrix(10, 14, seed);
        let x = Tensor::from_fn(&[batch, 14], |i| {
            (((i * 5 + seed as usize) % 9) as f32 / 4.0 - 1.0).clamp(-1.0, 1.0)
        });
        let train = Thermometer::new(6).unwrap().encode_tensor(&x).unwrap();
        let mut cfg = match noise_kind {
            0 => XbarConfig::ideal(),
            1 => XbarConfig::functional(0.3),
            _ => XbarConfig::realistic(0.2),
        };
        cfg.tile_rows = tile_rows;
        cfg.tile_cols = tile_cols;
        cfg.guard = Some(GuardPolicy::standard());

        let run_guarded = |threads: usize, kernel: MvmKernel| {
            let mut cfg = cfg;
            cfg.exec = ExecOptions { max_threads: threads, samples_per_thread: 1, kernel };
            let mut rng = Rng::from_seed(seed + 5000);
            let mut engine = CrossbarLinear::program(&w, &cfg, &mut rng).unwrap();
            for &(row, col) in &faults {
                engine.inject_fault(row, col, CellSide::Pos, CellHealth::StuckOff).unwrap();
            }
            let (y, stats) = engine.execute_guarded(&train, &mut rng).unwrap();
            (y.as_slice().to_vec(), stats, engine.is_degraded())
        };
        for kernel in [MvmKernel::Cached, MvmKernel::Packed, MvmKernel::Reference] {
            let (y1, s1, d1) = run_guarded(1, kernel);
            for threads in [2usize, 8] {
                let (yt, st, dt) = run_guarded(threads, kernel);
                prop_assert_eq!(
                    &y1, &yt,
                    "guarded outputs diverged at {} threads ({:?})", threads, kernel
                );
                prop_assert_eq!(s1, st, "guarded stats diverged at {} threads ({:?})", threads, kernel);
                prop_assert_eq!(d1, dt);
            }
        }
    }

    #[test]
    fn repeated_executions_draw_fresh_noise(seed in 0u64..300) {
        // substream derivation must not freeze the noise: two executes on
        // one rng see different realizations (nonce-keyed families)
        let w = Tensor::ones(&[1, 4]);
        let mut rng = Rng::from_seed(seed);
        let engine = CrossbarLinear::program(&w, &XbarConfig::functional(1.0), &mut rng).unwrap();
        let train = Thermometer::new(4)
            .unwrap()
            .encode_tensor(&Tensor::zeros(&[1, 4]))
            .unwrap();
        let a = engine.execute(&train, &mut rng).unwrap();
        let b = engine.execute(&train, &mut rng).unwrap();
        prop_assert_ne!(a.at(0), b.at(0));
    }
}

/// The stage-1 retry path specifically: a fixture engineered to trip the
/// detector (loose z on a noisy array) must exercise retries, and the
/// retried outputs must stay bitwise identical across thread counts —
/// retry noise is keyed by `(pulse, sample, tile, retry-tag, attempt)`,
/// never drawn from a worker-local stream.
#[test]
fn guard_retry_path_is_bitwise_identical_across_thread_counts() {
    let w = pm1_matrix(12, 16, 77);
    let x = Tensor::from_fn(&[8, 16], |i| ((i % 9) as f32 / 4.0 - 1.0).clamp(-1.0, 1.0));
    let train = Thermometer::new(8).unwrap().encode_tensor(&x).unwrap();
    let mut policy = GuardPolicy::standard();
    policy.z = 2.0; // ~4.6% of clean checks trip → plenty of retries
    policy.min_tolerance = 0.0;
    policy.max_retries = 8;
    policy.refresh_rounds = 0;
    policy.remap_rounds = 0;
    let mut cfg = XbarConfig::functional(0.4);
    cfg.tile_rows = 8;
    cfg.tile_cols = 8;
    cfg.guard = Some(policy);

    let run_guarded = |threads: usize, kernel: MvmKernel| {
        let mut cfg = cfg;
        cfg.exec = ExecOptions {
            max_threads: threads,
            samples_per_thread: 1,
            kernel,
        };
        let mut rng = Rng::from_seed(78);
        let mut engine = CrossbarLinear::program(&w, &cfg, &mut rng).unwrap();
        let (y, stats) = engine.execute_guarded(&train, &mut rng).unwrap();
        (y.as_slice().to_vec(), stats)
    };
    for kernel in [MvmKernel::Cached, MvmKernel::Packed, MvmKernel::Reference] {
        let (y1, s1) = run_guarded(1, kernel);
        assert!(s1.guard.retries > 0, "fixture must exercise retries ({kernel:?})");
        assert!(s1.guard.retry_successes > 0, "{:?}", s1.guard);
        for threads in [2usize, 8] {
            let (yt, st) = run_guarded(threads, kernel);
            assert_eq!(y1, yt, "retry outputs diverged at {threads} threads ({kernel:?})");
            assert_eq!(s1, st, "retry stats diverged at {threads} threads ({kernel:?})");
        }
    }
}

/// Paper Eq. 3 — thermometer codes with `p` pulses average per-pulse
/// noise down to variance σ²/p — must hold when the Monte-Carlo batch
/// runs through the multi-threaded path (8 samples per execute, one per
/// worker).
#[test]
fn monte_carlo_variance_matches_eq3_under_parallel_execution() {
    let w = Tensor::ones(&[1, 4]);
    let sigma = 2.0f32;
    let p = 8usize;
    let mut cfg = XbarConfig::functional(sigma);
    cfg.exec = ExecOptions {
        max_threads: 8,
        samples_per_thread: 1,
        kernel: MvmKernel::Cached,
    };
    let mut rng = Rng::from_seed(41);
    let xbar = CrossbarLinear::program(&w, &cfg, &mut rng).unwrap();
    let batch = 8usize;
    let train = Thermometer::new(p)
        .unwrap()
        .encode_tensor(&Tensor::zeros(&[batch, 4]))
        .unwrap();
    let mut samples = Vec::new();
    for _ in 0..400 {
        let y = xbar.execute(&train, &mut rng).unwrap();
        samples.extend_from_slice(y.as_slice());
    }
    let mean = samples.iter().sum::<f32>() / samples.len() as f32;
    let var =
        samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / samples.len() as f32;
    let expect = sigma * sigma / p as f32;
    assert!(
        (var - expect).abs() < 0.15 * expect + 0.02,
        "var {var} vs {expect}"
    );
}

/// Paper Eq. 2 — bit-sliced codes accumulate per-pulse noise as
/// Σ4^i/(Σ2^i)²·σ² — likewise must survive the parallel path.
#[test]
fn monte_carlo_variance_matches_eq2_under_parallel_execution() {
    let w = Tensor::ones(&[1, 4]);
    let sigma = 2.0f32;
    let b = 3usize;
    let mut cfg = XbarConfig::functional(sigma);
    cfg.exec = ExecOptions {
        max_threads: 8,
        samples_per_thread: 1,
        kernel: MvmKernel::Cached,
    };
    let mut rng = Rng::from_seed(42);
    let xbar = CrossbarLinear::program(&w, &cfg, &mut rng).unwrap();
    let batch = 8usize;
    let train = BitSlicing::new(b)
        .unwrap()
        .encode_tensor(&Tensor::zeros(&[batch, 4]))
        .unwrap();
    let mut samples = Vec::new();
    for _ in 0..400 {
        let y = xbar.execute(&train, &mut rng).unwrap();
        samples.extend_from_slice(y.as_slice());
    }
    let mean = samples.iter().sum::<f32>() / samples.len() as f32;
    let var =
        samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / samples.len() as f32;
    let expect = (sigma * sigma) * 21.0 / 49.0; // Σ4^i / (Σ2^i)² for b=3
    assert!(
        (var - expect).abs() < 0.15 * expect + 0.02,
        "var {var} vs {expect}"
    );
}

/// The full escalation ladder (retry → refresh → remap) under the
/// popcount kernel: a rails fixture with a post-deployment fault burst
/// must trip checksums, escalate past retries to tile remaps, and the
/// whole run — detection, repair, and the final outputs — must be
/// bitwise identical at 1 vs 4 threads. Ladder repairs reprogram cells
/// (rebuilding the packed planes mid-flight), so this also fuzzes plane
/// freshness along the recovery path.
#[test]
fn packed_guard_ladder_is_bitwise_identical_across_thread_counts() {
    let mut cfg = XbarConfig::functional(0.05);
    cfg.guard = Some(GuardPolicy::standard());
    cfg.tile_rows = 16;
    cfg.tile_cols = 16;
    cfg.noise.device.on_off_ratio = 20.0;
    let w = pm1_matrix(16, 32, 61);
    let x = pm1_matrix(4, 32, 62);
    let train = Thermometer::new(8).unwrap().encode_tensor(&x).unwrap();

    let run_guarded = |threads: usize| {
        let mut cfg = cfg;
        cfg.exec = ExecOptions {
            max_threads: threads,
            samples_per_thread: 1,
            kernel: MvmKernel::Packed,
        };
        let mut rng = Rng::from_seed(63);
        let mut engine = CrossbarLinear::program(&w, &cfg, &mut rng).unwrap();
        assert!(engine.packed_ready(), "rails fixture must pack");
        // a burst of stuck-off cells: each shifts its column checksum by
        // ~1 per pulse, far outside the 6σ tolerance at σ = 0.05
        for k in 0..12 {
            engine
                .inject_fault(2 * k + 1, k, CellSide::Pos, CellHealth::StuckOff)
                .unwrap();
        }
        let (y, stats) = engine.execute_guarded(&train, &mut rng).unwrap();
        (y.as_slice().to_vec(), stats, engine.is_degraded())
    };
    let (y1, s1, d1) = run_guarded(1);
    assert!(s1.guard.violations > 0, "{:?}", s1.guard);
    assert!(
        s1.guard.tile_remaps > 0,
        "persistent faults must escalate past retry/refresh: {:?}",
        s1.guard
    );
    assert!(!d1, "remap should repair this fixture");
    let (y4, s4, d4) = run_guarded(4);
    assert_eq!(y1, y4, "packed ladder outputs diverged at 4 threads");
    assert_eq!(s1, s4, "packed ladder stats diverged at 4 threads");
    assert_eq!(d1, d4);
}
