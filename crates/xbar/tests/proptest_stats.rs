//! Order-independence of stats merging.
//!
//! The parallel engine folds worker-local [`ExecutionStats`] blocks (and
//! the [`GuardStats`] block nested inside) in whatever order its workers
//! finish. Thread-count determinism therefore *requires* the merge to be
//! commutative and associative — saturating adds and max both are, while
//! a wrapping or panicking add stops being associative the moment
//! saturation enters the picture. These properties are pinned across the
//! full `u64` range, including values that force saturation.

use membit_xbar::{ExecutionStats, GuardStats};
use proptest::prelude::*;

/// Builds a stats block from 17 raw counters (8 base + 9 guard).
/// Full-range `u64` inputs make saturation a common case, not a corner.
fn stats_from(raw: &[u64]) -> ExecutionStats {
    ExecutionStats {
        vectors: raw[0],
        pulses: raw[1],
        tile_mvms: raw[2],
        adc_conversions: raw[3],
        cell_reads: raw[4],
        unrecoverable_cells: raw[5],
        degraded_tiles: raw[6],
        refreshes: raw[7],
        guard: GuardStats {
            checks: raw[8],
            violations: raw[9],
            retries: raw[10],
            retry_successes: raw[11],
            tile_refreshes: raw[12],
            tile_remaps: raw[13],
            fallbacks: raw[14],
            saf_corrections: raw[15],
            degraded_layers: raw[16],
        },
    }
}

fn merged(a: &ExecutionStats, b: &ExecutionStats) -> ExecutionStats {
    let mut out = *a;
    out.merge(b);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn merge_is_commutative(
        ra in proptest::collection::vec(0u64..=u64::MAX, 17..=17),
        rb in proptest::collection::vec(0u64..=u64::MAX, 17..=17),
    ) {
        let (a, b) = (stats_from(&ra), stats_from(&rb));
        prop_assert_eq!(merged(&a, &b), merged(&b, &a));
    }

    #[test]
    fn merge_is_associative(
        ra in proptest::collection::vec(0u64..=u64::MAX, 17..=17),
        rb in proptest::collection::vec(0u64..=u64::MAX, 17..=17),
        rc in proptest::collection::vec(0u64..=u64::MAX, 17..=17),
    ) {
        let (a, b, c) = (stats_from(&ra), stats_from(&rb), stats_from(&rc));
        prop_assert_eq!(
            merged(&merged(&a, &b), &c),
            merged(&a, &merged(&b, &c))
        );
    }

    #[test]
    fn merge_order_never_matters_for_any_fold(
        blocks in proptest::collection::vec(
            proptest::collection::vec(0u64..=u64::MAX, 17..=17),
            1..6,
        ),
        rot in 0usize..6,
    ) {
        // fold the same multiset of worker blocks in two different
        // orders (identity vs rotation) — the engine guarantee is that
        // ANY completion order yields identical stats
        let stats: Vec<ExecutionStats> = blocks.iter().map(|r| stats_from(r)).collect();
        let fold = |xs: &[ExecutionStats]| {
            let mut acc = ExecutionStats::default();
            for s in xs {
                acc.merge(s);
            }
            acc
        };
        let mut rotated = stats.clone();
        rotated.rotate_left(rot % stats.len().max(1));
        prop_assert_eq!(fold(&stats), fold(&rotated));
    }

    #[test]
    fn default_is_merge_identity(
        ra in proptest::collection::vec(0u64..=u64::MAX, 17..=17),
    ) {
        let a = stats_from(&ra);
        prop_assert_eq!(merged(&a, &ExecutionStats::default()), a);
        prop_assert_eq!(merged(&ExecutionStats::default(), &a), a);
    }
}
