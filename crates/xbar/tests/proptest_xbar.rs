//! Property-based tests for the crossbar simulator: tiling invariance,
//! ADC monotonicity/boundedness, device-model conservation laws, and
//! linearity of the ideal engine.

use membit_encoding::{BitEncoder, Thermometer};
use membit_tensor::{Rng, Tensor};
use membit_xbar::{Adc, CrossbarLinear, DeviceModel, NoiseSpec, Tile, XbarConfig};
use proptest::prelude::*;

fn pm1_matrix(rows: usize, cols: usize, seed: u64) -> Tensor {
    let mut rng = Rng::from_seed(seed);
    Tensor::from_fn(&[rows, cols], |_| if rng.coin(0.5) { 1.0 } else { -1.0 })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn adc_is_monotone_and_bounded(bits in 1u32..12, range in 0.5f32..100.0, a in -200.0f32..200.0, b in -200.0f32..200.0) {
        let adc = Adc::new(bits, range).unwrap();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(adc.convert(lo) <= adc.convert(hi));
        let q = adc.convert(a);
        prop_assert!(q.abs() <= range + 1e-4);
        // in-range values are within half a step
        if a.abs() < range {
            prop_assert!((q - a).abs() <= adc.max_quantization_error() + 1e-5);
        }
    }

    #[test]
    fn ideal_tile_mvm_is_linear(seed in 0u64..500) {
        let w = pm1_matrix(6, 4, seed);
        let mut rng = Rng::from_seed(seed + 1);
        let tile = Tile::program(&w, &DeviceModel::ideal(), &mut rng).unwrap();
        let mut rng2 = Rng::from_seed(seed + 2);
        let x1: Vec<f32> = (0..6).map(|_| rng2.uniform(-1.0, 1.0)).collect();
        let x2: Vec<f32> = (0..6).map(|_| rng2.uniform(-1.0, 1.0)).collect();
        let sum: Vec<f32> = x1.iter().zip(&x2).map(|(a, b)| a + b).collect();
        let mut y1 = vec![0.0; 4];
        let mut y2 = vec![0.0; 4];
        let mut ysum = vec![0.0; 4];
        tile.mvm(&x1, &NoiseSpec::none(), &mut rng, &mut y1).unwrap();
        tile.mvm(&x2, &NoiseSpec::none(), &mut rng, &mut y2).unwrap();
        tile.mvm(&sum, &NoiseSpec::none(), &mut rng, &mut ysum).unwrap();
        for j in 0..4 {
            prop_assert!((ysum[j] - y1[j] - y2[j]).abs() < 1e-4);
        }
    }

    #[test]
    fn tiling_is_invariant_for_ideal_hardware(
        seed in 0u64..200,
        tile_rows in 2usize..10,
        tile_cols in 2usize..10,
    ) {
        let w = pm1_matrix(11, 13, seed);
        let x = Tensor::from_fn(&[2, 13], |i| (i % 9) as f32 / 4.0 - 1.0);
        let train = Thermometer::new(4).unwrap().encode_tensor(&x).unwrap();

        let mut rng1 = Rng::from_seed(seed);
        let whole = CrossbarLinear::program(&w, &XbarConfig::ideal(), &mut rng1).unwrap();
        let y_whole = whole.execute(&train, &mut rng1).unwrap();

        let mut cfg = XbarConfig::ideal();
        cfg.tile_rows = tile_rows;
        cfg.tile_cols = tile_cols;
        let mut rng2 = Rng::from_seed(seed + 7);
        let tiled = CrossbarLinear::program(&w, &cfg, &mut rng2).unwrap();
        let y_tiled = tiled.execute(&train, &mut rng2).unwrap();

        prop_assert!(y_whole.allclose(&y_tiled, 1e-3));
    }

    #[test]
    fn effective_weights_are_exact_without_variation(seed in 0u64..500) {
        let w = pm1_matrix(5, 5, seed);
        let mut rng = Rng::from_seed(seed);
        let tile = Tile::program(&w, &DeviceModel::ideal(), &mut rng).unwrap();
        for i in 0..5 {
            for j in 0..5 {
                prop_assert_eq!(tile.effective_weight(i, j), w.get(&[i, j]));
            }
        }
    }

    #[test]
    fn stats_scale_linearly_with_pulses(seed in 0u64..200, pulses in 1usize..12) {
        let w = pm1_matrix(4, 6, seed);
        let x = Tensor::zeros(&[3, 6]);
        let train = Thermometer::new(pulses).unwrap().encode_tensor(&x).unwrap();
        let mut rng = Rng::from_seed(seed);
        let engine = CrossbarLinear::program(&w, &XbarConfig::ideal(), &mut rng).unwrap();
        let (_, stats) = engine.execute_with_stats(&train, &mut rng).unwrap();
        prop_assert_eq!(stats.pulses, (3 * pulses) as u64);
        prop_assert_eq!(stats.vectors, 3);
        prop_assert_eq!(stats.tile_mvms, (3 * pulses) as u64);
        prop_assert!((stats.pulses_per_vector() - pulses as f64).abs() < 1e-9);
    }

    #[test]
    fn device_programming_respects_stuck_rates(rate in 0.0f32..0.5) {
        let mut device = DeviceModel::ideal();
        device.stuck_on_rate = rate;
        let mut rng = Rng::from_seed(9);
        let trials = 4000;
        let stuck = (0..trials)
            .filter(|_| device.program_cell(false, &mut rng) == device.g_on)
            .count();
        let observed = stuck as f32 / trials as f32;
        prop_assert!((observed - rate).abs() < 0.05, "rate {rate}: observed {observed}");
    }

    #[test]
    fn aging_monotonically_shrinks_weights(
        seed in 0u64..200,
        h1 in 1.0f32..100.0,
        extra in 1.0f32..100.0,
    ) {
        let w = pm1_matrix(3, 3, seed);
        let mut rng = Rng::from_seed(seed);
        let mut tile = Tile::program(&w, &DeviceModel::ideal(), &mut rng).unwrap();
        let fresh = tile.effective_weight(0, 0).abs();
        tile.age(h1, 0.03, 0.0, &mut rng);
        let aged_once = tile.effective_weight(0, 0).abs();
        tile.age(extra, 0.03, 0.0, &mut rng);
        let aged_twice = tile.effective_weight(0, 0).abs();
        prop_assert!(aged_once < fresh);
        prop_assert!(aged_twice < aged_once);
        prop_assert!(aged_twice > 0.0);
    }

    #[test]
    fn ir_drop_attenuation_in_unit_interval(alpha in 0.0f32..0.99, seed in 0u64..200) {
        let mut device = DeviceModel::ideal();
        device.ir_drop_alpha = alpha;
        let w = pm1_matrix(6, 6, seed);
        let mut rng = Rng::from_seed(seed);
        let tile = Tile::program(&w, &device, &mut rng).unwrap();
        // every effective weight is scaled by a factor in (0, 1]
        for i in 0..6 {
            for j in 0..6 {
                let eff = tile.effective_weight(i, j).abs();
                prop_assert!(eff <= 1.0 + 1e-5);
                prop_assert!(eff > 0.0);
            }
        }
        // corner cell (0,0) is untouched, far corner is the most attenuated
        let mut near = [0.0f32; 6];
        let mut x = [0.0f32; 6];
        x[0] = 1.0;
        tile.mvm(&x, &NoiseSpec::none(), &mut rng, &mut near).unwrap();
        prop_assert!((near[0].abs() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn output_noise_variance_scales_with_sigma(sigma in 0.5f32..4.0) {
        let w = Tensor::ones(&[2, 1]);
        let mut rng = Rng::from_seed(11);
        let tile = Tile::program(&w, &DeviceModel::ideal(), &mut rng).unwrap();
        let noise = NoiseSpec::functional(sigma);
        let mut out = [0.0f32; 1];
        let mut sum = 0.0f64;
        let mut sum_sq = 0.0f64;
        let trials = 3000;
        for _ in 0..trials {
            tile.mvm(&[0.0, 0.0], &noise, &mut rng, &mut out).unwrap();
            sum += f64::from(out[0]);
            sum_sq += f64::from(out[0]) * f64::from(out[0]);
        }
        let mean = sum / trials as f64;
        let var = sum_sq / trials as f64 - mean * mean;
        let expect = f64::from(sigma) * f64::from(sigma);
        prop_assert!((var - expect).abs() < 0.25 * expect, "σ={sigma}: var {var} vs {expect}");
    }
}
