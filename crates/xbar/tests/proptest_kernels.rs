//! Differential testing of the cached-weight and bit-packed MVM fast
//! paths.
//!
//! Four properties guard the `MvmKernel::Cached` and `MvmKernel::Packed`
//! paths (and the incremental pulse-delta schedule Cached unlocks for
//! nested-unary trains):
//!
//! 1. **Kernel agreement** — on identical hardware, cached/packed and
//!    reference execution agree within 1e-5 across random tile
//!    geometries, encoders (thermometer, bit-sliced, PLA, amplitude) and
//!    noise models, with exactly equal event stats. Noise substreams are
//!    keyed by `(pulse, sample, row_tile, col_tile)`, so the comparison
//!    is noise-to-noise, not just mean-to-mean.
//! 2. **Packed bitwise contract** — on rail-programmed devices with
//!    binary (±1/0) pulse trains, the popcount kernel is *bitwise*
//!    identical to Reference, including the RNG draw order of every
//!    noise stream (output noise and gated c2c draws).
//! 3. **No stale caches or planes** — after any random sequence of tile
//!    mutations (aging, polarity flips, spare-line replacement,
//!    escalated reprogramming, refresh, fault injection), the fast
//!    kernels still agree bitwise with the reference kernel, which reads
//!    raw conductances and cannot be stale. Every mutator must rebuild
//!    or patch the cache — and the packed planes riding on it — eagerly
//!    for this to hold.
//! 4. **Guard composition** — under checksum-guarded execution, the
//!    cached kernel never masks a violation the reference kernel
//!    catches, even when faults are injected mid-sequence.

use membit_encoding::pla::PlaThermometer;
use membit_encoding::{Amplitude, BitEncoder, BitSlicing, Thermometer};
use membit_tensor::{Rng, Tensor};
use membit_xbar::{
    CellHealth, CellSide, CrossbarLinear, DeviceModel, ExecOptions, ExecutionStats, GuardPolicy,
    MvmKernel, NoiseSpec, ProgramStats, Tile, WriteVerify, XbarConfig,
};
use proptest::prelude::*;

fn pm1_matrix(rows: usize, cols: usize, seed: u64) -> Tensor {
    let mut rng = Rng::from_seed(seed);
    Tensor::from_fn(&[rows, cols], |_| if rng.coin(0.5) { 1.0 } else { -1.0 })
}

/// Programs identical hardware (same seed) and executes under `kernel`.
fn run(
    w: &Tensor,
    train: &membit_encoding::PulseTrain,
    mut cfg: XbarConfig,
    seed: u64,
    kernel: MvmKernel,
) -> (Vec<f32>, ExecutionStats) {
    cfg.exec = ExecOptions::serial().with_kernel(kernel);
    let mut rng = Rng::from_seed(seed);
    let engine = CrossbarLinear::program(w, &cfg, &mut rng).unwrap();
    let (y, stats) = engine.execute_with_stats(train, &mut rng).unwrap();
    (y.as_slice().to_vec(), stats)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn cached_execution_matches_reference_within_tolerance(
        seed in 0u64..400,
        tile_rows in 3usize..12,
        tile_cols in 3usize..12,
        encoder in 0usize..4,
        noise_kind in 0usize..3,
        batch in 1usize..6,
    ) {
        let w = pm1_matrix(10, 14, seed);
        let x = Tensor::from_fn(&[batch, 14], |i| {
            (((i * 5 + seed as usize) % 9) as f32 / 4.0 - 1.0).clamp(-1.0, 1.0)
        });
        let train = match encoder {
            0 => Thermometer::new(6).unwrap().encode_tensor(&x).unwrap(),
            1 => BitSlicing::new(3).unwrap().encode_tensor(&x).unwrap(),
            2 => PlaThermometer::new(9, 7).unwrap().encode_tensor(&x).unwrap(),
            // fractional single-pulse inputs: exercises the non-binary case
            _ => Amplitude::new(9).unwrap().encode_tensor(&x).unwrap(),
        };
        let mut cfg = match noise_kind {
            0 => XbarConfig::ideal(),
            1 => XbarConfig::functional(0.3),
            _ => XbarConfig::realistic(0.2), // ADC + variation + write-verify
        };
        cfg.noise.device.c2c_sigma = if noise_kind == 2 { 0.03 } else { 0.0 };
        cfg.noise.device.ir_drop_alpha = if noise_kind == 2 { 0.05 } else { 0.0 };
        cfg.tile_rows = tile_rows;
        cfg.tile_cols = tile_cols;

        let (y_ref, s_ref) = run(&w, &train, cfg, seed + 2000, MvmKernel::Reference);
        for kernel in [MvmKernel::Cached, MvmKernel::Packed] {
            let (y_fast, s_fast) = run(&w, &train, cfg, seed + 2000, kernel);
            prop_assert_eq!(s_fast, s_ref, "event stats must not depend on the kernel");
            for (i, (a, b)) in y_fast.iter().zip(&y_ref).enumerate() {
                prop_assert!(
                    (a - b).abs() <= 1e-5 * (1.0 + b.abs()),
                    "element {}: {:?} {} vs reference {}", i, kernel, a, b
                );
            }
        }
    }

    #[test]
    fn packed_execution_is_bitwise_reference_on_rails(
        seed in 0u64..400,
        tile_rows in 3usize..12,
        tile_cols in 3usize..12,
        encoder in 0usize..3,
        c2c in 0usize..2,
        batch in 1usize..6,
    ) {
        // rail-programmed hardware (ideal device, d2d = 0) + binary ±1/0
        // pulse trains: the popcount kernel must reproduce the reference
        // loop *bitwise*, RNG draw order included. Fractional inputs and
        // heterogeneous devices are covered by the tolerance test above
        // (where Packed transparently downgrades per call / per tile).
        let w = pm1_matrix(10, 14, seed);
        let x = Tensor::from_fn(&[batch, 14], |i| {
            (((i * 5 + seed as usize) % 9) as f32 / 4.0 - 1.0).clamp(-1.0, 1.0)
        });
        let train = match encoder {
            0 => Thermometer::new(6).unwrap().encode_tensor(&x).unwrap(),
            1 => BitSlicing::new(3).unwrap().encode_tensor(&x).unwrap(),
            _ => PlaThermometer::new(9, 7).unwrap().encode_tensor(&x).unwrap(),
        };
        let mut cfg = XbarConfig::functional(0.3);
        cfg.noise.device.on_off_ratio = 20.0;
        cfg.noise.device.c2c_sigma = if c2c == 1 { 0.03 } else { 0.0 };
        cfg.tile_rows = tile_rows;
        cfg.tile_cols = tile_cols;

        let (y_packed, s_packed) = run(&w, &train, cfg, seed + 7000, MvmKernel::Packed);
        let (y_ref, s_ref) = run(&w, &train, cfg, seed + 7000, MvmKernel::Reference);
        prop_assert_eq!(s_packed, s_ref);
        prop_assert_eq!(y_packed, y_ref, "packed must be bitwise reference on rails");
    }

    #[test]
    fn cached_kernel_never_masks_guard_violations(
        seed in 0u64..400,
        tile_rows in 3usize..12,
        tile_cols in 3usize..12,
        noise_kind in 0usize..3,
        batch in 1usize..5,
        faults in proptest::collection::vec((0usize..14, 0usize..10), 1..6),
    ) {
        // The incremental pulse-delta schedule must compose with guarded
        // execution: for any fault set injected mid-sequence (between a
        // clean execute and a faulty one), the cached kernel must never
        // mask a checksum violation the reference kernel catches.
        // Detection is compared *binarily*, not count-for-count — the
        // kernels differ by ≤1e-5 in accumulation order, so a check
        // sitting exactly on the tolerance boundary may legitimately
        // flip, but a fault big enough to matter trips both.
        let w = pm1_matrix(10, 14, seed);
        let x = Tensor::from_fn(&[batch, 14], |i| {
            (((i * 5 + seed as usize) % 9) as f32 / 4.0 - 1.0).clamp(-1.0, 1.0)
        });
        let train = Thermometer::new(6).unwrap().encode_tensor(&x).unwrap();
        let mut cfg = match noise_kind {
            0 => XbarConfig::ideal(),
            1 => XbarConfig::functional(0.3),
            _ => XbarConfig::realistic(0.2),
        };
        cfg.tile_rows = tile_rows;
        cfg.tile_cols = tile_cols;
        // detection-only ladder: no mid-execution refresh/remap, so both
        // engines run the whole sequence on identical hardware
        cfg.guard = Some(GuardPolicy::detect_only());

        let run_guarded = |kernel: MvmKernel| {
            let mut cfg = cfg;
            cfg.exec = ExecOptions::serial().with_kernel(kernel);
            let mut rng = Rng::from_seed(seed + 6000);
            let mut engine = CrossbarLinear::program(&w, &cfg, &mut rng).unwrap();
            let (_, clean) = engine.execute_guarded(&train, &mut rng).unwrap();
            for &(row, col) in &faults {
                engine
                    .inject_fault(row, col, CellSide::Pos, CellHealth::StuckOff)
                    .unwrap();
            }
            let (y, faulty) = engine.execute_guarded(&train, &mut rng).unwrap();
            (clean.guard, faulty.guard, y.as_slice().to_vec())
        };
        let (clean_c, faulty_c, y_c) = run_guarded(MvmKernel::Cached);
        let (clean_r, faulty_r, y_r) = run_guarded(MvmKernel::Reference);

        // before injection the array is exactly as programmed: at z = 6
        // a false positive is a ~1e-9 event, so both kernels must be clean
        prop_assert_eq!(clean_c.violations, 0, "cached kernel false-positive: {:?}", clean_c);
        prop_assert_eq!(clean_r.violations, 0, "reference kernel false-positive: {:?}", clean_r);
        // the one-sided no-masking property
        prop_assert!(
            !(faulty_r.violations > 0 && faulty_c.violations == 0),
            "cached kernel masked a violation: cached {:?} vs reference {:?}",
            faulty_c, faulty_r
        );
        // when the fault set is benign under both kernels the outputs are
        // ordinary guarded readouts and must agree like any other MVM
        if faulty_c.violations == 0 && faulty_r.violations == 0 {
            for (i, (a, b)) in y_c.iter().zip(&y_r).enumerate() {
                prop_assert!(
                    (a - b).abs() <= 1e-5 * (1.0 + b.abs()),
                    "element {}: cached {} vs reference {}", i, a, b
                );
            }
        }
    }

    #[test]
    fn mutations_never_leave_a_stale_cache(
        seed in 0u64..400,
        rows in 3usize..10,
        cols in 3usize..10,
        ops in proptest::collection::vec(0usize..7, 1..10),
    ) {
        let mut device = DeviceModel::ideal();
        device.d2d_sigma = 0.04;
        device.c2c_sigma = 0.02;
        device.ir_drop_alpha = 0.05;
        device.on_off_ratio = 20.0;
        device.stuck_on_rate = 0.02;
        device.stuck_off_rate = 0.02;
        let w = pm1_matrix(rows, cols, seed);
        let mut rng = Rng::from_seed(seed + 3000);
        let mut tile = Tile::program(&w, &device, &mut rng).unwrap();
        let mut stats = ProgramStats::default();

        // a ±1 probe: the two kernels must agree bitwise on it whenever
        // the cache is fresh
        let x: Vec<f32> = (0..rows)
            .map(|i| if (i + seed as usize).is_multiple_of(2) { 1.0 } else { -1.0 })
            .collect();
        let noise = NoiseSpec::functional(0.2);
        let check = |tile: &Tile, op: usize| -> std::result::Result<(), TestCaseError> {
            let mut slow = vec![0.0f32; cols];
            let mut rng_b = Rng::from_seed(seed + 4000);
            tile.mvm_with(&x, &noise, &mut rng_b, &mut slow, MvmKernel::Reference).unwrap();
            // Packed downgrades to Cached on this lossy device, so both
            // fast kernels must track the raw-conductance loop bitwise
            for kernel in [MvmKernel::Cached, MvmKernel::Packed] {
                let mut fast = vec![0.0f32; cols];
                let mut rng_a = Rng::from_seed(seed + 4000);
                tile.mvm_with(&x, &noise, &mut rng_a, &mut fast, kernel).unwrap();
                prop_assert_eq!(
                    &fast, &slow,
                    "stale cache after op {} under {:?}", op, kernel
                );
            }
            Ok(())
        };
        check(&tile, 99)?; // fresh from programming
        for (k, &op) in ops.iter().enumerate() {
            match op {
                0 => tile.age(50.0 * (k + 1) as f32, 0.05, 0.01, &mut rng),
                1 => tile.flip_column(k % cols, &mut rng).unwrap(),
                2 => tile.replace_row(k % rows, &mut rng).unwrap(),
                3 => tile.replace_col(k % cols, &mut rng).unwrap(),
                4 => {
                    tile.reprogram_pair(k % rows, k % cols, &WriteVerify::standard(), &mut rng, &mut stats)
                        .map(|_| ())
                        .unwrap();
                }
                5 => tile.refresh(None, &mut rng, &mut stats),
                _ => {
                    let side = if k % 2 == 0 { CellSide::Pos } else { CellSide::Neg };
                    let health = match k % 3 {
                        0 => CellHealth::StuckOn,
                        1 => CellHealth::StuckOff,
                        _ => CellHealth::Healthy,
                    };
                    tile.inject_fault(k % rows, k % cols, side, health).unwrap();
                }
            }
            check(&tile, op)?;
        }
    }

    #[test]
    fn mutations_never_leave_stale_packed_planes(
        seed in 0u64..400,
        rows in 3usize..10,
        cols in 3usize..10,
        ops in proptest::collection::vec(0usize..6, 1..10),
    ) {
        // the rails counterpart of `mutations_never_leave_a_stale_cache`:
        // on a rail-programmed device the popcount kernel stays *engaged*
        // through polarity flips, spare-line swaps, reprogramming,
        // refresh, and fault injection (aging is deliberately excluded —
        // drift de-rails the tile and is covered by the lossy test), so
        // every mutator must rebuild the packed planes exactly where it
        // patches the weight cache. A stale sign/active word or scale
        // would break bitwise agreement with the raw-conductance loop.
        let mut device = DeviceModel::ideal();
        device.c2c_sigma = 0.02;
        device.on_off_ratio = 20.0;
        device.stuck_on_rate = 0.02;
        device.stuck_off_rate = 0.02;
        let w = pm1_matrix(rows, cols, seed);
        let mut rng = Rng::from_seed(seed + 8000);
        let mut tile = Tile::program(&w, &device, &mut rng).unwrap();
        let mut stats = ProgramStats::default();

        let x: Vec<f32> = (0..rows)
            .map(|i| match (i + seed as usize) % 3 {
                0 => 1.0,
                1 => -1.0,
                _ => 0.0, // undriven rows: exercises the valid plane
            })
            .collect();
        let noise = NoiseSpec::functional(0.2);
        let check = |tile: &Tile, op: usize| -> std::result::Result<(), TestCaseError> {
            let mut fast = vec![0.0f32; cols];
            let mut slow = vec![0.0f32; cols];
            let mut rng_a = Rng::from_seed(seed + 9000);
            let mut rng_b = Rng::from_seed(seed + 9000);
            tile.mvm_with(&x, &noise, &mut rng_a, &mut fast, MvmKernel::Packed).unwrap();
            tile.mvm_with(&x, &noise, &mut rng_b, &mut slow, MvmKernel::Reference).unwrap();
            prop_assert_eq!(fast, slow, "stale packed planes after op {}", op);
            Ok(())
        };
        check(&tile, 99)?; // fresh from programming
        for (k, &op) in ops.iter().enumerate() {
            match op {
                0 => tile.flip_column(k % cols, &mut rng).unwrap(),
                1 => tile.replace_row(k % rows, &mut rng).unwrap(),
                2 => tile.replace_col(k % cols, &mut rng).unwrap(),
                3 => {
                    tile.reprogram_pair(k % rows, k % cols, &WriteVerify::standard(), &mut rng, &mut stats)
                        .map(|_| ())
                        .unwrap();
                }
                4 => tile.refresh(None, &mut rng, &mut stats),
                _ => {
                    let side = if k % 2 == 0 { CellSide::Pos } else { CellSide::Neg };
                    let health = match k % 3 {
                        0 => CellHealth::StuckOn,
                        1 => CellHealth::StuckOff,
                        _ => CellHealth::Healthy,
                    };
                    tile.inject_fault(k % rows, k % cols, side, health).unwrap();
                }
            }
            check(&tile, op)?;
        }
    }
}
