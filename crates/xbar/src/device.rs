//! Memristive device model: binary conductance states and their
//! non-idealities.

use membit_tensor::{Rng, TensorError};

use crate::Result;

/// Persistent manufacturing state of one physical cell.
///
/// Drawn once when a tile is constructed; stuck cells stay stuck through
/// any number of re-programming pulses, which is what makes fault
/// *recovery* (remapping around the cell) meaningful.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellHealth {
    /// Programs normally.
    Healthy,
    /// Pinned at `G_on`.
    StuckOn,
    /// Pinned at `G_off`.
    StuckOff,
}

impl CellHealth {
    /// Whether the cell is pinned to one conductance level.
    pub fn is_stuck(self) -> bool {
        self != CellHealth::Healthy
    }
}

/// Electrical model of one binary NVM cell.
///
/// A logical binary weight `±1` maps onto a **differential pair** of
/// cells: `+1 → (G_on, G_off)`, `−1 → (G_off, G_on)`; the column current
/// difference, normalized by `G_on − G_off`, recovers the signed weight.
/// Finite `on_off_ratio` means `G_off > 0`, which cancels in the
/// differential read but matters for energy.
///
/// Non-idealities:
/// * `d2d_sigma` — device-to-device **programming** variation: each cell's
///   conductance is drawn once (lognormal, multiplicative) at program
///   time.
/// * `c2c_sigma` — cycle-to-cycle **read** variation: a fresh
///   multiplicative Gaussian per cell per pulse.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceModel {
    /// On-state conductance (µS).
    pub g_on: f32,
    /// Ratio `G_on / G_off`.
    pub on_off_ratio: f32,
    /// Lognormal σ of device-to-device programming variation.
    pub d2d_sigma: f32,
    /// Gaussian σ (relative) of cycle-to-cycle read noise.
    pub c2c_sigma: f32,
    /// Probability a cell is stuck at `G_on`.
    pub stuck_on_rate: f32,
    /// Probability a cell is stuck at `G_off`.
    pub stuck_off_rate: f32,
    /// First-order IR-drop coefficient: the effective contribution of the
    /// cell at (row `i`, col `j`) in an `R×C` tile is attenuated by
    /// `1 − α·(i/R + j/C)/2` — cells far from the drivers and sense
    /// amplifiers see a degraded voltage across the wire resistance.
    /// `0` disables the effect.
    pub ir_drop_alpha: f32,
}

impl DeviceModel {
    /// An ideal device: infinite precision, no variation, no faults.
    pub fn ideal() -> Self {
        Self {
            g_on: 100.0,
            on_off_ratio: 1e6,
            d2d_sigma: 0.0,
            c2c_sigma: 0.0,
            stuck_on_rate: 0.0,
            stuck_off_rate: 0.0,
            ir_drop_alpha: 0.0,
        }
    }

    /// A representative realistic binary ReRAM cell: on/off ratio 20,
    /// 5 % programming variation, 2 % read noise, 0.1 % stuck cells.
    pub fn realistic() -> Self {
        Self {
            g_on: 100.0,
            on_off_ratio: 20.0,
            d2d_sigma: 0.05,
            c2c_sigma: 0.02,
            stuck_on_rate: 0.001,
            stuck_off_rate: 0.001,
            ir_drop_alpha: 0.0,
        }
    }

    /// [`realistic`](Self::realistic) plus a first-order IR-drop model
    /// with the given attenuation coefficient.
    pub fn realistic_with_ir_drop(alpha: f32) -> Self {
        Self {
            ir_drop_alpha: alpha,
            ..Self::realistic()
        }
    }

    /// Off-state conductance.
    pub fn g_off(&self) -> f32 {
        self.g_on / self.on_off_ratio
    }

    /// Validates parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] for non-positive
    /// conductances/ratios, negative sigmas, or fault rates outside
    /// `[0, 1]`.
    pub fn validate(&self) -> Result<()> {
        if self.g_on <= 0.0 || self.g_on.is_nan() || self.on_off_ratio <= 1.0 || self.on_off_ratio.is_nan() {
            return Err(TensorError::InvalidArgument(format!(
                "need g_on > 0 and on_off_ratio > 1, got {} / {}",
                self.g_on, self.on_off_ratio
            )));
        }
        if self.d2d_sigma < 0.0 || self.c2c_sigma < 0.0 {
            return Err(TensorError::InvalidArgument(
                "variation sigmas must be non-negative".into(),
            ));
        }
        if !(0.0..1.0).contains(&self.ir_drop_alpha) {
            return Err(TensorError::InvalidArgument(format!(
                "ir_drop_alpha must lie in [0, 1), got {}",
                self.ir_drop_alpha
            )));
        }
        let total_fault = self.stuck_on_rate + self.stuck_off_rate;
        if !(0.0..=1.0).contains(&self.stuck_on_rate)
            || !(0.0..=1.0).contains(&self.stuck_off_rate)
            || total_fault > 1.0
        {
            return Err(TensorError::InvalidArgument(
                "stuck rates must lie in [0, 1] and sum to ≤ 1".into(),
            ));
        }
        Ok(())
    }

    /// Draws the manufacturing health of one physical cell. Stuck faults
    /// are a *persistent* property of the cell: once drawn, every
    /// subsequent programming pulse lands on the stuck level regardless of
    /// the target (re-programming cannot cure a stuck cell).
    pub fn sample_health(&self, rng: &mut Rng) -> CellHealth {
        if rng.coin(self.stuck_on_rate) {
            CellHealth::StuckOn
        } else if rng.coin(self.stuck_off_rate / (1.0 - self.stuck_on_rate).max(1e-9)) {
            CellHealth::StuckOff
        } else {
            CellHealth::Healthy
        }
    }

    /// Samples the as-programmed conductance of a cell of known `health`
    /// targeted at state `on` (d2d variation applies on top of whatever
    /// level the cell physically reaches, stuck or not).
    pub fn program_cell_with_health(&self, health: CellHealth, on: bool, rng: &mut Rng) -> f32 {
        let target = match health {
            CellHealth::StuckOn => self.g_on,
            CellHealth::StuckOff => self.g_off(),
            CellHealth::Healthy if on => self.g_on,
            CellHealth::Healthy => self.g_off(),
        };
        if self.d2d_sigma > 0.0 {
            target * rng.normal(0.0, self.d2d_sigma).exp()
        } else {
            target
        }
    }

    /// Samples the as-programmed conductance of a cell targeted at state
    /// `on` (applying stuck faults and d2d variation). The stuck fate is
    /// re-drawn per call; tile-level code that must model *persistent*
    /// faults draws [`sample_health`](Self::sample_health) once and uses
    /// [`program_cell_with_health`](Self::program_cell_with_health).
    pub fn program_cell(&self, on: bool, rng: &mut Rng) -> f32 {
        let health = self.sample_health(rng);
        self.program_cell_with_health(health, on, rng)
    }

    /// Samples the conductance observed on one read of a cell programmed
    /// to `g_prog`.
    pub fn read_cell(&self, g_prog: f32, rng: &mut Rng) -> f32 {
        if self.c2c_sigma > 0.0 {
            g_prog * (1.0 + rng.normal(0.0, self.c2c_sigma))
        } else {
            g_prog
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_device_is_deterministic() {
        let d = DeviceModel::ideal();
        d.validate().unwrap();
        let mut rng = Rng::from_seed(0);
        assert_eq!(d.program_cell(true, &mut rng), d.g_on);
        assert_eq!(d.program_cell(false, &mut rng), d.g_off());
        assert_eq!(d.read_cell(42.0, &mut rng), 42.0);
    }

    #[test]
    fn validation_rejects_bad_params() {
        let mut d = DeviceModel::ideal();
        d.g_on = 0.0;
        assert!(d.validate().is_err());
        let mut d2 = DeviceModel::ideal();
        d2.on_off_ratio = 0.5;
        assert!(d2.validate().is_err());
        let mut d3 = DeviceModel::ideal();
        d3.d2d_sigma = -0.1;
        assert!(d3.validate().is_err());
        let mut d4 = DeviceModel::ideal();
        d4.stuck_on_rate = 0.8;
        d4.stuck_off_rate = 0.5;
        assert!(d4.validate().is_err());
    }

    #[test]
    fn d2d_variation_spreads_conductance() {
        let mut d = DeviceModel::ideal();
        d.d2d_sigma = 0.1;
        let mut rng = Rng::from_seed(1);
        let samples: Vec<f32> = (0..2000).map(|_| d.program_cell(true, &mut rng)).collect();
        let mean = samples.iter().sum::<f32>() / samples.len() as f32;
        // lognormal with σ=0.1: mean ≈ g_on·e^{σ²/2} ≈ 100.5
        assert!((mean - 100.5).abs() < 1.5, "mean = {mean}");
        assert!(samples.iter().any(|&g| (g - 100.0).abs() > 5.0));
    }

    #[test]
    fn stuck_on_forces_on_state() {
        let mut d = DeviceModel::ideal();
        d.stuck_on_rate = 1.0;
        let mut rng = Rng::from_seed(2);
        // even cells targeted off read g_on
        assert_eq!(d.program_cell(false, &mut rng), d.g_on);
    }

    #[test]
    fn read_noise_is_zero_mean() {
        let mut d = DeviceModel::ideal();
        d.c2c_sigma = 0.05;
        let mut rng = Rng::from_seed(3);
        let samples: Vec<f32> = (0..5000).map(|_| d.read_cell(100.0, &mut rng)).collect();
        let mean = samples.iter().sum::<f32>() / samples.len() as f32;
        assert!((mean - 100.0).abs() < 0.5);
    }

    #[test]
    fn realistic_model_validates() {
        DeviceModel::realistic().validate().unwrap();
        assert!((DeviceModel::realistic().g_off() - 5.0).abs() < 1e-6);
    }
}
