//! Fault remapping: composable recovery strategies applied to march-test
//! detections.
//!
//! The remapper never sees ground-truth cell health — it acts on the
//! [`FaultMap`] a read-back march test produced, so missed detections go
//! unrepaired and false positives waste repair budget, exactly as on real
//! hardware. Three strategies compose, cheapest first:
//!
//! 1. **Differential-pair polarity flip** — re-program a column with
//!    inverted targets and negate its output digitally. Free (no spare
//!    silicon), and moves every stuck cell's error to the opposite
//!    logical weight sign; a column whose faults all sit adverse to the
//!    current polarity is fully repaired.
//! 2. **Spare row/column redundancy** — route a faulty wordline or
//!    bitline pair to a spare physical line, within a configurable
//!    per-tile budget. Spares carry the same iid fault rate as primary
//!    cells.
//! 3. **Write-verify escalation** — re-program remaining flagged pairs
//!    under a tightened [`WriteVerify`] policy (more attempts, tighter
//!    tolerance), charging the extra pulses to [`ProgramStats`]. This
//!    cures drifted or badly programmed *healthy* cells (including
//!    march-test false positives); genuinely stuck cells cannot verify.
//!
//! Whatever remains flagged after all three is reported as
//! *unrecoverable* — deployment degrades gracefully by surfacing the
//! counts in the execution stats rather than failing.

use membit_tensor::Rng;

use crate::device::DeviceModel;
use crate::fault::{CellFault, MarchTestConfig};
use crate::program::{ProgramStats, WriteVerify};
use crate::tile::Tile;
use crate::Result;

/// Composable recovery configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryPolicy {
    /// Read-back test used to detect faults between stages.
    pub march: MarchTestConfig,
    /// Enable differential-pair polarity flips.
    pub flip_polarity: bool,
    /// Spare wordlines available per tile.
    pub spare_rows: usize,
    /// Spare bitline pairs available per tile.
    pub spare_cols: usize,
    /// Escalated write-verify for cells still flagged after remapping;
    /// `None` skips the stage.
    pub escalation: Option<WriteVerify>,
    /// Enable the digital SAF/ECC arm: after every analog strategy runs,
    /// build a per-tile correction table from the residual march
    /// read-backs ([`Tile::build_saf_correction`]) so the engine patches
    /// the remaining stuck-cell error out of each accepted readout.
    /// Residual cells stay counted as unrecoverable — the correction is
    /// digital compensation, not a hardware repair.
    pub saf_ecc: bool,
}

impl RecoveryPolicy {
    /// All strategies on: standard march test, flips, 2+2 spares per
    /// tile, 2 %-tolerance escalation with a 32-attempt budget.
    pub fn standard() -> Self {
        Self {
            march: MarchTestConfig::standard(),
            flip_polarity: true,
            spare_rows: 2,
            spare_cols: 2,
            escalation: Some(WriteVerify {
                tolerance: 0.02,
                max_attempts: 32,
            }),
            saf_ecc: false,
        }
    }

    /// [`standard`](Self::standard) plus the digital SAF/ECC arm.
    pub fn with_ecc() -> Self {
        Self {
            saf_ecc: true,
            ..Self::standard()
        }
    }

    /// Detection only: march test, no repair strategy enabled. Useful to
    /// audit fault exposure without mutating the array.
    pub fn detect_only() -> Self {
        Self {
            march: MarchTestConfig::standard(),
            flip_polarity: false,
            spare_rows: 0,
            spare_cols: 0,
            escalation: None,
            saf_ecc: false,
        }
    }

    /// Validates the embedded march test and escalation policies.
    ///
    /// # Errors
    ///
    /// Propagates [`MarchTestConfig::validate`] / [`WriteVerify::validate`]
    /// errors.
    pub fn validate(&self) -> Result<()> {
        self.march.validate()?;
        if let Some(wv) = &self.escalation {
            wv.validate()?;
        }
        Ok(())
    }
}

/// Outcome counters of remapping one or more tiles.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RemapReport {
    /// Tiles processed.
    pub tiles: u64,
    /// Faults flagged by the initial march test.
    pub faults_detected: u64,
    /// Columns whose polarity was flipped.
    pub columns_flipped: u64,
    /// Spare wordlines consumed.
    pub spare_rows_used: u64,
    /// Spare bitline pairs consumed.
    pub spare_cols_used: u64,
    /// Differential pairs put through escalated write-verify.
    pub cells_escalated: u64,
    /// Initially flagged cells no longer flagged after recovery.
    pub cells_recovered: u64,
    /// Cells still flagged after all strategies (graceful-degradation
    /// exposure).
    pub unrecoverable_cells: u64,
    /// Tiles left with at least one unrecoverable cell.
    pub degraded_tiles: u64,
    /// Differential pairs covered by installed SAF/ECC correction
    /// entries (digital compensation of otherwise unrecoverable cells).
    pub cells_corrected: u64,
    /// Write pulses charged by escalation.
    pub program: ProgramStats,
}

impl RemapReport {
    /// Accumulates another report.
    pub fn merge(&mut self, other: &RemapReport) {
        self.tiles += other.tiles;
        self.faults_detected += other.faults_detected;
        self.columns_flipped += other.columns_flipped;
        self.spare_rows_used += other.spare_rows_used;
        self.spare_cols_used += other.spare_cols_used;
        self.cells_escalated += other.cells_escalated;
        self.cells_recovered += other.cells_recovered;
        self.unrecoverable_cells += other.unrecoverable_cells;
        self.degraded_tiles += other.degraded_tiles;
        self.cells_corrected += other.cells_corrected;
        self.program.merge(&other.program);
    }

    /// Fraction of initially detected faults recovered (1.0 when nothing
    /// was detected).
    pub fn recovery_rate(&self) -> f64 {
        if self.faults_detected == 0 {
            1.0
        } else {
            self.cells_recovered as f64 / self.faults_detected as f64
        }
    }
}

/// Whether flipping the column polarity would render this detected fault
/// harmless: the read-back estimate sits within the march threshold of
/// the *inverted* target level.
fn fixed_by_flip(f: &CellFault, device: &DeviceModel, threshold: f32) -> bool {
    let window = device.g_on - device.g_off();
    let flipped_target = device.g_on + device.g_off() - f.g_target;
    (f.g_est - flipped_target).abs() <= threshold * window
}

/// Runs the configured recovery strategies on one tile, mutating it in
/// place, and returns the outcome counters.
///
/// # Errors
///
/// Propagates policy validation errors.
pub fn remap_tile(tile: &mut Tile, policy: &RecoveryPolicy, rng: &mut Rng) -> Result<RemapReport> {
    policy.validate()?;
    let mut report = RemapReport {
        tiles: 1,
        ..Default::default()
    };
    // any previously installed correction table describes a pre-repair
    // array; rebuilt below from the fresh residual when the arm is on
    tile.clear_saf_correction();
    let initial = tile.march_test(&policy.march, rng)?;
    report.faults_detected = initial.len() as u64;
    if initial.is_empty() {
        return Ok(report);
    }

    // Stage 1: spare wordlines for rows with clustered faults. A spare
    // replaces every cell of the row, so it pays off exactly where the
    // cheaper column-level strategies (which fix one fault each) don't.
    if policy.spare_rows > 0 {
        let mut by_count: Vec<(usize, usize)> = initial
            .row_counts()
            .into_iter()
            .enumerate()
            .filter(|&(_, n)| n >= 2)
            .collect();
        by_count.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        for (row, _) in by_count.into_iter().take(policy.spare_rows) {
            tile.replace_row(row, rng)?;
            report.spare_rows_used += 1;
        }
    }

    // Stage 2: polarity flips, then spare bitline pairs for columns the
    // flip couldn't clean, then one more flip pass over the (fresh,
    // possibly faulty) spares.
    //
    // A flip is *trialed*: the column is re-programmed inverted and read
    // back, and reverted unless the fault count strictly drops. The fault
    // map alone cannot decide — a stuck cell currently sitting on its
    // target is invisible to read-back, yet turns adverse once the
    // column's targets invert (e.g. a pair with both cells pinned to the
    // same level always has exactly one adverse cell under either
    // polarity).
    let flip_stage = |tile: &mut Tile, report: &mut RemapReport, rng: &mut Rng| -> Result<()> {
        let map = tile.march_test(&policy.march, rng)?;
        let (_, cols) = tile.dims();
        for col in 0..cols {
            let harmful_now = map.in_col(col).count();
            if harmful_now == 0 {
                continue;
            }
            // a flip can only help when at least one detected fault sits
            // at the inverted target level; skip the trial otherwise
            // (drifted mid-band cells are a job for escalation)
            if !map
                .in_col(col)
                .any(|f| fixed_by_flip(f, tile.device(), policy.march.threshold))
            {
                continue;
            }
            tile.flip_column(col, rng)?;
            let harmful_flipped = tile.march_test_column(col, &policy.march, rng)?.len();
            if harmful_flipped < harmful_now {
                report.columns_flipped += 1;
            } else {
                tile.flip_column(col, rng)?; // revert the trial
            }
        }
        Ok(())
    };
    if policy.flip_polarity {
        flip_stage(tile, &mut report, rng)?;
    }
    if policy.spare_cols > 0 {
        let map = tile.march_test(&policy.march, rng)?;
        let mut by_count: Vec<(usize, usize)> = map
            .col_counts()
            .into_iter()
            .enumerate()
            .filter(|&(_, n)| n >= 1)
            .collect();
        by_count.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut replaced = false;
        for (col, _) in by_count.into_iter().take(policy.spare_cols) {
            tile.replace_col(col, rng)?;
            report.spare_cols_used += 1;
            replaced = true;
        }
        if replaced && policy.flip_polarity {
            flip_stage(tile, &mut report, rng)?;
        }
    }

    // Stage 3: escalated write-verify on whatever is still flagged —
    // cures drifted/badly-programmed healthy cells and march false
    // positives; stuck cells exhaust the budget.
    if let Some(escalation) = &policy.escalation {
        let map = tile.march_test(&policy.march, rng)?;
        let mut pairs: Vec<(usize, usize)> = map.faults().iter().map(|f| (f.row, f.col)).collect();
        pairs.sort_unstable();
        pairs.dedup();
        for (row, col) in pairs {
            tile.reprogram_pair(row, col, escalation, rng, &mut report.program)?;
            report.cells_escalated += 1;
        }
    }

    let residual = tile.march_test(&policy.march, rng)?;
    report.unrecoverable_cells = residual.len() as u64;
    report.degraded_tiles = u64::from(!residual.is_empty());
    report.cells_recovered = report
        .faults_detected
        .saturating_sub(report.unrecoverable_cells);
    if policy.saf_ecc && !residual.is_empty() {
        // the digital last rung: compensate whatever the analog ladder
        // could not cure. The residual still counts as unrecoverable —
        // ECC patches readouts, it does not repair hardware.
        let entries = tile.build_saf_correction(&residual);
        report.cells_corrected = entries.len() as u64;
        tile.set_saf_correction(entries);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceModel;
    use membit_tensor::Tensor;

    fn faulty_device(stuck_on: f32, stuck_off: f32) -> DeviceModel {
        let mut d = DeviceModel::ideal();
        d.on_off_ratio = 20.0;
        d.stuck_on_rate = stuck_on;
        d.stuck_off_rate = stuck_off;
        d
    }

    fn pm1(shape: &[usize], seed: u64) -> Tensor {
        let mut rng = Rng::from_seed(seed);
        Tensor::from_fn(shape, |_| if rng.coin(0.5) { 1.0 } else { -1.0 })
    }

    fn weight_error(tile: &Tile) -> f32 {
        let (rows, cols) = tile.dims();
        let mut err = 0.0f32;
        for r in 0..rows {
            for c in 0..cols {
                err += (tile.effective_weight(r, c) - tile.logical_weight(r, c)).abs();
            }
        }
        err
    }

    #[test]
    fn clean_tile_needs_no_recovery() {
        let mut rng = Rng::from_seed(0);
        let mut tile = Tile::program(&pm1(&[8, 8], 1), &faulty_device(0.0, 0.0), &mut rng).unwrap();
        let report = remap_tile(&mut tile, &RecoveryPolicy::standard(), &mut rng).unwrap();
        assert_eq!(report.faults_detected, 0);
        assert_eq!(report.unrecoverable_cells, 0);
        assert_eq!(report.degraded_tiles, 0);
        assert_eq!(report.recovery_rate(), 1.0);
        assert_eq!(weight_error(&tile), 0.0);
    }

    #[test]
    fn remap_reduces_stored_weight_error() {
        let mut rng = Rng::from_seed(2);
        let w = pm1(&[32, 32], 3);
        let device = faulty_device(0.01, 0.01);
        let mut tile = Tile::program(&w, &device, &mut rng).unwrap();
        let before = weight_error(&tile);
        assert!(before > 0.0, "fixture must contain harmful faults");
        let report = remap_tile(&mut tile, &RecoveryPolicy::standard(), &mut rng).unwrap();
        let after = weight_error(&tile);
        assert!(report.faults_detected > 0);
        assert!(
            after < before * 0.5,
            "remap should halve weight error: {before} → {after}"
        );
        assert!(report.cells_recovered > 0);
    }

    #[test]
    fn detect_only_counts_but_does_not_repair() {
        let mut rng = Rng::from_seed(4);
        let w = pm1(&[24, 24], 5);
        let mut tile = Tile::program(&w, &faulty_device(0.02, 0.02), &mut rng).unwrap();
        let before = weight_error(&tile);
        let report = remap_tile(&mut tile, &RecoveryPolicy::detect_only(), &mut rng).unwrap();
        assert!(report.faults_detected > 0);
        assert_eq!(report.columns_flipped, 0);
        assert_eq!(report.spare_rows_used + report.spare_cols_used, 0);
        assert_eq!(report.cells_escalated, 0);
        assert_eq!(report.unrecoverable_cells, report.faults_detected);
        assert_eq!(weight_error(&tile), before);
    }

    #[test]
    fn escalation_cures_drifted_cells() {
        // age the tile so every cell drifts out of the march window: the
        // escalated rewrite restores them without spares or flips
        let mut rng = Rng::from_seed(6);
        let w = pm1(&[6, 6], 7);
        let mut tile = Tile::program(&w, &faulty_device(0.0, 0.0), &mut rng).unwrap();
        tile.age(100_000.0, 0.08, 0.0, &mut rng);
        let policy = RecoveryPolicy {
            flip_polarity: false,
            spare_rows: 0,
            spare_cols: 0,
            ..RecoveryPolicy::standard()
        };
        let report = remap_tile(&mut tile, &policy, &mut rng).unwrap();
        assert!(report.faults_detected > 0);
        assert!(report.cells_escalated > 0);
        assert_eq!(report.unrecoverable_cells, 0);
        assert!(report.program.write_pulses > 0);
        assert_eq!(weight_error(&tile), 0.0);
    }

    #[test]
    fn double_stuck_pairs_are_reported_unrecoverable() {
        // every cell stuck ON: each −1 weight's pair reads 0 either
        // polarity, spares re-draw equally stuck cells, escalation fails
        let mut rng = Rng::from_seed(8);
        let w = pm1(&[4, 4], 9);
        let mut tile = Tile::program(&w, &faulty_device(1.0, 0.0), &mut rng).unwrap();
        let report = remap_tile(&mut tile, &RecoveryPolicy::standard(), &mut rng).unwrap();
        assert!(report.faults_detected > 0);
        assert!(report.unrecoverable_cells > 0);
        assert_eq!(report.degraded_tiles, 1);
    }

    #[test]
    fn report_merges() {
        let mut a = RemapReport {
            tiles: 1,
            faults_detected: 4,
            columns_flipped: 1,
            spare_rows_used: 1,
            spare_cols_used: 0,
            cells_escalated: 2,
            cells_recovered: 3,
            unrecoverable_cells: 1,
            degraded_tiles: 1,
            cells_corrected: 1,
            program: ProgramStats {
                cells: 2,
                write_pulses: 9,
                failed_cells: 1,
            },
        };
        a.merge(&a.clone());
        assert_eq!(a.tiles, 2);
        assert_eq!(a.faults_detected, 8);
        assert_eq!(a.cells_recovered, 6);
        assert_eq!(a.cells_corrected, 2);
        assert_eq!(a.program.write_pulses, 18);
        assert!((a.recovery_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn saf_ecc_compensates_double_stuck_pairs() {
        // every cell stuck ON: the analog ladder cannot cure the −1
        // weights (a pair pinned to one level reads 0 either polarity),
        // but the digital ECC arm rebuilds their contribution exactly
        let mut rng = Rng::from_seed(12);
        let w = pm1(&[4, 4], 13);
        let mut tile = Tile::program(&w, &faulty_device(1.0, 0.0), &mut rng).unwrap();
        let report = remap_tile(&mut tile, &RecoveryPolicy::with_ecc(), &mut rng).unwrap();
        assert!(report.unrecoverable_cells > 0, "fixture must defeat the ladder");
        assert!(report.cells_corrected > 0);
        assert!(tile.has_saf_correction());
        // a corrected noise-free MVM reproduces the logical product
        let x = [1.0f32, -1.0, 1.0, -1.0];
        let mut out = [0.0f32; 4];
        tile.mvm(&x, &crate::NoiseSpec::none(), &mut rng, &mut out).unwrap();
        tile.apply_saf_correction(&x, &mut out);
        for (col, &got) in out.iter().enumerate() {
            let clean: f32 = (0..4).map(|row| x[row] * tile.logical_weight(row, col)).sum();
            assert!(
                (got - clean).abs() < 1e-4,
                "col {col}: corrected {got} vs logical {clean}"
            );
        }
        // without the arm, standard() leaves the table empty
        let mut tile2 = Tile::program(&w, &faulty_device(1.0, 0.0), &mut rng).unwrap();
        remap_tile(&mut tile2, &RecoveryPolicy::standard(), &mut rng).unwrap();
        assert!(!tile2.has_saf_correction());
    }

    #[test]
    fn invalid_policy_rejected() {
        let mut rng = Rng::from_seed(10);
        let mut tile = Tile::program(&pm1(&[2, 2], 11), &DeviceModel::ideal(), &mut rng).unwrap();
        let mut policy = RecoveryPolicy::standard();
        policy.march.reads = 0;
        assert!(remap_tile(&mut tile, &policy, &mut rng).is_err());
        let mut policy2 = RecoveryPolicy::standard();
        policy2.escalation = Some(WriteVerify {
            tolerance: 0.0,
            max_attempts: 1,
        });
        assert!(remap_tile(&mut tile, &policy2, &mut rng).is_err());
    }
}
