//! Fault detection: read-back march testing of programmed tiles and
//! in-service drift monitoring.
//!
//! A freshly programmed array is *march-tested*: every cell is read back
//! `reads` times, the conductance estimate is compared against the level
//! the cell was programmed toward, and cells deviating by more than a
//! threshold fraction of the `G_on − G_off` window are flagged. Detection
//! is **imperfect by construction** — the estimate is corrupted by the
//! same cycle-to-cycle read noise inference suffers, so recall falls as
//! `c2c_sigma` grows and device-to-device tails produce false positives.
//! The [`FaultMap`] this yields is what the remapper
//! ([`crate::RecoveryPolicy`]) acts on: the recovery system only ever
//! sees *detected* faults, never ground truth.
//!
//! [`HealthMonitor`] covers the in-service half: periodically probing
//! deployed arrays for retention-drift decay and deciding when a
//! re-programming refresh is warranted.

use membit_tensor::TensorError;

use crate::Result;

/// Which cell of a differential pair a fault was detected in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellSide {
    /// The `G⁺` cell.
    Pos,
    /// The `G⁻` cell.
    Neg,
}

/// One detected cell fault: the read-back estimate disagreed with the
/// programmed target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellFault {
    /// Wordline index within the tile.
    pub row: usize,
    /// Bitline-pair index within the tile.
    pub col: usize,
    /// Which cell of the differential pair.
    pub side: CellSide,
    /// Conductance estimate from the march-test reads.
    pub g_est: f32,
    /// The level the cell was programmed toward.
    pub g_target: f32,
}

/// Read-back march test configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MarchTestConfig {
    /// Repeated reads averaged per cell (more reads suppress read noise
    /// and raise recall, at test-time cost).
    pub reads: usize,
    /// Flag a cell when `|ĝ − target| > threshold · (G_on − G_off)`.
    pub threshold: f32,
}

impl MarchTestConfig {
    /// Typical production test: 4 averaged reads, flag beyond 40 % of the
    /// conductance window (stuck cells deviate by ~100 %).
    pub fn standard() -> Self {
        Self {
            reads: 4,
            threshold: 0.4,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] for zero reads or a
    /// threshold outside `(0, 1]`.
    pub fn validate(&self) -> Result<()> {
        if self.reads == 0 {
            return Err(TensorError::InvalidArgument(
                "march test needs at least one read per cell".into(),
            ));
        }
        if !(self.threshold > 0.0 && self.threshold <= 1.0) {
            return Err(TensorError::InvalidArgument(format!(
                "march threshold must lie in (0, 1], got {}",
                self.threshold
            )));
        }
        Ok(())
    }
}

/// The detected faults of one tile.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultMap {
    rows: usize,
    cols: usize,
    faults: Vec<CellFault>,
}

impl FaultMap {
    /// Builds a map over a `rows × cols` tile.
    pub fn new(rows: usize, cols: usize, faults: Vec<CellFault>) -> Self {
        Self { rows, cols, faults }
    }

    /// Tile dimensions `(rows, cols)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// All detected faults.
    pub fn faults(&self) -> &[CellFault] {
        &self.faults
    }

    /// Number of detected faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the tile tested clean.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Detected faults in column `col`.
    pub fn in_col(&self, col: usize) -> impl Iterator<Item = &CellFault> {
        self.faults.iter().filter(move |f| f.col == col)
    }

    /// Detected faults in row `row`.
    pub fn in_row(&self, row: usize) -> impl Iterator<Item = &CellFault> {
        self.faults.iter().filter(move |f| f.row == row)
    }

    /// Per-row fault counts (length `rows`).
    pub fn row_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.rows];
        for f in &self.faults {
            counts[f.row] += 1;
        }
        counts
    }

    /// Per-column fault counts (length `cols`).
    pub fn col_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.cols];
        for f in &self.faults {
            counts[f.col] += 1;
        }
        counts
    }
}

/// In-service drift monitor: decides when deployed arrays have decayed
/// far enough that a re-programming refresh pays off.
///
/// Retention drift shrinks every stored differential weight toward zero
/// (`G(t) = G₀(1+t)^{−ν}`); the monitor probes a sample of cells, compares
/// the mean effective-weight magnitude against the ideal `1.0`, and
/// triggers a refresh when the decay crosses `decay_threshold`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthMonitor {
    /// Re-check deployed arrays every this many inference vectors.
    pub check_interval: u64,
    /// Refresh when the mean `|w_eff|` of probed cells falls below
    /// `1 − decay_threshold`.
    pub decay_threshold: f32,
    /// Cells sampled per array per check.
    pub probes: usize,
}

impl HealthMonitor {
    /// Check every 128 vectors, refresh past 15 % decay, 64 probes.
    pub fn standard() -> Self {
        Self {
            check_interval: 128,
            decay_threshold: 0.15,
            probes: 64,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] for a zero interval/probe
    /// count or a threshold outside `(0, 1)`.
    pub fn validate(&self) -> Result<()> {
        if self.check_interval == 0 || self.probes == 0 {
            return Err(TensorError::InvalidArgument(
                "health monitor needs a nonzero check interval and probe count".into(),
            ));
        }
        if !(self.decay_threshold > 0.0 && self.decay_threshold < 1.0) {
            return Err(TensorError::InvalidArgument(format!(
                "decay_threshold must lie in (0, 1), got {}",
                self.decay_threshold
            )));
        }
        Ok(())
    }

    /// Whether `vectors_since_check` inference vectors warrant a probe.
    pub fn due(&self, vectors_since_check: u64) -> bool {
        vectors_since_check >= self.check_interval
    }

    /// Whether a measured mean `|w_eff|` calls for a refresh.
    pub fn needs_refresh(&self, mean_weight_magnitude: f32) -> bool {
        mean_weight_magnitude < 1.0 - self.decay_threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn march_config_validation() {
        MarchTestConfig::standard().validate().unwrap();
        assert!(MarchTestConfig {
            reads: 0,
            threshold: 0.4
        }
        .validate()
        .is_err());
        assert!(MarchTestConfig {
            reads: 4,
            threshold: 0.0
        }
        .validate()
        .is_err());
        assert!(MarchTestConfig {
            reads: 4,
            threshold: 1.5
        }
        .validate()
        .is_err());
    }

    #[test]
    fn fault_map_indexing() {
        let fault = |row, col, side| CellFault {
            row,
            col,
            side,
            g_est: 100.0,
            g_target: 5.0,
        };
        let map = FaultMap::new(
            4,
            3,
            vec![
                fault(0, 1, CellSide::Pos),
                fault(0, 2, CellSide::Neg),
                fault(3, 1, CellSide::Pos),
            ],
        );
        assert_eq!(map.dims(), (4, 3));
        assert_eq!(map.len(), 3);
        assert!(!map.is_empty());
        assert_eq!(map.in_col(1).count(), 2);
        assert_eq!(map.in_row(0).count(), 2);
        assert_eq!(map.row_counts(), vec![2, 0, 0, 1]);
        assert_eq!(map.col_counts(), vec![0, 2, 1]);
    }

    #[test]
    fn monitor_validation_and_decisions() {
        let m = HealthMonitor::standard();
        m.validate().unwrap();
        assert!(!m.due(0));
        assert!(m.due(128));
        assert!(!m.needs_refresh(0.99));
        assert!(m.needs_refresh(0.5));
        assert!(HealthMonitor {
            check_interval: 0,
            ..m
        }
        .validate()
        .is_err());
        assert!(HealthMonitor {
            decay_threshold: 1.0,
            ..m
        }
        .validate()
        .is_err());
        assert!(HealthMonitor { probes: 0, ..m }.validate().is_err());
    }
}
