//! # membit-xbar
//!
//! A behavioural, device-level simulator for **binary memristive
//! crossbars**: differential conductance pairs with finite on/off ratio,
//! device-to-device programming variation, cycle-to-cycle read noise,
//! stuck-at faults, tile partitioning, per-pulse ADC quantization, and an
//! execution engine that runs [`membit_encoding::PulseTrain`]s through the
//! array — one analog MVM per pulse, exactly the temporal scheme whose
//! noise accumulation the GBO paper analyzes.
//!
//! Deployment-lifecycle support rides on top: read-back **march testing**
//! ([`MarchTestConfig`] → [`FaultMap`]), **fault remapping** with
//! composable strategies — differential-pair polarity flips, spare
//! row/column redundancy, escalated write-verify —
//! ([`RecoveryPolicy`] / [`CrossbarLinear::remap`]), and in-service
//! **drift monitoring + refresh** ([`HealthMonitor`],
//! [`CrossbarLinear::refresh`]). Unrecoverable cells degrade gracefully:
//! they are counted in [`RemapReport`] / [`ExecutionStats`] instead of
//! failing the deployment.
//!
//! On top of the offline lifecycle sits **online ABFT**: every tile can
//! arm a checksum column ([`Tile::arm_guard`]) and
//! [`CrossbarLinear::execute_guarded`] compares each digitized pulse
//! readout against it with an analytically derived tolerance, walking a
//! deterministic retry → refresh → remap → digital-fallback escalation
//! ladder ([`GuardPolicy`]) whose telemetry lands in [`GuardStats`].
//!
//! The paper itself trains and evaluates against the *functional* noise
//! model `o = Wx + N(0, σ²)` (its Eq. 1); this crate provides the richer
//! substrate used to (a) validate the closed-form variance formulas by
//! Monte-Carlo and (b) check that the paper's conclusions survive a less
//! idealized crossbar (tiling + ADC + device variation).
//!
//! ```
//! use membit_xbar::{CrossbarLinear, NoiseSpec, XbarConfig};
//! use membit_encoding::{BitEncoder, Thermometer};
//! use membit_tensor::{Rng, Tensor};
//!
//! # fn main() -> Result<(), membit_tensor::TensorError> {
//! let w = Tensor::from_vec(vec![1.0, -1.0, -1.0, 1.0], &[2, 2])?;
//! let mut rng = Rng::from_seed(7);
//! let xbar = CrossbarLinear::program(&w, &XbarConfig::ideal(), &mut rng)?;
//! let x = Tensor::from_vec(vec![0.5, -0.5], &[1, 2])?;
//! let train = Thermometer::new(8)?.encode_tensor(&x)?;
//! let y = xbar.execute(&train, &mut rng)?;
//! // ideal crossbar reproduces W·xᵀ: [0.5·1 + (−0.5)(−1), …] = [1, −1]
//! assert!(y.allclose(&Tensor::from_vec(vec![1.0, -1.0], &[1, 2])?, 1e-4));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adc;
mod device;
mod energy;
mod engine;
mod fault;
mod guard;
mod noise;
mod nonideal;
mod program;
mod remap;
mod tile;

pub use adc::Adc;
pub use device::{CellHealth, DeviceModel};
pub use energy::{EnergyModel, ExecutionStats};
pub use engine::{CrossbarLinear, ExecOptions, XbarConfig};
pub use guard::{GuardPolicy, GuardStats};
pub use fault::{CellFault, CellSide, FaultMap, HealthMonitor, MarchTestConfig};
pub use noise::NoiseSpec;
pub use nonideal::{NonIdealitySpec, T_MAX, T_MIN, T_REF};
pub use program::{
    program_cell_verified, program_cell_verified_with_health, ProgramStats, WriteVerify,
};
pub use remap::{remap_tile, RecoveryPolicy, RemapReport};
pub use tile::{MvmKernel, PackScratch, Tile};

/// Convenience alias matching [`membit_tensor::Result`].
pub type Result<T> = std::result::Result<T, membit_tensor::TensorError>;
