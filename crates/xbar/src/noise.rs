//! Aggregate noise specification for a crossbar deployment.

use membit_tensor::TensorError;

use crate::device::DeviceModel;
use crate::Result;

/// The complete noise configuration of a crossbar execution.
///
/// `output_sigma` is the paper's functional `N(0, σ²)` added to every
/// per-pulse analog MVM output (Eq. 1); the device-level terms live in the
/// embedded [`DeviceModel`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseSpec {
    /// Std-dev of additive Gaussian noise per pulse per output column,
    /// in units of the normalized (weight ±1, input ±1) MVM output.
    pub output_sigma: f32,
    /// Device model supplying d2d/c2c variation and faults.
    pub device: DeviceModel,
}

impl NoiseSpec {
    /// Noise-free crossbar with ideal devices.
    pub fn none() -> Self {
        Self {
            output_sigma: 0.0,
            device: DeviceModel::ideal(),
        }
    }

    /// The paper's functional model only: additive Gaussian output noise
    /// on ideal devices.
    pub fn functional(output_sigma: f32) -> Self {
        Self {
            output_sigma,
            device: DeviceModel::ideal(),
        }
    }

    /// Functional noise plus realistic device non-idealities.
    pub fn realistic(output_sigma: f32) -> Self {
        Self {
            output_sigma,
            device: DeviceModel::realistic(),
        }
    }

    /// Validates all embedded parameters.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] for a negative σ or an
    /// invalid device model.
    pub fn validate(&self) -> Result<()> {
        if self.output_sigma < 0.0 {
            return Err(TensorError::InvalidArgument(
                "output_sigma must be non-negative".into(),
            ));
        }
        self.device.validate()
    }
}

impl Default for NoiseSpec {
    fn default() -> Self {
        Self::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        NoiseSpec::none().validate().unwrap();
        NoiseSpec::functional(10.0).validate().unwrap();
        NoiseSpec::realistic(5.0).validate().unwrap();
        assert_eq!(NoiseSpec::default(), NoiseSpec::none());
    }

    #[test]
    fn negative_sigma_rejected() {
        assert!(NoiseSpec::functional(-1.0).validate().is_err());
    }
}
