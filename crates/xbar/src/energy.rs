//! Latency and energy accounting for crossbar executions.

use crate::guard::GuardStats;

/// Raw event counts from executing pulse trains on a
/// [`CrossbarLinear`](crate::CrossbarLinear).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecutionStats {
    /// Input vectors processed.
    pub vectors: u64,
    /// Pulses (crossbar time steps) driven, summed over vectors.
    pub pulses: u64,
    /// Individual tile MVM operations.
    pub tile_mvms: u64,
    /// ADC conversions performed.
    pub adc_conversions: u64,
    /// Active cell-read events (rows × cols per tile MVM).
    pub cell_reads: u64,
    /// Cells the recovery pipeline could not repair (still flagged after
    /// remapping) in the arrays this run executed on. Populated once per
    /// evaluation from the deployment's recovery reports, not per batch.
    pub unrecoverable_cells: u64,
    /// Tiles carrying at least one unrecoverable cell. Populated once
    /// per evaluation, like `unrecoverable_cells`.
    pub degraded_tiles: u64,
    /// Drift-refresh re-programming passes triggered by the health
    /// monitor during this run.
    pub refreshes: u64,
    /// Checksum-guard telemetry: detections, retries, escalations, and
    /// per-layer degradation state.
    pub guard: GuardStats,
}

impl ExecutionStats {
    /// Accumulates another stats block.
    ///
    /// Event counters (`vectors`, `pulses`, `tile_mvms`,
    /// `adc_conversions`, `cell_reads`, `refreshes`) are per-batch and
    /// sum. `unrecoverable_cells` and `degraded_tiles` describe the
    /// *deployment*, not the batch: they are populated once per
    /// evaluation and identical across the batches being merged, so
    /// summing would multiply the damage by the batch count — the merge
    /// takes the max instead.
    ///
    /// Worker-local blocks are folded in whatever order the parallel
    /// engine's workers finish, so every operation here must be
    /// commutative and associative — saturating adds and max both are
    /// (`proptest_stats.rs` pins this), a wrapping or panicking add is
    /// neither once overflow enters the picture.
    pub fn merge(&mut self, other: &ExecutionStats) {
        self.vectors = self.vectors.saturating_add(other.vectors);
        self.pulses = self.pulses.saturating_add(other.pulses);
        self.tile_mvms = self.tile_mvms.saturating_add(other.tile_mvms);
        self.adc_conversions = self.adc_conversions.saturating_add(other.adc_conversions);
        self.cell_reads = self.cell_reads.saturating_add(other.cell_reads);
        self.unrecoverable_cells = self.unrecoverable_cells.max(other.unrecoverable_cells);
        self.degraded_tiles = self.degraded_tiles.max(other.degraded_tiles);
        self.refreshes = self.refreshes.saturating_add(other.refreshes);
        self.guard.merge(&other.guard);
    }

    /// Average pulses per input vector.
    pub fn pulses_per_vector(&self) -> f64 {
        if self.vectors == 0 {
            0.0
        } else {
            self.pulses as f64 / self.vectors as f64
        }
    }
}

/// First-order energy/latency model.
///
/// Constants are representative of published ReRAM accelerator numbers
/// (ISAAC-class): they matter only *relatively* — the paper's latency
/// regularizer trades pulse count against accuracy, and every extra pulse
/// costs one crossbar cycle plus one ADC sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Energy per active cell read (pJ).
    pub pj_per_cell_read: f64,
    /// Energy per ADC conversion at `adc_bits` resolution (pJ).
    pub pj_per_adc: f64,
    /// Crossbar cycle time per pulse (ns).
    pub ns_per_pulse: f64,
}

impl EnergyModel {
    /// Representative defaults: 0.05 pJ/cell read, 2 pJ/8-bit conversion,
    /// 100 ns pulse cycle.
    pub fn representative() -> Self {
        Self {
            pj_per_cell_read: 0.05,
            pj_per_adc: 2.0,
            ns_per_pulse: 100.0,
        }
    }

    /// Total energy for `stats`, in pJ.
    pub fn energy_pj(&self, stats: &ExecutionStats) -> f64 {
        stats.cell_reads as f64 * self.pj_per_cell_read
            + stats.adc_conversions as f64 * self.pj_per_adc
    }

    /// Total latency for `stats`, in ns. Pulses are sequential per
    /// vector, and vectors are pipelined one-per-pulse-slot: after the
    /// first vector's full pulse depth fills the pipeline, each further
    /// vector retires one pulse slot later, so the total is
    /// `pulses_per_vector + (vectors − 1)` slots. With one vector or
    /// fewer (e.g. hand-built stats with `vectors == 0`) this degrades
    /// to the raw pulse count.
    pub fn latency_ns(&self, stats: &ExecutionStats) -> f64 {
        if stats.vectors <= 1 {
            return stats.pulses as f64 * self.ns_per_pulse;
        }
        (stats.pulses_per_vector() + (stats.vectors - 1) as f64) * self.ns_per_pulse
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::representative()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let mut a = ExecutionStats {
            vectors: 1,
            pulses: 8,
            tile_mvms: 16,
            adc_conversions: 128,
            cell_reads: 1024,
            unrecoverable_cells: 3,
            degraded_tiles: 1,
            refreshes: 2,
            guard: GuardStats {
                checks: 10,
                violations: 1,
                degraded_layers: 1,
                ..Default::default()
            },
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.vectors, 2);
        assert_eq!(a.pulses, 16);
        assert_eq!(a.cell_reads, 2048);
        // deployment-level damage counters are set-once: max, not sum
        assert_eq!(a.unrecoverable_cells, 3);
        assert_eq!(a.degraded_tiles, 1);
        assert_eq!(a.refreshes, 4);
        assert_eq!(a.guard.checks, 20);
        assert_eq!(a.guard.violations, 2);
        assert_eq!(a.guard.degraded_layers, 1, "degradation state maxes");
        a.merge(&ExecutionStats {
            unrecoverable_cells: 7,
            ..Default::default()
        });
        assert_eq!(a.unrecoverable_cells, 7);
    }

    #[test]
    fn pulses_per_vector_handles_empty() {
        assert_eq!(ExecutionStats::default().pulses_per_vector(), 0.0);
        let s = ExecutionStats {
            vectors: 4,
            pulses: 40,
            ..Default::default()
        };
        assert_eq!(s.pulses_per_vector(), 10.0);
    }

    #[test]
    fn energy_scales_with_events() {
        let m = EnergyModel::representative();
        let s1 = ExecutionStats {
            pulses: 8,
            adc_conversions: 100,
            cell_reads: 1000,
            ..Default::default()
        };
        let mut s2 = s1;
        s2.merge(&s1);
        assert!((m.energy_pj(&s2) - 2.0 * m.energy_pj(&s1)).abs() < 1e-9);
        assert!((m.latency_ns(&s1) - 800.0).abs() < 1e-9);
    }

    #[test]
    fn latency_pipelines_vectors() {
        let m = EnergyModel::representative();
        // hand-computed: 2 vectors × 8 pulses each. The first vector
        // occupies 8 pulse slots; the second retires one slot later:
        // (8 + 1) × 100 ns = 900 ns — not 16 × 100 ns.
        let s = ExecutionStats {
            vectors: 2,
            pulses: 16,
            ..Default::default()
        };
        assert!((m.latency_ns(&s) - 900.0).abs() < 1e-9);
        // single vector: exactly the pulse depth
        let s1 = ExecutionStats {
            vectors: 1,
            pulses: 8,
            ..Default::default()
        };
        assert!((m.latency_ns(&s1) - 800.0).abs() < 1e-9);
    }
}
