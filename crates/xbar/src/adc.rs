//! Per-column analog-to-digital conversion.

use membit_tensor::TensorError;

use crate::Result;

/// A uniform mid-rise ADC with symmetric clipping range `[-range, range]`.
///
/// Crossbar column currents are digitized once per pulse per tile; the
/// resolution/range trade-off is a first-order contributor to crossbar
/// accuracy loss (ISAAC-style designs spend most of their power here).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Adc {
    bits: u32,
    range: f32,
}

impl Adc {
    /// Creates an ADC with the given resolution and full-scale range.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] for zero bits, more than
    /// 24 bits, or a non-positive range.
    pub fn new(bits: u32, range: f32) -> Result<Self> {
        if bits == 0 || bits > 24 {
            return Err(TensorError::InvalidArgument(format!(
                "adc resolution must be 1..=24 bits, got {bits}"
            )));
        }
        if range <= 0.0 || range.is_nan() {
            return Err(TensorError::InvalidArgument(format!(
                "adc range must be positive, got {range}"
            )));
        }
        Ok(Self { bits, range })
    }

    /// Resolution in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Full-scale range.
    pub fn range(&self) -> f32 {
        self.range
    }

    /// Number of quantization codes.
    pub fn codes(&self) -> u64 {
        1u64 << self.bits
    }

    /// Width of one quantization step.
    pub fn step(&self) -> f32 {
        2.0 * self.range / self.codes() as f32
    }

    /// Digitizes one analog value: clip to `±range`, quantize to the
    /// nearest code center.
    pub fn convert(&self, analog: f32) -> f32 {
        let clipped = analog.clamp(-self.range, self.range);
        let step = self.step();
        // mid-rise: code centers at (k + 0.5)·step − range
        let code = ((clipped + self.range) / step).floor().min((self.codes() - 1) as f32);
        (code + 0.5) * step - self.range
    }

    /// Digitizes a buffer in place.
    pub fn convert_slice(&self, values: &mut [f32]) {
        for v in values {
            *v = self.convert(*v);
        }
    }

    /// Worst-case quantization error (half a step) inside the range.
    pub fn max_quantization_error(&self) -> f32 {
        self.step() / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(Adc::new(0, 1.0).is_err());
        assert!(Adc::new(25, 1.0).is_err());
        assert!(Adc::new(8, 0.0).is_err());
        assert!(Adc::new(8, -1.0).is_err());
        Adc::new(8, 64.0).unwrap();
    }

    #[test]
    fn quantization_error_bounded() {
        let adc = Adc::new(6, 8.0).unwrap();
        let max_err = adc.max_quantization_error();
        for i in -80..=80 {
            let v = i as f32 / 10.0;
            let q = adc.convert(v);
            assert!((q - v).abs() <= max_err + 1e-6, "v={v}, q={q}");
        }
    }

    #[test]
    fn clipping_saturates() {
        let adc = Adc::new(4, 1.0).unwrap();
        let top = adc.convert(100.0);
        let bottom = adc.convert(-100.0);
        assert!(top <= 1.0 && top > 0.8);
        assert!((-1.0..-0.8).contains(&bottom));
    }

    #[test]
    fn monotone_nondecreasing() {
        let adc = Adc::new(5, 4.0).unwrap();
        let mut prev = f32::NEG_INFINITY;
        for i in -50..=50 {
            let q = adc.convert(i as f32 / 10.0);
            assert!(q >= prev);
            prev = q;
        }
    }

    #[test]
    fn high_resolution_is_nearly_transparent() {
        let adc = Adc::new(16, 32.0).unwrap();
        assert!((adc.convert(3.21875) - 3.21875).abs() < 1e-3);
    }

    #[test]
    fn convert_slice_matches_scalar() {
        let adc = Adc::new(6, 2.0).unwrap();
        let mut buf = [0.3, -1.7, 5.0];
        adc.convert_slice(&mut buf);
        assert_eq!(buf[0], adc.convert(0.3));
        assert_eq!(buf[1], adc.convert(-1.7));
        assert_eq!(buf[2], adc.convert(5.0));
    }

    #[test]
    fn step_and_codes() {
        let adc = Adc::new(3, 4.0).unwrap();
        assert_eq!(adc.codes(), 8);
        assert_eq!(adc.step(), 1.0);
        assert_eq!(adc.bits(), 3);
        assert_eq!(adc.range(), 4.0);
    }
}
